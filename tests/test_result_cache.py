"""Cross-statement result cache: snapshots, invalidation, eviction, races.

The invariants this cache must not get wrong:

- **Snapshot semantics**: a caller mutating a returned table — or the
  original result it handed in — can never poison later hits (the
  regression tests mutate a hit in place and re-fetch).
- **Versioned invalidation is exactly as precise as the plan cache's**:
  any ``register_table``/``drop``/statistics refresh means a later
  lookup never serves a pre-change result; an arena/index-cache clear
  (``invalidate_model``) retires results of plans that embedded with
  that model.
- **Byte budget holds under pressure**: LRU eviction keeps
  ``bytes <= max_bytes`` at all times; an oversize result is simply not
  cached.

The ``concurrency``-marked races drive a hit storm (N clients, one
execution), register-during-hit (a lookup after ``register_table``
returns must never see the old result), and eviction under a tiny
budget — deterministic lane: ``pytest -m concurrency -p no:randomly``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.result_cache import (
    ResultCache,
    ResultKey,
    estimate_table_bytes,
    snapshot_table,
)
from repro.engine.session import Session
from repro.semantic.cache import RETIRED_GENERATIONS
from repro.server import EngineServer
from repro.storage.table import Table


def key_for(digest="d", parameters=(), version=0, model="m",
            index_generation=0, arena_generations=()) -> ResultKey:
    return ResultKey(digest=digest, parameters=parameters,
                     catalog_version=version, model_name=model,
                     index_generation=index_generation,
                     arena_generations=arena_generations)


def small_table(values=(1, 2, 3), tag="x") -> Table:
    return Table.from_dict({"a": list(values),
                            "b": [f"{tag}{v}" for v in values]})


@pytest.fixture()
def session(model):
    session = Session(load_default_model=False)
    session.register_model(model, default=True)
    session.register_table("t", Table.from_dict({
        "a": [1, 2, 3, 4], "b": ["w", "x", "y", "z"]}))
    return session


def warm(session: Session, text: str) -> Table:
    """Issue ``text`` until it is cached under a stable catalog version
    (the first run may bump the version by computing statistics)."""
    session.sql(text)
    return session.sql(text)


def rows(table: Table) -> list[tuple]:
    return sorted(tuple(row.items()) for row in table.to_rows())


# ---------------------------------------------------------------------------
# The cache object itself
# ---------------------------------------------------------------------------
class TestResultCacheUnit:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(max_bytes=1 << 20)
        key = key_for()
        assert cache.get(key) is None
        assert cache.put(key, small_table())
        hit = cache.get(key)
        assert rows(hit) == rows(small_table())
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        assert stats.entries == 1
        assert stats.bytes > 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_hit_mutation_cannot_poison_cache(self):
        """THE snapshot regression: mutate a hit in place, re-fetch."""
        cache = ResultCache()
        key = key_for()
        cache.put(key, small_table())
        first = cache.get(key)
        first.columns["a"][:] = -99
        first.columns["b"][0] = "poisoned"
        again = cache.get(key)
        assert rows(again) == rows(small_table())

    def test_put_source_mutation_cannot_poison_cache(self):
        cache = ResultCache()
        key = key_for()
        source = small_table()
        cache.put(key, source)
        source.columns["a"][:] = -99
        assert rows(cache.get(key)) == rows(small_table())

    def test_two_hits_are_independent_copies(self):
        cache = ResultCache()
        key = key_for()
        cache.put(key, small_table())
        one, two = cache.get(key), cache.get(key)
        one.columns["a"][:] = -1
        assert rows(two) == rows(small_table())

    def test_lru_eviction_keeps_bytes_under_budget(self):
        entry_bytes = estimate_table_bytes(small_table())
        cache = ResultCache(max_bytes=entry_bytes * 2)
        keys = [key_for(digest=f"d{i}") for i in range(4)]
        for key in keys:
            cache.put(key, small_table())
            assert cache.bytes_used <= cache.max_bytes
        stats = cache.stats()
        assert stats.evictions >= 2
        # oldest evicted, newest still resident
        assert cache.get(keys[0]) is None
        assert cache.get(keys[-1]) is not None

    def test_lru_order_follows_hits(self):
        entry_bytes = estimate_table_bytes(small_table())
        cache = ResultCache(max_bytes=entry_bytes * 2)
        a, b, c = (key_for(digest=d) for d in "abc")
        cache.put(a, small_table())
        cache.put(b, small_table())
        cache.get(a)                      # a is now most recent
        cache.put(c, small_table())       # evicts b, not a
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_oversize_result_is_skipped(self):
        table = small_table(range(100))
        cache = ResultCache(max_bytes=estimate_table_bytes(table) - 1)
        assert not cache.put(key_for(), table)
        assert len(cache) == 0
        assert cache.stats().oversize_skips == 1

    def test_replacing_an_entry_does_not_double_count_bytes(self):
        cache = ResultCache()
        key = key_for()
        cache.put(key, small_table())
        once = cache.bytes_used
        cache.put(key, small_table())
        assert cache.bytes_used == once
        assert len(cache) == 1

    def test_newer_catalog_version_sweeps_stale_entries(self):
        cache = ResultCache()
        cache.put(key_for(version=1), small_table())
        cache.put(key_for(digest="e", version=2), small_table())
        stats = cache.stats()
        assert stats.stale_evictions == 1
        assert stats.entries == 1
        assert cache.get(key_for(version=1)) is None

    def test_stale_keyed_put_is_refused_not_inserted(self):
        """A put whose key is already below the version watermark (an
        invalidation landed mid-query) must not enter the store — a
        never-matchable entry could otherwise evict live ones."""
        cache = ResultCache()
        cache.put(key_for(digest="live", version=2), small_table())
        assert not cache.put(key_for(digest="late", version=1),
                             small_table())
        assert len(cache) == 1
        assert cache.get(key_for(digest="live", version=2)) is not None

    def test_retired_generation_put_is_refused(self, model):
        from repro.semantic.cache import EmbeddingCache

        arena = EmbeddingCache(model)
        generation = arena.generation
        arena.clear()
        cache = ResultCache()
        assert not cache.put(
            key_for(arena_generations=(("m", generation),)), small_table())
        assert len(cache) == 0

    def test_no_arena_yet_sentinel_put_is_refused(self):
        """A key carrying generation -1 ("no arena yet") can never match
        a later lookup (the arena now exists), so it is not stored."""
        cache = ResultCache()
        assert not cache.put(key_for(arena_generations=(("m", -1),)),
                             small_table())
        assert len(cache) == 0

    def test_newer_index_generation_sweeps_stale_entries(self):
        cache = ResultCache()
        cache.put(key_for(index_generation=0), small_table())
        cache.put(key_for(digest="e", index_generation=1), small_table())
        assert cache.stats().stale_evictions == 1

    def test_retired_arena_generation_sweeps_entries(self, model):
        from repro.semantic.cache import EmbeddingCache

        arena = EmbeddingCache(model)
        generation = arena.generation
        cache = ResultCache()
        cache.put(key_for(arena_generations=(("m", generation),)),
                  small_table())
        arena.clear()            # retires the generation token
        assert generation in RETIRED_GENERATIONS
        cache.put(key_for(digest="e"), small_table())
        assert cache.stats().stale_evictions == 1

    def test_invalidate_drops_everything_and_counts(self):
        cache = ResultCache()
        for digest in "abc":
            cache.put(key_for(digest=digest), small_table())
        assert cache.invalidate() == 3
        stats = cache.stats()
        assert stats.invalidations == 3
        assert stats.entries == 0
        assert stats.bytes == 0

    def test_estimate_counts_object_payload(self):
        numeric = Table.from_dict({"a": [1, 2, 3]})
        strings = Table.from_dict({"a": ["long string value here"] * 3})
        assert estimate_table_bytes(numeric) == \
            int(numeric.columns["a"].nbytes)
        assert estimate_table_bytes(strings) > 3 * len(
            "long string value here")

    def test_snapshot_shares_no_array_storage(self):
        table = small_table()
        copy = snapshot_table(table)
        for name in table.columns:
            assert not np.shares_memory(table.columns[name],
                                        copy.columns[name])
        assert copy.schema is table.schema


# ---------------------------------------------------------------------------
# Session integration (standalone engine path)
# ---------------------------------------------------------------------------
class TestSessionIntegration:
    def test_repeat_statement_is_a_result_hit(self, session):
        statement = "SELECT a, b FROM t WHERE a > 1"
        reference = rows(warm(session, statement))
        before = session.state.result_cache.stats()
        repeat = session.sql(statement)
        after = session.state.result_cache.stats()
        assert after.hits == before.hits + 1
        assert session.last_profile.result_cache_hit is True
        assert session.last_profile.plan_cache_hit is True
        assert rows(repeat) == reference

    def test_canonically_equal_spelling_hits(self, session):
        reference = rows(warm(session, "SELECT a FROM t WHERE a > 1"))
        repeat = session.sql("select   a\nFROM t  WHERE a > 1")
        assert session.last_profile.result_cache_hit is True
        assert rows(repeat) == reference

    def test_different_literal_misses(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        session.sql("SELECT a FROM t WHERE a > 2")
        assert session.last_profile.result_cache_hit is False

    def test_mutating_returned_result_does_not_poison(self, session):
        statement = "SELECT a, b FROM t WHERE a > 1"
        reference = rows(warm(session, statement))
        hit = session.sql(statement)
        assert session.last_profile.result_cache_hit is True
        hit.columns["a"][:] = -99
        hit.columns["b"][:] = "poison"
        again = session.sql(statement)
        assert session.last_profile.result_cache_hit is True
        assert rows(again) == reference

    def test_register_replace_serves_fresh_result(self, session):
        statement = "SELECT a FROM t WHERE a > 0"
        warm(session, statement)
        session.register_table("t", Table.from_dict({
            "a": [10, 20], "b": ["p", "q"]}), replace=True)
        result = session.sql(statement)
        assert session.last_profile.result_cache_hit is False
        assert sorted(result.column("a").tolist()) == [10, 20]

    def test_drop_and_reregister_serves_fresh_result(self, session):
        statement = "SELECT a FROM t"
        warm(session, statement)
        session.catalog.drop("t")
        session.register_table("t", Table.from_dict({
            "a": [7], "b": ["z"]}))
        result = session.sql(statement)
        assert session.last_profile.result_cache_hit is False
        assert result.column("a").tolist() == [7]

    def test_stats_refresh_misses_but_answers_identically(self, session):
        statement = "SELECT a FROM t WHERE a > 1"
        reference = rows(warm(session, statement))
        session.catalog.refresh_stats("t")
        result = session.sql(statement)
        assert session.last_profile.result_cache_hit is False
        assert rows(result) == reference

    def test_arena_clear_retires_semantic_results(self, session):
        statement = "SELECT b FROM t WHERE b ~ 'w' THRESHOLD 0.5"
        warm(session, statement)
        session.sql(statement)
        assert session.last_profile.result_cache_hit is True
        session.embedding_cache().clear()
        session.sql(statement)
        assert session.last_profile.result_cache_hit is False

    def test_index_cache_clear_retires_results(self, session):
        statement = "SELECT a FROM t WHERE a > 1"
        warm(session, statement)
        session.state.index_cache.clear()
        session.sql(statement)
        assert session.last_profile.result_cache_hit is False

    def test_relational_statement_key_ignores_arena_state(self, session):
        """A plan that embeds nothing keys on no arena generations, so
        creating an arena later cannot retire its results."""
        statement = "SELECT a FROM t WHERE a > 1"
        warm(session, statement)
        session.embedding_cache()        # create the default arena now
        session.sql(statement)
        assert session.last_profile.result_cache_hit is True

    def test_unoptimized_path_bypasses_result_cache(self, session):
        statement = "SELECT a FROM t"
        warm(session, statement)
        session.sql(statement, optimize=False)
        assert session.last_profile.result_cache_hit is None

    def test_disabled_result_cache(self, model):
        session = Session(load_default_model=False)
        session.state.result_cache = None
        session.register_model(model, default=True)
        session.register_table("t", small_table())
        warm(session, "SELECT a FROM t")
        session.sql("SELECT a FROM t")
        assert session.last_profile.result_cache_hit is None

    def test_semantic_join_repeat_hits(self, session):
        session.register_table("u", Table.from_dict({
            "c": ["w", "y", "other"]}))
        statement = ("SELECT s.a, u.c FROM t AS s SEMANTIC JOIN u AS u "
                     "ON s.b ~ u.c THRESHOLD 0.95 ORDER BY s.a, u.c")
        reference = rows(warm(session, statement))
        repeat = session.sql(statement)
        assert session.last_profile.result_cache_hit is True
        assert rows(repeat) == reference


# ---------------------------------------------------------------------------
# Server integration
# ---------------------------------------------------------------------------
@pytest.fixture()
def server(model):
    with EngineServer(load_default_model=False, parallelism=2) as server:
        server.register_model(model, default=True)
        server.register_table("t", Table.from_dict({
            "a": list(range(20)),
            "b": [f"item{i % 4}" for i in range(20)],
        }))
        yield server


class TestServerIntegration:
    def test_hit_is_shared_across_clients(self, server):
        statement = "SELECT a FROM t WHERE a > 3"
        one, two = server.session("one"), server.session("two")
        one.sql(statement)
        one.sql(statement)                  # cached under stable version
        reference = rows(one.sql(statement))
        result = two.sql(statement)
        assert rows(result) == reference
        assert two.last_profile.result_cache_hit is True
        assert two.last_profile.lane == "interactive"
        assert two.last_profile.tenant == "two"

    def test_hit_counts_as_scheduler_noop(self, server):
        statement = "SELECT a FROM t WHERE a > 3"
        client = server.session("noop")
        client.sql(statement)
        client.sql(statement)
        admitted_before = server.scheduler.stats()["admitted"]
        client.sql(statement)
        stats = server.scheduler.stats()
        assert stats["admitted"] == admitted_before
        assert stats["result_cache_noops"] >= 1
        assert stats["tenants"]["noop"]["result_cache_hits"] >= 1

    def test_metrics_report_result_cache(self, server):
        server.sql("SELECT a FROM t")
        metrics = server.metrics()
        section = metrics["result_cache"]
        for field in ("hits", "misses", "puts", "evictions",
                      "stale_evictions", "invalidations", "bytes",
                      "max_bytes"):
            assert field in section

    def test_invalidate_model_retires_semantic_results(self, server):
        statement = "SELECT b FROM t WHERE b ~ 'item1' THRESHOLD 0.5"
        client = server.session("inv")
        client.sql(statement)
        client.sql(statement)
        client.sql(statement)
        assert client.last_profile.result_cache_hit is True
        server.invalidate_model(server.state.default_model_name)
        client.sql(statement)
        assert client.last_profile.result_cache_hit is False

    def test_invalidate_results_admin_override(self, server):
        """Explicit drop for mutations the engine cannot see (in-place
        array edits): the next statement re-executes."""
        statement = "SELECT a FROM t WHERE a > 3"
        client = server.session("adm")
        client.sql(statement)
        client.sql(statement)
        client.sql(statement)
        assert client.last_profile.result_cache_hit is True
        assert server.invalidate_results() >= 1
        client.sql(statement)
        assert client.last_profile.result_cache_hit is False
        assert server.metrics()["result_cache"]["invalidations"] >= 1

    def test_server_hit_profile_measures_probe_time(self, server):
        statement = "SELECT a FROM t WHERE a > 3"
        client = server.session("probe")
        client.sql(statement)
        client.sql(statement)
        client.sql(statement)
        assert client.last_profile.result_cache_hit is True
        assert client.last_profile.total_seconds > 0.0

    def test_register_through_server_retires_results(self, server):
        statement = "SELECT a FROM t WHERE a > 3"
        client = server.session("reg")
        client.sql(statement)
        client.sql(statement)
        server.register_table("t", Table.from_dict({
            "a": [100], "b": ["new"]}), replace=True)
        result = client.sql(statement)
        assert client.last_profile.result_cache_hit is False
        assert result.column("a").tolist() == [100]


# ---------------------------------------------------------------------------
# Races (deterministic lane: -m concurrency -p no:randomly)
# ---------------------------------------------------------------------------
def run_threads(n, target):
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.mark.concurrency
class TestRaces:
    N_THREADS = 8

    def test_hit_storm_one_execution(self, server):
        """N clients hammer one warmed statement: zero re-executions,
        every hit an independent snapshot."""
        statement = "SELECT a, b FROM t WHERE a > 2 ORDER BY a"
        admin = server.session("warm")
        admin.sql(statement)
        reference = rows(admin.sql(statement))   # cached, stable version
        puts_before = server.state.result_cache.stats().puts
        barrier = threading.Barrier(self.N_THREADS)

        def storm(index):
            client = server.session(f"storm{index}")
            barrier.wait(timeout=10)
            for _ in range(10):
                result = client.sql(statement)
                assert rows(result) == reference
                # mutate my snapshot: must never reach another client
                result.columns["a"][:] = -index

        run_threads(self.N_THREADS, storm)
        stats = server.state.result_cache.stats()
        assert stats.puts == puts_before         # nothing re-executed
        assert stats.hits >= self.N_THREADS * 10

    def test_register_during_hits_never_serves_stale(self, server):
        """Readers racing register(replace=True) always get a table
        consistent with some registered version, and a query issued
        after the final register sees the final contents."""
        versions = {
            0: Table.from_dict({"a": [0] * 4, "b": ["v0"] * 4}),
            1: Table.from_dict({"a": [1] * 4, "b": ["v1"] * 4}),
        }
        valid = {tuple(rows(table)) for table in versions.values()}
        # also valid: the fixture's initial contents, pre-first-swap
        initial = server.session("init").sql("SELECT a, b FROM t")
        valid.add(tuple(rows(initial)))
        statement = "SELECT a, b FROM t"
        stop = threading.Event()
        barrier = threading.Barrier(self.N_THREADS + 1)

        def reader(index):
            client = server.session(f"reader{index}")
            barrier.wait(timeout=10)
            while not stop.is_set():
                assert tuple(rows(client.sql(statement))) in valid

        def writer():
            barrier.wait(timeout=10)
            for round_number in range(12):
                server.register_table("t", versions[round_number % 2],
                                      replace=True)
            stop.set()

        errors = []

        def wrap(fn, *args):
            try:
                fn(*args)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)
                stop.set()

        threads = [threading.Thread(target=wrap, args=(reader, i))
                   for i in range(self.N_THREADS)]
        threads.append(threading.Thread(target=wrap, args=(writer,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        # after the last register (odd count: final table is versions[1]),
        # a fresh lookup must see the final contents — never a stale hit
        final = server.session("final").sql(statement)
        assert rows(final) == rows(versions[1])

    def test_eviction_under_pressure_tiny_budget(self, model):
        """A byte budget sized for ~2 results under an 8-thread storm
        over 6 distinct statements: budget holds, answers stay right."""
        with EngineServer(load_default_model=False, parallelism=2,
                          result_cache_bytes=2_000) as server:
            server.register_model(model, default=True)
            server.register_table("t", Table.from_dict({
                "a": list(range(50)),
                "b": [f"val{i % 7}" for i in range(50)],
            }))
            statements = [f"SELECT a, b FROM t WHERE a > {cut} ORDER BY a"
                          for cut in (0, 10, 20, 30, 40, 45)]
            admin = server.session("warm")
            references = {}
            for statement in statements:
                admin.sql(statement)
                references[statement] = rows(admin.sql(statement))
            barrier = threading.Barrier(self.N_THREADS)

            def pressure(index):
                client = server.session(f"p{index}")
                barrier.wait(timeout=10)
                for round_number in range(6):
                    statement = statements[(index + round_number)
                                           % len(statements)]
                    assert rows(client.sql(statement)) == \
                        references[statement]
                    assert (server.state.result_cache.bytes_used
                            <= server.state.result_cache.max_bytes)

            run_threads(self.N_THREADS, pressure)
            stats = server.state.result_cache.stats()
            assert stats.bytes <= stats.max_bytes
            assert stats.evictions > 0
