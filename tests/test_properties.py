"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.embeddings.subword import fnv1a, subword_ids
from repro.semantic.baselines import (
    jaccard_similarity,
    levenshtein,
    normalized_edit_similarity,
)
from repro.semantic.join import join_blocked, join_rowkernel
from repro.storage.types import date_to_int, int_to_date
from repro.vector.metrics import normalize_rows
from repro.vector.topk import threshold_pairs, top_k_indices

_WORD = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0,
                max_size=12)

_MATRIX = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 12), st.integers(2, 8)),
    elements=st.floats(-5, 5, width=32, allow_nan=False),
)


class TestStringProperties:
    @given(_WORD, _WORD)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(_WORD)
    def test_levenshtein_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(_WORD, _WORD)
    def test_levenshtein_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b), 0)

    @given(_WORD, _WORD, _WORD)
    @settings(max_examples=40)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(_WORD, _WORD)
    def test_edit_similarity_range(self, a, b):
        assert 0.0 <= normalized_edit_similarity(a, b) <= 1.0

    @given(_WORD, _WORD)
    def test_jaccard_range_and_symmetry(self, a, b):
        score = jaccard_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == jaccard_similarity(b, a)

    @given(_WORD)
    def test_fnv_stable(self, word):
        assert fnv1a(word) == fnv1a(word)
        assert 0 <= fnv1a(word) < 2**64

    @given(_WORD, st.integers(11, 5000))
    def test_subword_ids_in_range(self, word, buckets):
        ids = subword_ids(word, buckets)
        if ids.size:
            assert ids.min() >= 0
            assert ids.max() < buckets


class TestVectorProperties:
    @given(_MATRIX)
    def test_normalize_rows_unit_or_zero(self, matrix):
        normalized = normalize_rows(matrix)
        norms = np.linalg.norm(normalized, axis=1)
        for norm in norms:
            assert norm == 0.0 or abs(norm - 1.0) < 1e-4

    @given(_MATRIX, st.integers(1, 15))
    def test_top_k_matches_argsort(self, matrix, k):
        scores = matrix[:, 0].astype(np.float64)
        top = top_k_indices(scores, k)
        k_eff = min(k, scores.shape[0])
        assert top.shape[0] == k_eff
        # the selected scores are the k largest values
        chosen = np.sort(scores[top])[::-1]
        expected = np.sort(scores)[::-1][:k_eff]
        assert np.allclose(chosen, expected)

    @given(_MATRIX, st.floats(-1, 1))
    def test_threshold_pairs_complete_and_sound(self, matrix, threshold):
        similarity = matrix @ matrix.T
        rows, cols, scores = threshold_pairs(similarity, threshold)
        assert np.all(scores >= threshold)
        assert rows.shape[0] == int((similarity >= threshold).sum())

    @given(_MATRIX)
    @settings(max_examples=30)
    def test_join_kernels_agree(self, matrix):
        left = normalize_rows(matrix)
        right = normalize_rows(matrix[::-1].copy())
        blocked = join_blocked(left, right, 0.8)
        rowkernel = join_rowkernel(left, right, 0.8)
        assert set(zip(blocked[0].tolist(), blocked[1].tolist())) == \
            set(zip(rowkernel[0].tolist(), rowkernel[1].tolist()))

    @given(_MATRIX, st.floats(0.1, 0.99))
    @settings(max_examples=30)
    def test_join_threshold_monotone(self, matrix, threshold):
        left = normalize_rows(matrix)
        strict = join_blocked(left, left, min(threshold + 0.2, 1.0))
        loose = join_blocked(left, left, threshold)
        strict_pairs = set(zip(strict[0].tolist(), strict[1].tolist()))
        loose_pairs = set(zip(loose[0].tolist(), loose[1].tolist()))
        assert strict_pairs <= loose_pairs


class TestDateProperties:
    @given(st.integers(-700_000, 2_900_000))
    def test_date_round_trip(self, days):
        assert date_to_int(int_to_date(days)) == days


class TestClusteringProperties:
    @given(values=st.lists(st.sampled_from(
        ["boots", "sneakers", "sedan", "automobile", "apple", "kitten"]),
        min_size=0, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_cluster_labels_well_formed(self, model_cache, values):
        from repro.semantic.groupby import cluster_strings

        clustering = cluster_strings(values, model_cache, 0.9)
        assert clustering.labels.shape[0] == len(values)
        if values:
            assert clustering.labels.max() < clustering.n_clusters
            assert clustering.labels.min() >= 0
            # same string always gets the same cluster
            by_value = {}
            for value, label in zip(values, clustering.labels):
                by_value.setdefault(value, set()).add(int(label))
            assert all(len(labels) == 1 for labels in by_value.values())
