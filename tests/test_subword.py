"""Tests for subword hashing and bucket fitting."""

import numpy as np

from repro.embeddings.model import fit_bucket_vectors
from repro.embeddings.subword import (
    fnv1a,
    shared_gram_fraction,
    subword_ids,
)


class TestFnv:
    def test_deterministic(self):
        assert fnv1a("hello") == fnv1a("hello")

    def test_distinct_inputs(self):
        assert fnv1a("hello") != fnv1a("hellp")

    def test_known_reference_value(self):
        # FNV-1a 64-bit of empty string is the offset basis
        assert fnv1a("") == 0xCBF29CE484222325

    def test_unicode(self):
        assert isinstance(fnv1a("café"), int)


class TestSubwordIds:
    def test_within_bucket_range(self):
        ids = subword_ids("sneakers", buckets=101)
        assert ids.dtype == np.int64
        assert (ids >= 0).all() and (ids < 101).all()

    def test_multiword_hashes_both_parts(self):
        single = subword_ids("golden")
        phrase = subword_ids("golden retriever")
        assert phrase.shape[0] > single.shape[0]

    def test_empty_for_tiny_word(self):
        # "a" decorates to "<a>"; min gram length 3 -> 1 gram
        assert subword_ids("a").shape[0] == 1

    def test_deterministic(self):
        assert np.array_equal(subword_ids("parka"), subword_ids("parka"))


class TestSharedGrams:
    def test_identical_words(self):
        assert shared_gram_fraction("boots", "boots") == 1.0

    def test_misspelling_shares_substantially(self):
        assert shared_gram_fraction("sneakers", "sneekers") > 0.2

    def test_unrelated_words_share_little(self):
        assert shared_gram_fraction("sneakers", "zucchini") < 0.1

    def test_empty_words(self):
        assert shared_gram_fraction("", "") == 1.0


class TestBucketFitting:
    def test_word_reconstruction(self):
        """Mean of a word's fitted gram vectors approximates its vector."""
        rng = np.random.default_rng(5)
        vocab = {"sneakers": 0, "parka": 1, "zucchini": 2}
        vectors = rng.standard_normal((3, 16)).astype(np.float32)
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        buckets = fit_bucket_vectors(vocab, vectors, buckets=5003)
        ids = subword_ids("sneakers", 5003)
        reconstructed = buckets[ids].mean(axis=0)
        cosine = float(
            reconstructed @ vectors[0]
            / (np.linalg.norm(reconstructed) * np.linalg.norm(vectors[0]))
        )
        assert cosine > 0.95

    def test_misspelling_lands_near_source(self):
        rng = np.random.default_rng(6)
        words = ["sneakers", "parka", "zucchini", "laptop", "camera"]
        vocab = {w: i for i, w in enumerate(words)}
        vectors = rng.standard_normal((5, 32)).astype(np.float32)
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        buckets = fit_bucket_vectors(vocab, vectors, buckets=20011)
        ids = subword_ids("sneekers", 20011)
        oov = buckets[ids].mean(axis=0)
        oov /= np.linalg.norm(oov)
        scores = vectors @ oov
        assert int(np.argmax(scores)) == vocab["sneakers"]

    def test_untouched_buckets_are_zero(self):
        vocab = {"ab": 0}
        vectors = np.ones((1, 4), dtype=np.float32)
        buckets = fit_bucket_vectors(vocab, vectors, buckets=997)
        used = subword_ids("ab", 997)
        mask = np.ones(997, dtype=bool)
        mask[used] = False
        assert np.abs(buckets[mask]).max() == 0.0
