"""Tests for polystore sources: KB, image store, federation, RDBMS."""

import pytest

from repro.errors import SourceError
from repro.polystore.federation import Federation
from repro.polystore.image_store import (
    ImageStore,
    ObjectDetectionModel,
    SyntheticImage,
)
from repro.polystore.knowledge_base import KnowledgeBase
from repro.polystore.rdbms import RelationalSource
from repro.storage.catalog import Catalog
from repro.storage.types import date_to_int


@pytest.fixture()
def kb():
    kb = KnowledgeBase()
    kb.add("parka", "category", "clothes")
    kb.add("boots", "category", "clothes")
    kb.add("sedan", "category", "vehicle")
    kb.add("jacket", "subclass_of", "clothes")
    return kb


@pytest.fixture()
def image_store(thesaurus):
    store = ImageStore()
    store.add(SyntheticImage(0, date_to_int("2022-03-01"),
                             ("dog", "shoes")))
    store.add(SyntheticImage(1, date_to_int("2022-09-01"),
                             ("jacket",)))
    store.add(SyntheticImage(2, date_to_int("2022-11-15"),
                             ("cat", "sofa", "phone")))
    return store


class TestKnowledgeBase:
    def test_query_by_predicate(self, kb):
        triples = kb.query(predicate="category")
        assert len(triples) == 3

    def test_query_wildcard_subject(self, kb):
        triples = kb.query(predicate="category", obj="clothes")
        assert {t.subject for t in triples} == {"parka", "boots"}

    def test_subjects_of(self, kb):
        assert set(kb.subjects_of("category", "clothes")) == \
            {"parka", "boots"}

    def test_triples_table(self, kb):
        table = kb.table("triples")
        assert table.num_rows == 4
        assert table.schema.names == ["subject", "predicate", "object"]

    def test_predicate_view(self, kb):
        table = kb.table("category")
        assert table.num_rows == 3
        assert table.schema.names == ["subject", "object"]

    def test_empty_predicate_view(self, kb):
        assert kb.table("nonexistent").num_rows == 0

    def test_len(self, kb):
        assert len(kb) == 4


class TestObjectDetection:
    def test_detection_deterministic(self, image_store, thesaurus):
        model_a = ObjectDetectionModel(thesaurus=thesaurus, seed=31)
        model_b = ObjectDetectionModel(thesaurus=thesaurus, seed=31)
        detections_a = model_a.detect(image_store.images[0])
        detections_b = model_b.detect(image_store.images[0])
        assert [(d.label, d.confidence) for d in detections_a] == \
            [(d.label, d.confidence) for d in detections_b]

    def test_labels_are_concept_forms(self, image_store, thesaurus):
        model = ObjectDetectionModel(thesaurus=thesaurus, miss_rate=0.0,
                                     hallucination_rate=0.0, seed=1)
        detections = model.detect(image_store.images[0])
        true_concepts = set(image_store.images[0].true_objects)
        for detection in detections:
            concept = thesaurus.concept_of(detection.label)
            assert concept is not None
            assert concept.name in true_concepts

    def test_inference_accounting(self, image_store, thesaurus):
        model = ObjectDetectionModel(thesaurus=thesaurus, seed=1)
        model.detect(image_store.images[0])
        model.detect(image_store.images[1])
        assert model.images_processed == 2
        assert model.simulated_seconds == pytest.approx(
            2 * model.seconds_per_image)

    def test_detect_table_pushdown_saves_inference(self, image_store,
                                                   thesaurus):
        eager = ObjectDetectionModel(thesaurus=thesaurus, seed=1)
        image_store.detect_table(eager)
        assert eager.images_processed == 3

        lazy = ObjectDetectionModel(thesaurus=thesaurus, seed=1)
        image_store.detect_table(lazy,
                                 after_date=date_to_int("2022-10-01"))
        assert lazy.images_processed == 1  # only the November image

    def test_detect_table_schema(self, image_store, thesaurus):
        model = ObjectDetectionModel(thesaurus=thesaurus, seed=1)
        table = image_store.detect_table(model)
        assert table.schema.names == ["image_id", "date_taken", "label",
                                      "confidence", "object_count"]

    def test_object_count_column(self, image_store, thesaurus):
        model = ObjectDetectionModel(thesaurus=thesaurus, miss_rate=0.0,
                                     hallucination_rate=0.0, seed=1)
        table = image_store.detect_table(model)
        rows = [r for r in table.to_rows() if r["image_id"] == 2]
        assert all(r["object_count"] == 3 for r in rows)

    def test_metadata_view_is_model_free(self, image_store):
        table = image_store.table("metadata")
        assert table.num_rows == 3
        assert table.schema.names == ["image_id", "date_taken"]

    def test_unknown_view_raises(self, image_store):
        with pytest.raises(SourceError):
            image_store.table("detections")


class TestRelationalSourceAndFederation:
    def test_rdbms_source(self, products_table):
        source = RelationalSource("shop", {"products": products_table})
        assert source.table_names() == ["products"]
        assert source.table("products") is products_table

    def test_rdbms_unknown_table(self, products_table):
        source = RelationalSource("shop", {"products": products_table})
        with pytest.raises(SourceError):
            source.table("ghost")

    def test_rdbms_duplicate_add(self, products_table):
        source = RelationalSource("shop")
        source.add_table("t", products_table)
        with pytest.raises(SourceError):
            source.add_table("t", products_table)

    def test_federation_registers_qualified(self, products_table, kb):
        catalog = Catalog()
        federation = Federation(catalog)
        federation.add_source(RelationalSource("shop",
                                               {"products": products_table}))
        federation.add_source(kb)
        assert "shop.products" in catalog
        assert "kb.triples" in catalog
        assert "kb.category" in catalog

    def test_federation_duplicate_source(self, kb):
        federation = Federation(Catalog())
        federation.add_source(kb)
        with pytest.raises(SourceError):
            federation.add_source(kb)

    def test_federation_rematerialize(self, kb):
        catalog = Catalog()
        federation = Federation(catalog)
        federation.add_source(kb)
        kb.add("tee", "category", "clothes")
        federation.materialize("kb")
        assert catalog.get("kb.category").num_rows == 4

    def test_federation_unknown_source(self):
        with pytest.raises(SourceError):
            Federation(Catalog()).source("ghost")
