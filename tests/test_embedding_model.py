"""Tests for the embedding model: geometry, subwords, registry."""

import numpy as np
import pytest

from repro.embeddings.model import EmbeddingModel
from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.registry import ModelRegistry, default_registry
from repro.embeddings.thesaurus import TABLE_I
from repro.errors import ModelError


class TestGeometry:
    """The latent-space structure every experiment relies on."""

    def test_synonyms_above_090(self, model, thesaurus):
        for concept in thesaurus.leaves:
            forms = concept.forms
            for a, b in zip(forms, forms[1:]):
                assert model.similarity(a, b) >= 0.88, (a, b)

    def test_hypernym_band(self, model):
        for pair in [("dog", "animal"), ("boots", "clothes"),
                     ("sedan", "vehicle")]:
            score = model.similarity(*pair)
            assert 0.60 <= score <= 0.88, pair

    def test_siblings_below_hypernyms(self, model):
        assert model.similarity("dog", "cat") < model.similarity(
            "dog", "animal")

    def test_unrelated_near_zero(self, model):
        assert abs(model.similarity("dog", "boots")) < 0.35
        assert abs(model.similarity("sedan", "apple")) < 0.35

    def test_filler_words_unrelated(self, model):
        assert abs(model.similarity("dog", "the")) < 0.35

    def test_misspellings_stay_close(self, model):
        assert model.similarity("sneakers", "sneekers") > 0.85
        assert model.similarity("jacket", "jackett") > 0.85

    def test_embeddings_are_unit_norm(self, model):
        for word in ["dog", "sneakers", "golden retriever", "xyzzy"]:
            assert np.linalg.norm(model.embed(word)) == pytest.approx(
                1.0, abs=1e-5)

    def test_multiword_phrase_in_vocab(self, model):
        assert "golden retriever" in model
        assert model.similarity("golden retriever", "puppy") > 0.85

    def test_oov_phrase_averages_parts(self, model):
        # "golden puppy" is OOV as a phrase; parts pull it to the dog anchor
        assert model.similarity("golden puppy", "dog") > 0.5


class TestApi:
    def test_embed_batch_matches_embed(self, model):
        words = ["dog", "cat", "dog", "parka"]
        matrix = model.embed_batch(words)
        for row, word in zip(matrix, words):
            assert np.allclose(row, model.embed(word), atol=1e-6)

    def test_embed_batch_shape_dtype(self, model):
        matrix = model.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, model.dim)
        assert matrix.dtype == np.float32

    def test_token_accounting(self, thesaurus):
        model = build_pretrained_model(thesaurus=thesaurus, seed=3,
                                       name="counting")
        before = model.tokens_embedded
        model.embed("dog")
        model.embed_batch(["x", "y", "x"])  # two unique
        assert model.tokens_embedded == before + 3

    def test_most_similar_recovers_synonyms(self, model):
        top = [w for w, _ in model.most_similar("dog", k=4)]
        assert set(top) <= {"puppy", "canine", "golden retriever", "hound"}

    def test_most_similar_excludes_self(self, model):
        top = [w for w, _ in model.most_similar("dog", k=10)]
        assert "dog" not in top

    def test_most_similar_with_candidates(self, model):
        top = model.most_similar("dog", k=2,
                                 candidates=["canine", "boots", "sedan"])
        assert top[0][0] == "canine"

    def test_most_similar_scores_sorted(self, model):
        scores = [s for _, s in model.most_similar("dog", k=8)]
        assert scores == sorted(scores, reverse=True)

    def test_table_i_leaf_top4_are_synonyms(self, model, thesaurus):
        """The paper's Table I shape, leaf rows: a leaf category's best
        matches are exactly its synonym surface forms."""
        for category in ("dog", "cat", "shoes", "jacket"):
            top = {w for w, _ in model.most_similar(category, k=4)}
            assert top <= thesaurus.synonyms_of(category), (category, top)
            overlap = top & set(TABLE_I[category])
            assert len(overlap) >= 3, (category, top)

    def test_table_i_hypernym_matches_are_family(self, model, thesaurus):
        """Hypernym rows: matches are own synonyms or hyponym forms."""
        for category in ("animal", "clothes"):
            top = {w for w, _ in model.most_similar(category, k=6)}
            allowed = (thesaurus.synonyms_of(category)
                       | thesaurus.hyponym_forms(category))
            assert top <= allowed, (category, top - allowed)

    def test_deterministic_rebuild(self, thesaurus):
        a = build_pretrained_model(thesaurus=thesaurus, seed=7)
        b = build_pretrained_model(thesaurus=thesaurus, seed=7)
        assert np.array_equal(a.word_vectors, b.word_vectors)

    def test_seed_changes_vectors(self, thesaurus):
        a = build_pretrained_model(thesaurus=thesaurus, seed=7)
        b = build_pretrained_model(thesaurus=thesaurus, seed=8)
        assert not np.array_equal(a.word_vectors, b.word_vectors)

    def test_extra_vocab(self, thesaurus):
        model = build_pretrained_model(thesaurus=thesaurus, seed=7,
                                       extra_vocab=["frobnicator"],
                                       name="extra")
        assert "frobnicator" in model

    def test_constructor_validation(self):
        with pytest.raises(ModelError):
            EmbeddingModel(name="bad", vocab={"a": 0},
                           word_vectors=np.zeros((2, 4), dtype=np.float32),
                           bucket_vectors=np.zeros((7, 4),
                                                   dtype=np.float32))


class TestRegistry:
    def test_register_and_get(self, model):
        registry = ModelRegistry()
        registry.register(model)
        assert registry.get(model.name) is model

    def test_duplicate_register_raises(self, model):
        registry = ModelRegistry()
        registry.register(model)
        with pytest.raises(ModelError):
            registry.register(model)

    def test_replace(self, model):
        registry = ModelRegistry()
        registry.register(model)
        registry.register(model, replace=True)
        assert len(registry) == 1

    def test_unknown_model_message_lists_names(self, model):
        registry = ModelRegistry()
        registry.register(model)
        with pytest.raises(ModelError, match="wiki-ft-100"):
            registry.get("nope")

    def test_default_registry(self):
        registry = default_registry(seed=7)
        assert "wiki-ft-100" in registry
