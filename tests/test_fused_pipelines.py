"""Fused compiled pipelines: bit-identical parity, JIT support rules,
cost gating, kernel caching (incl. the single-flight miss storm)."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernel_cache import KernelCache
from repro.engine.session import Session
from repro.errors import ExpressionError
from repro.hardware.jit import (
    NUMBA_AVAILABLE,
    PipelineSpec,
    compile_pipeline,
    compile_predicate,
    jit_supported,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.fusion import PipelineFusion
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
)
from repro.relational.logical import (
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
)
from repro.relational.physical import (
    ExecutionContext,
    FusedPipelineOp,
    execute_plan,
)
from repro.relational.pipeline import PipelineNode
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType


def _catalog_with(table: Table, name: str = "t") -> Catalog:
    catalog = Catalog()
    catalog.register(name, table)
    return catalog


def run_interpreted_and_fused(plan: LogicalPlan, catalog: Catalog,
                              batch_size: int = 3):
    """Execute ``plan`` as-is and through forced fusion; return both
    results plus the fused plan (small batches exercise streaming)."""
    interpreted = execute_plan(
        plan, ExecutionContext(catalog=catalog, batch_size=batch_size))
    fusion = PipelineFusion(CostModel(CardinalityEstimator(catalog)),
                            mode="on")
    fused_plan = fusion.run(plan)
    fused = execute_plan(
        fused_plan,
        ExecutionContext(catalog=catalog, batch_size=batch_size))
    return interpreted, fused, fused_plan


def assert_bit_identical(expected: Table, actual: Table) -> None:
    assert actual.schema.names == expected.schema.names
    for name in expected.schema.names:
        want, got = expected.column(name), actual.column(name)
        assert got.dtype == want.dtype, name
        np.testing.assert_array_equal(got, want)   # exact; NaN == NaN


# ---------------------------------------------------------------------------
# JIT support rules: one regression test per expression node type
# ---------------------------------------------------------------------------
class TestJitSupport:
    """`hardware/jit` must *reject* what it cannot soundly compile —
    never emit broken source — and compile everything else to parity."""

    @pytest.fixture()
    def batch(self):
        return Table.from_dict({
            "a": [1, 2, 3, 4], "b": [0.5, 1.5, 2.5, 3.5],
            "s": ["x", "y", "x", "z"], "flag": [True, False, True, True],
        })

    def _parity(self, predicate: Expr, batch: Table) -> None:
        assert jit_supported(predicate)
        kernel = compile_predicate(predicate)
        expected = np.asarray(predicate.evaluate(batch), dtype=bool)
        np.testing.assert_array_equal(kernel(batch), expected)

    def test_column_ref(self, batch):
        self._parity(ColumnRef("flag"), batch)

    def test_literal(self, batch):
        self._parity(Compare(">", ColumnRef("a"), Literal(2)), batch)

    def test_literal_numpy_scalar_binds_as_constant(self, batch):
        # np scalar reprs like np.float64(3.5) would break repr-based
        # codegen; constants must be namespace-bound instead
        predicate = Compare(">=", ColumnRef("b"), Literal(np.float64(1.5)))
        kernel = compile_predicate(predicate)
        assert "np.float64" not in kernel.source
        self._parity(predicate, batch)

    def test_compare_all_operators(self, batch):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            self._parity(Compare(op, ColumnRef("a"), Literal(2)), batch)

    def test_and(self, batch):
        self._parity(And(Compare(">", ColumnRef("a"), Literal(1)),
                         Compare("<", ColumnRef("b"), Literal(3.0))), batch)

    def test_or(self, batch):
        self._parity(Or(Compare("=", ColumnRef("s"), Literal("x")),
                        Compare(">", ColumnRef("a"), Literal(3))), batch)

    def test_not(self, batch):
        self._parity(Not(Compare("=", ColumnRef("s"), Literal("y"))), batch)

    def test_arith(self, batch):
        self._parity(Compare(">", Arith("*", ColumnRef("a"), Literal(2)),
                             ColumnRef("b")), batch)

    def test_in_list(self, batch):
        self._parity(InList(ColumnRef("s"), ["x", "z"]), batch)

    def test_func_rejected_not_broken_source(self, batch):
        predicate = Compare("=", Func("upper", (ColumnRef("s"),)),
                            Literal("X"))
        assert not jit_supported(predicate)
        with pytest.raises(ExpressionError, match="upper"):
            compile_predicate(predicate)

    def test_func_rejected_when_nested(self):
        nested = And(Compare(">", ColumnRef("a"), Literal(0)),
                     Compare(">", Func("abs", (ColumnRef("a"),)),
                             Literal(1)))
        assert not jit_supported(nested)
        with pytest.raises(ExpressionError):
            compile_predicate(nested)

    def test_unknown_node_rejected(self):
        class Opaque(Expr):
            def children(self):
                return ()

            def columns(self):
                return set()

        assert not jit_supported(Opaque())
        with pytest.raises(ExpressionError):
            compile_predicate(Opaque())

    def test_func_stage_splits_fusion(self, batch):
        """A UDF filter mid-chain is a barrier: the chains on either
        side fuse separately and results stay identical."""
        catalog = _catalog_with(batch)
        scan = ScanNode("t", batch.schema)
        plan = FilterNode(
            FilterNode(FilterNode(scan,
                                  Compare(">", ColumnRef("a"), Literal(0))),
                       Compare("=", Func("lower", (ColumnRef("s"),)),
                               Literal("x"))),
            Compare("<", ColumnRef("b"), Literal(3.0)))
        interpreted, fused, fused_plan = run_interpreted_and_fused(
            plan, catalog)
        assert isinstance(fused_plan, PipelineNode)      # outer chain
        assert isinstance(fused_plan.source, FilterNode)  # the UDF stays
        assert isinstance(fused_plan.source.child, PipelineNode)
        assert_bit_identical(interpreted, fused)


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted parity (property-based)
# ---------------------------------------------------------------------------
_SCHEMA = Schema([Field("i", DataType.INT64), Field("f", DataType.FLOAT64),
                  Field("s", DataType.STRING)])

_NUMERIC = ("i", "f")
_CMP = ("=", "!=", "<", "<=", ">", ">=")


@st.composite
def _tables(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    ints = draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n))
    floats = draw(st.lists(
        st.floats(-2.0, 2.0, allow_nan=False) | st.just(float("nan")),
        min_size=n, max_size=n))
    strings = draw(st.lists(
        st.sampled_from(["aa", "bb", "cc", None]), min_size=n, max_size=n))
    return Table.from_dict({"i": ints, "f": floats, "s": strings}, _SCHEMA)


@st.composite
def _predicates(draw, live):
    """A boolean expression over the live columns (depth <= 2)."""
    numeric = [c for c in live if live[c] in _NUMERIC]
    strings = [c for c in live if live[c] == "s"]

    def leaf():
        choices = []
        if numeric:
            column = draw(st.sampled_from(sorted(numeric)))
            value = draw(st.integers(-3, 3)) if live[column] == "i" \
                else draw(st.floats(-2.0, 2.0, allow_nan=False))
            choices.append(Compare(draw(st.sampled_from(_CMP)),
                                   ColumnRef(column), Literal(value)))
        if strings:
            column = draw(st.sampled_from(sorted(strings)))
            if draw(st.booleans()):
                choices.append(Compare("=", ColumnRef(column),
                                       Literal(draw(st.sampled_from(
                                           ["aa", "bb", "zz"])))))
            else:
                values = draw(st.lists(st.sampled_from(["aa", "bb", "cc"]),
                                       min_size=1, max_size=3))
                choices.append(InList(ColumnRef(column), values))
        return draw(st.sampled_from(choices))

    predicate = leaf()
    for _ in range(draw(st.integers(0, 2))):
        combiner = draw(st.sampled_from(["and", "or", "not"]))
        if combiner == "and":
            predicate = And(predicate, leaf())
        elif combiner == "or":
            predicate = Or(predicate, leaf())
        else:
            predicate = Not(predicate)
    return predicate


@st.composite
def _chains(draw):
    """A random Filter/Project/Limit chain over the scan, tracked with
    the live-column kinds so every expression stays schema-valid."""
    table = draw(_tables())
    plan: LogicalPlan = ScanNode("t", table.schema)
    live = {"i": "i", "f": "f", "s": "s"}
    alias = iter(f"p{k}" for k in range(100))
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["filter", "project", "limit"]))
        if kind == "filter":
            plan = FilterNode(plan, draw(_predicates(live)))
        elif kind == "limit":
            plan = LimitNode(plan, draw(st.integers(0, 12)))
        else:
            items, new_live = [], {}
            for column in sorted(live):
                action = draw(st.sampled_from(
                    ["keep", "rename", "drop", "compute"]))
                if action == "drop" and len(live) > 1 and new_live:
                    continue
                name = column if action == "keep" else next(alias)
                if action == "compute" and live[column] in _NUMERIC:
                    expr = Arith(draw(st.sampled_from(["+", "-", "*"])),
                                 ColumnRef(column),
                                 Literal(draw(st.integers(-2, 3))))
                    new_live[name] = "f" if live[column] == "f" else "i"
                else:
                    expr = ColumnRef(column)
                    new_live[name] = live[column]
                items.append((expr, name))
            if draw(st.booleans()):
                value = draw(st.integers(-5, 5))
                name = next(alias)
                items.append((Literal(value), name))
                new_live[name] = "i"
            plan = ProjectNode(plan, items)
            live = new_live
    return table, plan


class TestFusedParity:
    @settings(max_examples=120, deadline=None)
    @given(_chains())
    def test_random_chain_bit_identical(self, case):
        table, plan = case
        interpreted, fused, fused_plan = run_interpreted_and_fused(
            plan, _catalog_with(table))
        if any(isinstance(node, (FilterNode, ProjectNode))
               for node in plan.walk()):
            # limit-only chains have nothing to compile and stay as-is
            assert any(isinstance(node, PipelineNode)
                       for node in fused_plan.walk())
        assert_bit_identical(interpreted, fused)

    def test_empty_table(self):
        table = Table.from_dict({"i": [], "f": [], "s": []}, _SCHEMA)
        plan = ProjectNode(
            FilterNode(ScanNode("t", table.schema),
                       Compare(">", ColumnRef("i"), Literal(0))),
            [(ColumnRef("i"), "i"), (Literal(7), "k")])
        interpreted, fused, _ = run_interpreted_and_fused(
            plan, _catalog_with(table))
        assert interpreted.num_rows == 0
        assert_bit_identical(interpreted, fused)

    def test_filter_rejecting_every_row(self):
        table = Table.from_dict({"i": [1, 2, 3], "f": [0.1, 0.2, 0.3],
                                 "s": ["aa", None, "cc"]}, _SCHEMA)
        plan = FilterNode(ScanNode("t", table.schema),
                          Compare(">", ColumnRef("i"), Literal(99)))
        interpreted, fused, _ = run_interpreted_and_fused(
            plan, _catalog_with(table))
        assert interpreted.num_rows == 0
        assert_bit_identical(interpreted, fused)

    def test_nulls_flow_through_unchanged(self):
        table = Table.from_dict(
            {"i": [1, 2, 3, 4], "f": [float("nan"), 1.0, 2.0, float("nan")],
             "s": [None, "aa", None, "bb"]}, _SCHEMA)
        plan = ProjectNode(
            FilterNode(ScanNode("t", table.schema),
                       Compare(">", ColumnRef("i"), Literal(1))),
            [(ColumnRef("s"), "s"), (ColumnRef("f"), "f")])
        interpreted, fused, _ = run_interpreted_and_fused(
            plan, _catalog_with(table))
        assert None in interpreted.column("s").tolist()
        assert_bit_identical(interpreted, fused)

    def test_limit_below_filter_is_not_fused_past(self):
        """filter(limit(x)) must keep the limit outside the fused chain
        — slicing the fused output would drop the wrong rows."""
        table = Table.from_dict({"i": [5, 1, 5, 1, 5, 1], "f": [0.0] * 6,
                                 "s": ["aa"] * 6}, _SCHEMA)
        plan = FilterNode(LimitNode(ScanNode("t", table.schema), 3),
                          Compare(">", ColumnRef("i"), Literal(2)))
        interpreted, fused, fused_plan = run_interpreted_and_fused(
            plan, _catalog_with(table))
        assert interpreted.column("i").tolist() == [5, 5]
        assert isinstance(fused_plan, PipelineNode)
        assert fused_plan.source is not None           # limit is outside
        assert_bit_identical(interpreted, fused)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_backend_bit_identical(self):
        spec = _numeric_spec()
        python = compile_pipeline(spec, backend="python")
        numba_kernel = compile_pipeline(spec, backend="numba")
        assert numba_kernel.backend == "numba"
        batch = Table.from_dict({"a": list(range(100)),
                                 "b": [v * 0.5 for v in range(100)]})
        for want, got in zip(python(batch), numba_kernel(batch)):
            assert want.dtype == got.dtype
            np.testing.assert_array_equal(want, got)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_numba_request_falls_back_to_python(self):
        kernel = compile_pipeline(_numeric_spec(), backend="numba")
        assert kernel.backend == "python"
        batch = Table.from_dict({"a": [1, 2, 3], "b": [1.0, 2.0, 3.0]})
        assert kernel(batch)[0].tolist() == [4, 6]


def _numeric_spec() -> PipelineSpec:
    predicate = Compare(">", ColumnRef("a"), Literal(1))
    return PipelineSpec(
        input_columns=("a", "b"),
        ops=(("filter", (predicate,)),
             ("project", ((Arith("*", ColumnRef("a"), Literal(2)), "a2"),))),
        output=(("a2", False),))


# ---------------------------------------------------------------------------
# Cost gating and the session/server knob
# ---------------------------------------------------------------------------
def _wide_table(rows: int) -> Table:
    return Table.from_dict({
        "a": list(range(rows)),
        "b": [v * 0.25 for v in range(rows)],
    })


class TestCostGating:
    def test_ten_row_one_shot_stays_interpreted(self):
        session = Session(load_default_model=False)
        session.register_table("tiny", _wide_table(10))
        result = session.sql("SELECT a FROM tiny WHERE a > 3")
        assert result.num_rows == 6
        assert session.last_profile.fused_pipelines == 0
        assert session.state.kernel_cache.stats()["compiles"] == 0

    def test_large_scan_fuses_under_auto(self):
        session = Session(load_default_model=False)
        session.register_table("big", _wide_table(50_000))
        session.sql("SELECT a, b FROM big WHERE a > 25000")
        assert session.last_profile.fused_pipelines == 1
        assert session.last_profile.kernel_compiles == 1

    def test_should_fuse_charges_compile_cost(self):
        catalog = Catalog()
        catalog.register("tiny", _wide_table(10))
        catalog.register("big", _wide_table(50_000))
        model = CostModel(CardinalityEstimator(catalog))
        for name, expected in (("tiny", False), ("big", True)):
            scan = ScanNode(name, catalog.get(name).schema)
            chain = [FilterNode(scan,
                                Compare(">", ColumnRef("a"), Literal(0)))]
            assert model.should_fuse(chain) is expected

    def test_knob_off_never_fuses(self):
        session = Session(load_default_model=False,
                          compiled_pipelines="off")
        session.register_table("big", _wide_table(50_000))
        session.sql("SELECT a FROM big WHERE a > 10")
        assert session.last_profile.fused_pipelines == 0
        planned = session.plan_for("SELECT a FROM big WHERE a > 10")
        assert not any(isinstance(node, PipelineNode)
                       for node in planned.plan.walk())

    def test_knob_on_fuses_tiny_queries(self):
        session = Session(load_default_model=False, compiled_pipelines="on")
        session.register_table("tiny", _wide_table(10))
        result = session.sql("SELECT a FROM tiny WHERE a > 3")
        assert result.column("a").tolist() == [4, 5, 6, 7, 8, 9]
        assert session.last_profile.fused_pipelines == 1

    def test_bad_knob_value_rejected(self):
        with pytest.raises(ValueError, match="compiled_pipelines"):
            Session(load_default_model=False,
                    compiled_pipelines="sometimes")


# ---------------------------------------------------------------------------
# Kernel cache: repeats, invalidation semantics, telemetry surfaces
# ---------------------------------------------------------------------------
class TestKernelCache:
    def _session(self) -> Session:
        # result cache off so repeats re-execute (and hit the kernel
        # cache) instead of returning the snapshot
        session = Session(load_default_model=False, result_cache_bytes=0,
                          compiled_pipelines="on")
        session.register_table("t", _wide_table(100))
        return session

    def test_repeat_statement_compiles_once(self):
        session = self._session()
        query = "SELECT a, b FROM t WHERE a > 10"
        session.sql(query)
        assert session.last_profile.kernel_compiles == 1
        session.sql(query)
        assert session.last_profile.kernel_compiles == 0
        assert session.last_profile.kernel_cache_hits == 1
        stats = session.state.kernel_cache.stats()
        assert stats["compiles"] == 1
        assert stats["hits"] == 1

    def test_kernel_survives_catalog_version_bump(self):
        """Kernels are pure functions of plan structure: replacing a
        table's *data* (same schema) retires the cached plan but not the
        kernel — the re-optimized plan re-hits it (docs/serving.md)."""
        session = self._session()
        query = "SELECT a FROM t WHERE a > 10"
        session.sql(query)
        session.register_table("t", _wide_table(200), replace=True)
        result = session.sql(query)
        assert result.num_rows == 189
        stats = session.state.kernel_cache.stats()
        assert stats["compiles"] == 1          # no recompile
        assert stats["hits"] == 1

    def test_explain_analyze_shows_compiled_pipeline(self):
        session = self._session()
        text = session.explain_analyze("SELECT a FROM t WHERE a > 10")
        assert "Pipeline[" in text
        assert "compiled backend=" in text

    def test_server_metrics_expose_kernels(self):
        from repro.server import EngineServer

        with EngineServer(load_default_model=False,
                          compiled_pipelines="on") as server:
            server.register_table("t", _wide_table(100))
            server.sql("SELECT a FROM t WHERE a > 10")
            kernels = server.metrics()["kernels"]
        assert kernels["compiles"] == 1
        assert kernels["entries"] == 1

    def test_capacity_eviction(self):
        cache = KernelCache(capacity=1)
        spec_a, spec_b = _numeric_spec(), PipelineSpec(
            input_columns=("a", "b"),
            ops=(("filter", (Compare("<", ColumnRef("a"), Literal(5)),)),),
            output=(("a", False), ("b", False)))
        cache.get_or_compile("fp-a", spec_a)
        cache.get_or_compile("fp-b", spec_b)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["evictions"] == 1


@pytest.mark.concurrency
class TestKernelCacheRaces:
    def test_miss_storm_single_flight(self):
        """N threads missing on one fingerprint must produce exactly one
        compile; everyone else coalesces onto it."""
        cache = KernelCache()
        spec = _numeric_spec()
        threads = 8
        barrier = threading.Barrier(threads)
        kernels, errors = [], []

        def worker():
            try:
                barrier.wait()
                kernel, _ = cache.get_or_compile("storm", spec)
                kernels.append(kernel)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        assert len(kernels) == threads
        stats = cache.stats()
        assert stats["compiles"] == 1
        assert len({id(kernel) for kernel in kernels}) == 1
        assert stats["hits"] + stats["misses"] == threads

    def test_concurrent_distinct_keys_all_compile(self):
        cache = KernelCache()
        spec = _numeric_spec()
        keys = [f"fp{i}" for i in range(6)]
        barrier = threading.Barrier(len(keys))

        def worker(key):
            barrier.wait()
            for _ in range(3):
                cache.get_or_compile(key, spec)

        pool = [threading.Thread(target=worker, args=(key,))
                for key in keys]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats()
        assert stats["compiles"] == len(keys)
        assert stats["hits"] == 2 * len(keys)
