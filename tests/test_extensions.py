"""Tests for the extension features: quantization, top-k semantic join,
index caching, transfer planning, generative source."""

import numpy as np
import pytest

from repro.errors import IndexError_, SourceError
from repro.hardware.topology import standard_topologies
from repro.hardware.transfer import (
    DEFAULT_CODECS,
    RAW,
    TransferPlanner,
)
from repro.polystore.generative import GenerativeModelSource
from repro.relational.logical import ScanNode, SemanticJoinNode
from repro.relational.physical import execute_plan
from repro.semantic.index_cache import IndexCache
from repro.semantic.join import join_blocked
from repro.semantic.topk import join_topk, join_topk_index
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.quantization import (
    join_quantized,
    quantize_rows,
    quantized_similarity,
)


class TestQuantization:
    def test_round_trip_error_small(self, model):
        matrix = model.embed_batch(["dog", "cat", "boots", "sedan"])
        quantized = quantize_rows(matrix, assume_normalized=True)
        recovered = quantized.dequantize()
        assert np.abs(recovered - matrix).max() < 0.01

    def test_memory_4x(self, model):
        matrix = model.embed_batch(["dog", "cat", "boots", "sedan"])
        quantized = quantize_rows(matrix)
        assert quantized.nbytes < matrix.nbytes / 3.5

    def test_similarity_close_to_exact(self, model):
        words = ["dog", "canine", "boots", "sneakers", "sedan", "apple"]
        matrix = model.embed_batch(words)
        quantized = quantize_rows(matrix, assume_normalized=True)
        exact = matrix @ matrix.T
        approx = quantized_similarity(quantized, quantized)
        assert np.abs(exact - approx).max() < 0.02

    def test_join_quantized_recall(self, model):
        left = model.embed_batch(["sneakers", "parka", "sedan"])
        right = model.embed_batch(["shoes", "jacket", "car", "apple"])
        exact = set(zip(*join_blocked(left, right, 0.9)[:2]))
        ql, qr = quantize_rows(left, True), quantize_rows(right, True)
        approx = set(zip(*join_quantized(ql, qr, 0.9)[:2]))
        assert exact <= approx  # guard band guarantees no false negatives

    def test_rejects_1d(self):
        with pytest.raises(IndexError_):
            quantize_rows(np.ones(4))

    def test_zero_rows_safe(self):
        matrix = np.zeros((2, 4), dtype=np.float32)
        quantized = quantize_rows(matrix, assume_normalized=True)
        assert np.all(quantized.codes == 0)


class TestTopKJoin:
    def test_exact_topk(self, model):
        left = model.embed_batch(["dog"])
        right = model.embed_batch(["canine", "puppy", "boots", "sedan"])
        li, ri, scores = join_topk(left, right, k=2)
        assert li.tolist() == [0, 0]
        assert set(ri.tolist()) == {0, 1}  # the two dog synonyms
        assert np.all(np.diff(scores) <= 0)

    def test_min_score_floor(self, model):
        left = model.embed_batch(["dog"])
        right = model.embed_batch(["canine", "boots", "sedan"])
        li, ri, _ = join_topk(left, right, k=3, min_score=0.9)
        assert ri.tolist() == [0]  # only canine clears the floor

    def test_index_variant_agrees(self, model):
        left = model.embed_batch(["dog", "sneakers"])
        right_words = ["canine", "puppy", "shoes", "boots", "sedan"]
        right = model.embed_batch(right_words)
        exact = join_topk(left, right, k=2)
        index = BruteForceIndex().build(right)
        approx = join_topk_index(left, index, k=2)
        assert set(zip(exact[0].tolist(), exact[1].tolist())) == \
            set(zip(approx[0].tolist(), approx[1].tolist()))

    def test_topk_semantic_join_node(self, context, products_table,
                                     kb_table):
        scan_p = ScanNode("products", products_table.schema, qualifier="p")
        scan_k = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.0, top_k=1)
        result = execute_plan(plan, context)
        # every product matches exactly its single best label
        by_product = {}
        for row in result.to_rows():
            by_product.setdefault(row["p.pid"], []).append(row["k.label"])
        assert all(len(labels) == 1 for labels in by_product.values())
        assert by_product[1] == ["shoes"]     # sneakers -> shoes
        assert by_product[3] == ["car"]       # sedan -> car

    def test_topk_via_builder(self, products_table, kb_table):
        from repro.engine.session import Session

        session = Session(seed=7)
        session.register_table("products", products_table)
        session.register_table("kb", kb_table)
        result = (session.table("products", alias="p")
                  .semantic_join(session.table("kb", alias="k"),
                                 "p.ptype", "k.label", threshold=0.0,
                                 top_k=2)
                  .execute())
        counts = {}
        for row in result.to_rows():
            counts[row["p.pid"]] = counts.get(row["p.pid"], 0) + 1
        assert all(count == 2 for count in counts.values())

    def test_top_k_validation(self, products_table, kb_table):
        from repro.errors import PlanError

        scan_p = ScanNode("products", products_table.schema, qualifier="p")
        scan_k = ScanNode("kb", kb_table.schema, qualifier="k")
        with pytest.raises(PlanError):
            SemanticJoinNode(scan_p, scan_k, "a", "b", "m", 0.5, top_k=0)


class TestIndexCache:
    def test_reuse_across_queries(self, cache):
        index_cache = IndexCache()
        values = ["shoes", "jacket", "car", "fruit"]
        first = index_cache.get("brute", values, cache)
        second = index_cache.get("brute", list(values), cache)
        assert first is second
        assert index_cache.hits == 1
        assert index_cache.misses == 1

    def test_order_insensitive_fingerprint(self, cache):
        index_cache = IndexCache()
        first = index_cache.get("brute", ["a", "b", "c"], cache)
        second = index_cache.get("brute", ["c", "a", "b"], cache)
        assert first is second

    def test_distinct_kinds_distinct_indexes(self, cache):
        index_cache = IndexCache()
        index_cache.get("brute", ["a", "b"], cache)
        index_cache.get("lsh", ["a", "b"], cache)
        assert len(index_cache) == 2

    def test_unknown_kind(self, cache):
        with pytest.raises(IndexError_):
            IndexCache().get("btree", ["a"], cache)

    def test_session_join_uses_cache(self, products_table, kb_table):
        from repro.engine.session import Session

        session = Session(seed=7)
        session.register_table("products", products_table)
        session.register_table("kb", kb_table)
        query = ("SELECT p.pid FROM products AS p SEMANTIC JOIN kb AS k "
                 "ON p.ptype ~ k.label THRESHOLD 0.9")

        def hinted_plan():
            plan = session.sql_plan(query)
            for node in plan.walk():
                if isinstance(node, SemanticJoinNode):
                    node.hints["method"] = "index:brute"
            return plan

        session.execute(hinted_plan(), optimize=False)
        first_misses = session.context.index_cache.misses
        assert first_misses >= 1
        session.execute(hinted_plan(), optimize=False)
        assert session.context.index_cache.misses == first_misses
        assert session.context.index_cache.hits >= 1


class TestTransferPlanner:
    @pytest.fixture()
    def planner(self):
        """Ethernet between nodes, NVLink to the local GPU (no bypass)."""
        from repro.hardware.devices import a100_gpu, ethernet_10g, nvlink, \
            xeon_cpu
        from repro.hardware.topology import HardwareTopology

        topology = HardwareTopology(
            [xeon_cpu("cpu0"), xeon_cpu("cpu1"), a100_gpu("gpu0")],
            [ethernet_10g("cpu0", "cpu1"), nvlink("cpu0", "gpu0")],
        )
        return TransferPlanner(topology)

    def test_small_transfer_uncompressed(self, planner):
        plan = planner.plan("cpu0", "cpu1", 1_000)
        assert plan.codec.name == "raw"

    def test_huge_transfer_over_slow_link_compressed(self, planner):
        plan = planner.plan("cpu0", "cpu1", 50e9)  # 10 GbE link
        assert plan.compressed

    def test_nvlink_never_compresses(self, planner):
        # cpu0-gpu0 NVLink at 250 GB/s beats every codec's compress rate
        crossover = planner.crossover_bytes("cpu0", "gpu0")
        assert crossover >= 1e12

    def test_crossover_monotone(self, planner):
        crossover = planner.crossover_bytes("cpu0", "cpu1")
        assert 1.0 < crossover < 1e12
        below = planner.plan("cpu0", "cpu1", crossover / 4)
        above = planner.plan("cpu0", "cpu1", crossover * 4)
        assert not below.compressed
        assert above.compressed

    def test_plan_time_beats_raw_when_compressed(self, planner):
        n_bytes = 50e9
        plan = planner.plan("cpu0", "cpu1", n_bytes)
        raw_planner = TransferPlanner(planner.topology, codecs=(RAW,))
        raw_plan = raw_planner.plan("cpu0", "cpu1", n_bytes)
        assert plan.seconds < raw_plan.seconds

    def test_codecs_well_formed(self):
        for codec in DEFAULT_CODECS:
            assert codec.ratio >= 1.0


class TestGenerativeSource:
    def test_generates_grounded_mentions(self, thesaurus):
        source = GenerativeModelSource(seed=73)
        table = source.generate("dog", 20)
        assert table.num_rows == 20
        dog_forms = {f for f in thesaurus["dog"].forms}
        for row in table.to_rows():
            assert row["mention"] in dog_forms
            assert row["mention"] in row["text"]
            assert row["true_concept"] == "dog"

    def test_hypernym_prompt_draws_hyponyms(self, thesaurus):
        source = GenerativeModelSource(seed=73)
        table = source.generate("clothes", 40)
        concepts = set(table.column("true_concept").tolist())
        assert concepts <= set(thesaurus["clothes"].children)
        assert len(concepts) >= 2

    def test_accounting(self):
        source = GenerativeModelSource(seed=73, seconds_per_sample=0.5)
        source.generate("dog", 4)
        assert source.samples_generated == 4
        assert source.simulated_seconds == pytest.approx(2.0)

    def test_deterministic(self):
        a = GenerativeModelSource(seed=73).generate("cat", 5)
        b = GenerativeModelSource(seed=73).generate("cat", 5)
        assert a.column("text").tolist() == b.column("text").tolist()

    def test_unknown_prompt(self):
        with pytest.raises(SourceError):
            GenerativeModelSource(seed=73).generate("blorp", 3)

    def test_samples_table_accumulates(self):
        source = GenerativeModelSource(seed=73)
        source.generate("dog", 3)
        source.generate("cat", 2)
        assert source.table("samples").num_rows == 5

    def test_federates_into_engine(self, thesaurus):
        from repro.core import ContextRichEngine

        engine = ContextRichEngine(seed=7)
        source = GenerativeModelSource(seed=73)
        source.generate("clothes", 30)
        engine.register_source(source)
        # generated mentions join with a clean table only semantically
        engine.register_table("categories", _category_table())
        result = engine.sql("""
            SELECT g.mention, c.category, similarity
            FROM genmodel.samples AS g
            SEMANTIC JOIN categories AS c
                ON g.mention ~ c.label THRESHOLD 0.7
        """)
        assert result.num_rows > 0
        assert all(row["c.category"] == "clothes"
                   for row in result.to_rows())


def _category_table():
    from repro.storage.table import Table

    return Table.from_dict({
        "label": ["clothes"],
        "category": ["clothes"],
    })
