"""Full-pipeline integration: dark data -> model -> consolidation -> join.

The paper's Figure 1 as one flow: a generative model produces context-rich
rows, online consolidation canonicalizes their surface forms, and the
result joins with golden relational data — all inside one session.
"""

import pytest

from repro.core import ContextRichEngine
from repro.integration.consolidation import ResultConsolidator
from repro.polystore.generative import GenerativeModelSource
from repro.semantic.cache import EmbeddingCache
from repro.storage.table import Table


@pytest.fixture(scope="module")
def engine():
    engine = ContextRichEngine(seed=7)
    engine.register_table("price_list", Table.from_dict({
        "category": ["shoes", "jacket", "trousers", "dress", "shirt"],
        "base_price": [80.0, 150.0, 90.0, 120.0, 40.0],
    }))
    source = GenerativeModelSource(seed=73)
    source.generate("clothes", 60)
    engine.register_source(source)
    return engine


class TestDarkDataPipeline:
    def test_generated_rows_land_in_catalog(self, engine):
        assert engine.sql("SELECT * FROM genmodel.samples").num_rows == 60

    def test_exact_join_undermatches(self, engine):
        exact = engine.sql("""
            SELECT g.mention FROM genmodel.samples AS g
            JOIN price_list AS p ON g.mention = p.category
        """)
        semantic = engine.sql("""
            SELECT g.mention FROM genmodel.samples AS g
            SEMANTIC JOIN price_list AS p
                ON g.mention ~ p.category THRESHOLD 0.9
        """)
        assert exact.num_rows < semantic.num_rows

    def test_semantic_join_recovers_all_concepts(self, engine, thesaurus):
        result = engine.sql("""
            SELECT g.mention, g.true_concept, p.category, p.base_price
            FROM genmodel.samples AS g
            SEMANTIC JOIN price_list AS p
                ON g.mention ~ p.category THRESHOLD 0.9
        """)
        # every matched pair maps the mention to its true concept's
        # canonical category
        for row in result.to_rows():
            assert row["p.category"] == row["g.true_concept"]

    def test_consolidation_then_exact_group_by(self, engine, model):
        """Consolidate mentions to canonical forms, then plain GROUP BY
        works — Figure 3's 'auto-consolidation' enabling downstream
        relational processing."""
        samples = engine.catalog.get("genmodel.samples")
        consolidator = ResultConsolidator(EmbeddingCache(model),
                                          threshold=0.9)
        cleaned = consolidator.consolidate_column(samples, "mention")
        engine.register_table("cleaned_samples", cleaned, replace=True)
        grouped = engine.sql("""
            SELECT mention, COUNT(*) AS n FROM cleaned_samples
            GROUP BY mention ORDER BY n DESC
        """)
        raw_distinct = len(set(samples.column("mention").tolist()))
        assert grouped.num_rows < raw_distinct

    def test_contains_filter_on_generated_text(self, engine):
        result = engine.sql("""
            SELECT g.text FROM genmodel.samples AS g
            WHERE g.text ~* 'clothes' THRESHOLD 0.7
        """)
        assert result.num_rows > 0

    def test_model_accounting_visible(self, engine):
        source = engine.federation.source("genmodel")
        assert source.samples_generated == 60
        assert source.simulated_seconds == pytest.approx(12.0)
