"""Tests for the vectorized embedding pipeline: batch/scalar parity,
the arena-backed cache, and the batched operator kernels."""

import numpy as np
import pytest

from repro.embeddings.subword import fnv1a, fnv1a_batch, subword_ids, \
    subword_ids_batch
from repro.semantic.cache import EmbeddingCache
from repro.semantic.operators import _expand_pairs, _group_rows
from repro.semantic.topk import join_topk
from repro.vector.topk import top_k_indices


class TestBatchSubwordKernels:
    def test_fnv1a_batch_matches_scalar(self):
        texts = ["", "a", "abc", "sneakers", "café", "golden retriever",
                 "über", "x" * 40]
        batch = fnv1a_batch(texts)
        assert batch.dtype == np.uint64
        assert batch.tolist() == [fnv1a(t) for t in texts]

    def test_subword_ids_batch_multiset_parity(self):
        words = ["sneakers", "golden retriever", "", "a", "café latte",
                 "xyzzy12", "q1z9", "dog dog dog"]
        ids, owners = subword_ids_batch(words)
        for index, word in enumerate(words):
            mine = np.sort(ids[owners == index])
            reference = np.sort(subword_ids(word))
            assert np.array_equal(mine, reference), word

    def test_owners_nondecreasing(self):
        _, owners = subword_ids_batch(["alpha", "beta gamma", "delta"])
        assert (np.diff(owners) >= 0).all()

    def test_empty_batch(self):
        ids, owners = subword_ids_batch([])
        assert ids.size == 0 and owners.size == 0


class TestBatchScalarParity:
    """``embed_batch(texts)`` must equal stacked ``embed(t)`` calls."""

    def _check(self, model, texts):
        batch = model.embed_batch(texts)
        reference = np.stack([model.embed(t) for t in texts])
        assert batch.dtype == np.float32
        assert np.allclose(batch, reference, atol=1e-6)

    def test_in_vocab_words(self, model):
        self._check(model, ["dog", "cat", "sneakers", "parka", "sedan"])

    def test_multiword_phrases(self, model):
        self._check(model, ["golden retriever", "sedan parka",
                            "golden puppy", "the quick brown fox"])

    def test_oov_misspellings(self, model):
        self._check(model, ["sneekers", "jackett", "sedann", "xyzzyq"])

    def test_empty_and_whitespace(self, model):
        self._check(model, ["", " ", "   ", "\t"])

    def test_duplicate_heavy_batch(self, model):
        texts = ["dog", "dog", "cat", "dog", "CAT", "  dog  "] * 5
        self._check(model, texts)
        batch = model.embed_batch(texts)
        assert np.allclose(batch[0], batch[1])
        assert np.allclose(batch[2], batch[4])  # normalization collapses

    def test_property_style_random_compositions(self, model, rng):
        """Random mixes of every string class, 20 rounds."""
        vocab = sorted(model.vocab)
        for _ in range(20):
            texts = []
            for _ in range(15):
                kind = rng.integers(5)
                a = vocab[int(rng.integers(len(vocab)))]
                b = vocab[int(rng.integers(len(vocab)))]
                if kind == 0:
                    texts.append(a)
                elif kind == 1:
                    texts.append(f"{a} {b}")
                elif kind == 2:
                    texts.append(a[1:] + a[:1])  # rotated misspelling
                elif kind == 3:
                    texts.append(f"{a} q{int(rng.integers(10_000))}z")
                else:
                    texts.append("")
            self._check(model, texts)

    def test_tokens_embedded_counts_unique(self, model):
        before = model.tokens_embedded
        model.embed_batch(["x1", "x2", "x1", "X1"])
        assert model.tokens_embedded == before + 2


class TestArenaCache:
    def test_growth_preserves_ids_and_vectors(self, model):
        cache = EmbeddingCache(model, initial_capacity=2)
        first_ids = cache.row_ids(["dog", "cat"])
        first_rows = cache.rows_for(first_ids).copy()
        # force several doublings
        cache.matrix([f"grow{i}" for i in range(70)])
        assert cache.capacity >= 72
        again = cache.row_ids(["dog", "cat"])
        assert np.array_equal(first_ids, again)
        assert np.array_equal(cache.rows_for(again), first_rows)

    def test_row_ids_stable_and_dense(self, model):
        cache = EmbeddingCache(model)
        ids = cache.row_ids(["a", "b", "a", "c"])
        assert ids.tolist() == [0, 1, 0, 2]
        assert cache.rows == 3

    def test_matrix_is_arena_gather(self, model):
        cache = EmbeddingCache(model)
        matrix = cache.matrix(["dog", "cat", "dog"])
        ids = cache.row_ids(["dog", "cat", "dog"])
        assert np.array_equal(matrix, cache.arena[ids])

    def test_matrix_matches_scalar_embed(self, model):
        cache = EmbeddingCache(model)
        matrix = cache.matrix(["dog", "sneekers", "golden retriever"])
        for row, text in zip(matrix, ["dog", "sneekers",
                                      "golden retriever"]):
            assert np.allclose(row, model.embed(text), atol=1e-6)

    def test_arena_view_read_only(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["dog"])
        with pytest.raises(ValueError):
            cache.arena[0, 0] = 5.0

    def test_clear_resets(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["dog", "cat"])
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert cache.row_ids(["bird"]).tolist() == [0]

    def test_stats_shape(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["dog", "cat"])
        stats = cache.stats()
        assert stats["rows"] == 2
        assert stats["bytes"] == 2 * model.dim * 4
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestHitAccounting:
    """Freshly prefetched rows count once, as misses (the Figure-4 fix)."""

    def test_cold_matrix_counts_only_misses(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["a", "b"])
        assert cache.misses == 2
        assert cache.hits == 0

    def test_warm_matrix_counts_hits(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["a", "b"])
        cache.matrix(["a", "b"])
        assert cache.misses == 2
        assert cache.hits == 2

    def test_duplicates_within_cold_call(self, model):
        cache = EmbeddingCache(model)
        cache.matrix(["a", "a", "a"])
        assert cache.misses == 1
        assert cache.hits == 2

    def test_prefetch_counts_no_hits(self, model):
        cache = EmbeddingCache(model)
        cache.prefetch(["a", "b", "a"])
        cache.prefetch(["a", "b"])
        assert cache.misses == 2
        assert cache.hits == 0


class TestMostSimilarSelection:
    def test_matches_full_sort(self, model):
        query = model.embed("dog")
        matrix = model._vocabulary_matrix()
        scores = matrix @ query
        words = model._vocabulary_words()
        full = [words[int(i)] for i in np.argsort(-scores)
                if words[int(i)] != "dog"][:6]
        top = [w for w, _ in model.most_similar("dog", k=6)]
        assert top == full

    def test_scores_descend(self, model):
        scores = [s for _, s in model.most_similar("sneakers", k=8)]
        assert scores == sorted(scores, reverse=True)

    def test_candidates_with_duplicate_query(self, model):
        results = model.most_similar(
            "dog", k=2, candidates=["dog", "dog", "puppy", "cat", "parka"])
        assert "dog" not in [w for w, _ in results]
        assert len(results) == 2


class TestGroupRowsAndExpansion:
    def test_group_rows_covers_all_non_null(self):
        values = np.asarray(["x", None, "y", "x", None, "x"], dtype=object)
        unique, groups = _group_rows(values)
        assert sorted(unique) == ["x", "y"]
        mapping = dict(zip(unique, groups))
        assert mapping["x"].tolist() == [0, 3, 5]
        assert mapping["y"].tolist() == [2]

    def test_group_rows_all_null(self):
        unique, groups = _group_rows(np.asarray([None, None], dtype=object))
        assert unique == [] and groups == []

    def test_expansion_matches_per_pair_loop(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            left = [f"v{rng.integers(4)}" for _ in range(12)]
            right = [f"v{rng.integers(4)}" for _ in range(9)]
            lu, lg = _group_rows(np.asarray(left, dtype=object))
            ru, rg = _group_rows(np.asarray(right, dtype=object))
            pairs = rng.integers(1, len(lu) * len(ru) + 1)
            ul = rng.integers(0, len(lu), pairs).astype(np.int64)
            ur = rng.integers(0, len(ru), pairs).astype(np.int64)
            scores = rng.random(pairs).astype(np.float32)
            li, ri, s = _expand_pairs(ul, ur, scores, lg, rg)
            expected_l, expected_r, expected_s = [], [], []
            for p in range(pairs):
                lr, rr = lg[int(ul[p])], rg[int(ur[p])]
                expected_l.append(np.repeat(lr, rr.shape[0]))
                expected_r.append(np.tile(rr, lr.shape[0]))
                expected_s.append(np.full(lr.shape[0] * rr.shape[0],
                                          float(scores[p]), np.float64))
            assert np.array_equal(li, np.concatenate(expected_l))
            assert np.array_equal(ri, np.concatenate(expected_r))
            assert np.array_equal(s, np.concatenate(expected_s))


class TestBatchedTopK:
    def test_matches_per_row_reference(self, rng):
        left = rng.standard_normal((17, 16)).astype(np.float32)
        right = rng.standard_normal((23, 16)).astype(np.float32)
        for k in (1, 3, 23, 40):
            li, ri, s = join_topk(left, right, k, min_score=-0.5)
            similarity = left @ right.T
            el, er, es = [], [], []
            for row in range(similarity.shape[0]):
                top = top_k_indices(similarity[row], k)
                row_scores = similarity[row][top]
                keep = row_scores >= -0.5
                top, row_scores = top[keep], row_scores[keep]
                if top.shape[0]:
                    el.append(np.full(top.shape[0], row, dtype=np.int64))
                    er.append(top)
                    es.append(row_scores.astype(np.float32))
            assert np.array_equal(li, np.concatenate(el))
            assert np.array_equal(ri, np.concatenate(er))
            assert np.allclose(s, np.concatenate(es))


class TestSessionArenaPersistence:
    def test_arena_persists_and_reports(self):
        from repro.engine.session import Session
        from repro.storage.table import Table

        session = Session()
        session.register_table("products", Table.from_dict({
            "pid": [1, 2, 3],
            "ptype": ["sneakers", "parka", "sedan"],
        }))
        query = ("SELECT p.pid FROM products AS p "
                 "WHERE p.ptype ~ 'clothes' THRESHOLD 0.7")
        session.sql(query)
        first = session.context.metrics["embedding_arena"]
        model_name = session.default_model_name
        rows_after_first = first[model_name]["rows"]
        assert rows_after_first > 0
        session.sql(query)
        second = session.context.metrics["embedding_arena"]
        # same strings: no new rows, strictly more hits
        assert second[model_name]["rows"] == rows_after_first
        assert second[model_name]["hits"] > first[model_name]["hits"]
        assert session.last_profile.arena_rows == rows_after_first
        assert session.last_profile.arena_bytes > 0

    def test_session_embedding_cache_accessor(self):
        from repro.engine.session import Session

        session = Session()
        cache = session.embedding_cache()
        assert cache is session.embedding_cache()
        cache.matrix(["dog"])
        assert session.embedding_cache().rows == 1
