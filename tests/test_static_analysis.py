"""Tier-1 coverage for the static-analysis suite (src/repro/analysis).

Proves three things: the real engine tree is clean under all three
analyzers; the extractors actually see the code (site counts, known
edges, family rosters — so a blind extractor cannot pass as "clean");
and each seeded fixture violation under ``tests/analysis_fixtures/``
is reported with the right rule id and location, in-process and
through the CLI.  The dispatch/cost regression tests for the findings
this suite forced live here too.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import engine_config, run_analysis
from repro.analysis.dispatch import check_dispatch, family_members
from repro.analysis.fixtures import fixture_config
from repro.analysis.locks import LockChecker
from repro.errors import PlanError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.relational.logical import (
    LogicalPlan, ScanNode, SemanticSemiFilterNode)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


@pytest.fixture(scope="module")
def engine_cfg():
    return engine_config()


def line_of(path: Path, needle: str, occurrence: int = 0) -> int:
    hits = [i + 1 for i, line in enumerate(path.read_text().splitlines())
            if needle in line]
    return hits[occurrence]


# -- the real tree ------------------------------------------------------

def test_engine_tree_clean(engine_cfg):
    findings = run_analysis(engine_cfg)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_lock_extraction_sees_the_engine(engine_cfg):
    """A blind extractor must not be able to report 'clean'."""
    findings, report = LockChecker(
        engine_cfg.package, engine_cfg.locks).check()
    assert findings == []
    assert len(report.sites) >= 40
    declared = {d.name for d in engine_cfg.locks.declarations}
    assert report.acquired == declared
    assert report.constructed == declared
    pairs = report.edge_pairs()
    # the load-bearing edges of the serving path
    assert ("EngineState.model_locks", "Catalog._lock") in pairs
    assert ("EngineState.model_locks", "EmbeddingCache._lock") in pairs
    assert ("EngineState.model_locks", "KernelCache._lock") in pairs
    assert ("EmbeddingCache._lock", "EmbeddingCache._stats_lock") in pairs


def test_old_documented_lock_order_is_rejected(engine_cfg):
    """Regression for the undocumented lock edge this suite found.

    Before this PR, docs/serving.md placed the catalog at level 2 and
    the model stripes at level 3; the code holds read stripes across
    ``build_physical`` -> ``catalog.get``.  Re-declaring the old order
    must reproduce the LH001 finding on today's tree.
    """
    old_decls = []
    for decl in engine_cfg.locks.declarations:
        if decl.name == "Catalog._lock":
            decl = replace(decl, level=2)
        elif decl.name == "EngineState.model_locks":
            decl = replace(decl, level=3)
        old_decls.append(decl)
    old_model = replace(engine_cfg.locks, declarations=tuple(old_decls))
    findings, _ = LockChecker(engine_cfg.package, old_model).check()
    inversions = [f for f in findings if f.rule == "LH001"
                  and "EngineState.model_locks" in f.message
                  and "Catalog._lock" in f.message]
    assert inversions, [f.render() for f in findings]


def test_node_families_enumerated(engine_cfg):
    members = family_members(engine_cfg.package, engine_cfg.dispatch)
    assert set(members["plan"]) == {
        "ScanNode", "FilterNode", "ProjectNode", "JoinNode",
        "AggregateNode", "SortNode", "LimitNode", "UnionNode",
        "SemanticFilterNode", "SemanticSemiFilterNode",
        "SemanticJoinNode", "SemanticGroupByNode", "PipelineNode"}
    assert set(members["expr"]) == {
        "ColumnRef", "Literal", "Compare", "And", "Or", "Not", "Arith",
        "InList", "Func"}
    assert set(members["sql"]) == {
        "ColumnName", "NumberLit", "StringLit", "DateLit", "BoolOp",
        "NotOp", "Comparison", "BinaryArith", "InListExpr", "FuncCall",
        "SemanticPredicate"}


def test_every_registered_dispatcher_resolves(engine_cfg):
    findings = check_dispatch(engine_cfg)
    drift = [f for f in findings if f.rule == "DX003"]
    assert drift == [], [f.render() for f in drift]


# -- seeded fixtures ----------------------------------------------------

def test_fixture_lock_inversion_reported():
    findings = run_analysis(
        fixture_config("lock", FIXTURES), rules=("locks",))
    lh = [f for f in findings if f.rule == "LH001"]
    assert len(lh) == 1
    expected = line_of(FIXTURES / "lock_inversion.py",
                       "seeded violation") + 2
    assert lh[0].path == "analysis_fixtures/lock_inversion.py"
    assert lh[0].line == expected
    assert "Counter._lock (level 3)" in lh[0].message
    assert "Store._lock (level 2)" in lh[0].message


def test_fixture_pragmas():
    findings = run_analysis(
        fixture_config("lock", FIXTURES), rules=("locks",))
    # the justified pragma suppressed its LH001...
    suppressed_line = line_of(FIXTURES / "lock_inversion.py",
                              "demonstrates a justified suppression")
    assert not any(f.line == suppressed_line and f.rule == "LH001"
                   for f in findings)
    # ...while the bare pragma suppressed its finding but got AN001
    bare_line = line_of(FIXTURES / "lock_inversion.py",
                        "# analysis: ignore[LH001]", occurrence=1)
    an = [f for f in findings if f.rule == "AN001"]
    assert [f.line for f in an] == [bare_line]
    assert not any(f.line == bare_line and f.rule == "LH001"
                   for f in findings)


def test_fixture_missing_arm_reported():
    findings = run_analysis(
        fixture_config("dispatch", FIXTURES), rules=("dispatch",))
    rules = {f.rule for f in findings}
    assert {"DX001", "DX002"} <= rules
    dx1 = next(f for f in findings if f.rule == "DX001")
    assert dx1.path == "analysis_fixtures/missing_arm.py"
    assert dx1.line == line_of(FIXTURES / "missing_arm.py", "def render")
    assert "GammaNode" in dx1.message
    dx2 = next(f for f in findings if f.rule == "DX002")
    assert dx2.line == line_of(FIXTURES / "missing_arm.py",
                               'return "?"')


def test_fixture_version_skip_reported():
    findings = run_analysis(
        fixture_config("cache", FIXTURES), rules=("cache",))
    ck = [f for f in findings if f.rule == "CK001"
          and f.path == "analysis_fixtures/version_skip.py"]
    assert len(ck) == 1
    assert ck[0].line == line_of(FIXTURES / "version_skip.py", "def drop")
    assert "_version" in ck[0].message


def test_fixture_data_version_skip_reported():
    """The ingest dimension: a row mutator that forgets its per-table
    data_version bump is caught by the same CK001 rule."""
    findings = run_analysis(
        fixture_config("cache", FIXTURES), rules=("cache",))
    ck = [f for f in findings if f.rule == "CK001"
          and f.path == "analysis_fixtures/data_version_skip.py"]
    assert len(ck) == 1
    assert ck[0].line == line_of(FIXTURES / "data_version_skip.py",
                                 "def replace_rows")
    assert "_data_versions" in ck[0].message
    # append_rows bumps correctly (copy-on-write), so exactly one
    # finding comes from this fixture
    assert "append_rows" not in ck[0].message


def test_fixture_metric_drift_reported():
    findings = run_analysis(
        fixture_config("metric", FIXTURES), rules=("metrics",))
    mn = [f for f in findings if f.rule == "MN001"]
    assert len(mn) == 1
    assert mn[0].path == "analysis_fixtures/metric_drift.py"
    assert mn[0].line == line_of(FIXTURES / "metric_drift.py",
                                 "MN001 here")
    assert "mystery_total" in mn[0].message
    # the declared-and-registered name produced no finding, and the
    # declared vocabulary has no dead entries
    assert not [f for f in findings if f.rule == "MN002"]


def test_engine_metric_vocabulary_matches_runtime():
    """Every name the engine actually registers is declared, and with
    the right kind — checked dynamically, complementing the static
    rule (which cannot see conditional registrations)."""
    from repro.analysis.metric_names import DECLARED_METRICS
    from repro.engine.state import EngineState

    declared = {d.name: d.kind for d in DECLARED_METRICS}
    state = EngineState(load_default_model=False,
                        result_cache_bytes=1 << 20)
    for inst in state.metrics_registry.collect():
        assert declared.get(inst.name) == inst.kind, inst.name


# -- the CLI ------------------------------------------------------------

def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_cli_engine_tree_exits_zero():
    proc = _run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "static analysis clean" in proc.stdout


@pytest.mark.parametrize("kind,rule", [
    ("lock", "LH001"), ("dispatch", "DX001"), ("cache", "CK001"),
    ("metric", "MN001")])
def test_cli_fixture_exits_nonzero(kind, rule):
    proc = _run_cli("--fixture", kind, str(FIXTURES))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    reported = [line for line in proc.stdout.splitlines()
                if line.startswith(rule)]
    assert reported and "analysis_fixtures/" in reported[0] \
        and ":" in reported[0]


# -- regressions for the findings this suite forced ---------------------

def test_semantic_semi_filter_has_nonzero_cost(catalog, registry, model):
    estimator = CardinalityEstimator(catalog, registry)
    cost_model = CostModel(estimator)
    scan = ScanNode("products", catalog.get("products").schema)
    semi = SemanticSemiFilterNode(scan, "ptype", ["shoes", "jacket"],
                                  model.name, 0.8)
    cost = cost_model.node_cost(semi)
    assert cost.cpu > 0.0
    assert cost.model > 0.0


def test_semantic_semi_filter_estimates_as_child(catalog, registry, model):
    estimator = CardinalityEstimator(catalog, registry)
    scan = ScanNode("products", catalog.get("products").schema)
    semi = SemanticSemiFilterNode(scan, "ptype", ["shoes"],
                                  model.name, 0.8)
    assert estimator.estimate(semi) == estimator.estimate(scan)


def test_unknown_plan_node_cost_raises(catalog, registry):
    class MysteryNode(LogicalPlan):
        pass

    cost_model = CostModel(CardinalityEstimator(catalog, registry))
    with pytest.raises(PlanError, match="MysteryNode"):
        cost_model.node_cost(MysteryNode(()))


# -- optional tool gates (run fully in CI) ------------------------------

def test_ruff_configured():
    assert "[tool.ruff]" in (REPO_ROOT / "pyproject.toml").read_text()
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_configured():
    assert (REPO_ROOT / "mypy.ini").exists()
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed in this environment")
    proc = subprocess.run(
        ["mypy", "--config-file", "mypy.ini"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
