"""Incremental-ingest tests: append/upsert with delta-maintained caches.

The load-bearing property is **append-vs-rebuild parity**: after
``Session.append``, every query answers bit-identically to a fresh
engine over the grown table — whether the cached result was patched
from the delta (``classify_plan`` proved the plan append-monotone) or
refused and re-executed from scratch.  A hypothesis harness checks the
property across generated tables, deltas, and a query list that covers
every merge form (concat, limit, top-k with mixed directions,
mergeable aggregates) *and* the refused fallbacks (AVG, order above an
aggregate).

Deterministic units pin the rest of the contract: the split
invalidation dimension (per-table ``data_version`` moves, the catalog
version does not), plan-cache survival across appends (hit-rate 1.0),
never-stale serving after refusals, the upsert update-vs-insert split,
the classifier's refusal slugs, incremental vector-index extension
(exact for brute force, deterministic for HNSW, hit through the
IndexCache prefix fast path), the streaming log source's determinism
contract, and the server front door (scheduler admission + metrics).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.session import Session
from repro.errors import CatalogError
from repro.ingest import DeltaRefused, classify_plan
from repro.obs.export import parse_prometheus
from repro.semantic.cache import EmbeddingCache
from repro.semantic.index_cache import IndexCache
from repro.server import EngineServer
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.workloads.logs import LogWorkload, StreamingLogSource

SCHEMA = Schema([
    Field("id", DataType.INT64),
    Field("grp", DataType.STRING),
    Field("val", DataType.INT64),
    Field("score", DataType.FLOAT64),
])

U_SCHEMA = Schema([
    Field("rid", DataType.INT64),
    Field("tag", DataType.STRING),
])


def make_rows(n, start=0):
    return [{"id": start + i, "grp": "ab"[i % 2], "val": (start + i) % 7,
             "score": float(start + i) * 0.5} for i in range(n)]


def fresh_session(rows, extra=None):
    session = Session(load_default_model=False)
    session.catalog.register("t", Table.from_rows(rows, SCHEMA))
    if extra is not None:
        session.catalog.register("u", Table.from_rows(extra, U_SCHEMA))
    return session


def warm(session, query):
    """Two runs: the first computes stats (one last catalog-version
    bump), the second populates plan and result caches at the settled
    version — the same warmup discipline as test_semantic_reuse."""
    session.sql(query)
    return session.sql(query)


def assert_tables_identical(actual: Table, expected: Table) -> None:
    assert actual.schema.names == expected.schema.names
    assert actual.num_rows == expected.num_rows
    for name in expected.schema.names:
        left, right = actual.column(name), expected.column(name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), (
            f"column {name!r}: {left!r} != {right!r}")


# ---------------------------------------------------------------------------
# The split invalidation dimension
# ---------------------------------------------------------------------------
class TestDataVersioning:
    def test_append_bumps_data_version_not_catalog_version(self):
        session = fresh_session(make_rows(10))
        warm(session, "SELECT id FROM t")        # stats now settled
        catalog_before = session.catalog.version
        data_before = session.catalog.data_version("t")
        report = session.append("t", make_rows(3, start=100))
        assert report.data_version == data_before + 1
        assert session.catalog.data_version("t") == data_before + 1
        assert session.catalog.version == catalog_before
        assert session.catalog.get("t").num_rows == 13

    def test_empty_append_is_a_noop(self):
        session = fresh_session(make_rows(5))
        before = session.catalog.data_version("t")
        report = session.append("t", [])
        assert report.rows_inserted == 0
        assert report.data_version == before
        assert session.catalog.get("t").num_rows == 5

    def test_row_missing_column_raises(self):
        session = fresh_session(make_rows(5))
        with pytest.raises(CatalogError, match="missing columns"):
            session.append("t", [{"id": 99, "grp": "a"}])

    def test_mismatched_table_schema_raises(self):
        session = fresh_session(make_rows(5))
        wrong = Table.from_dict({"other": [1, 2]})
        with pytest.raises(CatalogError, match="does not match"):
            session.append("t", wrong)

    def test_upsert_unknown_key_column_raises(self):
        session = fresh_session(make_rows(5))
        with pytest.raises(CatalogError, match="upsert key"):
            session.upsert("t", make_rows(1), key="nope")


# ---------------------------------------------------------------------------
# Delta maintenance: patched entries keep hitting, bit-identically
# ---------------------------------------------------------------------------
class TestDeltaMaintenance:
    MAINTAINED = [
        "SELECT id, grp, val FROM t WHERE val > 1",
        "SELECT id FROM t LIMIT 4",
        "SELECT id, grp, val FROM t ORDER BY val DESC, id ASC LIMIT 6",
        "SELECT grp, COUNT(*) AS c, SUM(val) AS s, MIN(val) AS lo, "
        "MAX(val) AS hi FROM t GROUP BY grp",
    ]

    @pytest.mark.parametrize("query", MAINTAINED)
    def test_patched_entry_hits_and_matches_rebuild(self, query):
        base, delta = make_rows(20), make_rows(7, start=200)
        session = fresh_session(base)
        warm(session, query)
        report = session.append("t", delta)
        assert report.maintained == 1, report.refusals
        assert report.refused == 0
        hits_before = session.state.result_cache.stats().hits
        patched = session.sql(query)
        assert session.state.result_cache.stats().hits == hits_before + 1
        expected = fresh_session(base + delta).sql(query)
        assert_tables_identical(patched, expected)

    def test_plan_cache_hit_rate_stays_one_across_an_append(self):
        query = "SELECT id, val FROM t WHERE val > 2"
        session = fresh_session(make_rows(30))
        warm(session, query)
        before = session.state.plan_cache.stats()
        session.append("t", make_rows(5, start=300))
        session.sql(query)
        after = session.state.plan_cache.stats()
        assert after.misses == before.misses     # hit rate 1.0: no miss
        assert after.hits > before.hits

    def test_refused_entry_is_invalidated_never_stale(self):
        query = "SELECT AVG(val) AS a FROM t"
        base, delta = make_rows(12), make_rows(4, start=400)
        session = fresh_session(base)
        warm(session, query)
        report = session.append("t", delta)
        assert report.maintained == 0
        assert report.refusals == {"non-mergeable-aggregate:avg": 1}
        hits_before = session.state.result_cache.stats().hits
        fresh = session.sql(query)               # recomputed, not served
        assert session.state.result_cache.stats().hits == hits_before
        expected = fresh_session(base + delta).sql(query)
        assert_tables_identical(fresh, expected)

    def test_second_append_maintains_the_patched_entry_again(self):
        query = "SELECT grp, COUNT(*) AS c FROM t GROUP BY grp"
        session = fresh_session(make_rows(10))
        warm(session, query)
        first = session.append("t", make_rows(3, start=500))
        session.sql(query)                       # serve the patched entry
        second = session.append("t", make_rows(3, start=600))
        assert first.maintained == 1 and second.maintained == 1
        expected = fresh_session(
            make_rows(10) + make_rows(3, start=500)
            + make_rows(3, start=600)).sql(query)
        assert_tables_identical(session.sql(query), expected)

    def test_ingest_stats_accumulate(self):
        session = fresh_session(make_rows(8))
        warm(session, "SELECT id FROM t LIMIT 3")
        warm(session, "SELECT AVG(val) AS a FROM t")
        session.append("t", make_rows(2, start=700))
        stats = session.state.ingest.stats()
        assert stats["rows_total"] == 2
        assert stats["delta_maintained_total"] == 1
        assert stats["delta_refused_total"] == 1
        assert stats["refusal_reasons"] == {"non-mergeable-aggregate:avg": 1}


# ---------------------------------------------------------------------------
# Upsert: update path invalidates, pure-insert path maintains
# ---------------------------------------------------------------------------
class TestUpsert:
    def test_update_path_replaces_in_place_and_invalidates(self):
        query = "SELECT grp, SUM(val) AS s FROM t GROUP BY grp"
        session = fresh_session(make_rows(10))
        warm(session, query)
        report = session.upsert(
            "t", [{"id": 3, "grp": "b", "val": 6, "score": 9.0},
                  {"id": 99, "grp": "a", "val": 1, "score": 0.0}], key="id")
        assert report.rows_updated == 1
        assert report.rows_inserted == 1
        assert report.refusals == {"in-place-update": 1}
        table = session.catalog.get("t")
        assert table.num_rows == 11              # one replaced, one appended
        updated = dict(zip(table.column("id"), table.column("val")))
        assert updated[3] == 6 and updated[99] == 1
        rows = [dict(zip(table.schema.names, values)) for values in zip(
            *(table.column(name) for name in table.schema.names))]
        expected = fresh_session(rows).sql(query)
        assert_tables_identical(session.sql(query), expected)

    def test_no_collision_upsert_takes_the_append_path(self):
        query = "SELECT id, val FROM t WHERE val >= 0"
        session = fresh_session(make_rows(10))
        warm(session, query)
        report = session.upsert("t", make_rows(4, start=800), key="id")
        assert report.mode == "upsert"
        assert report.rows_updated == 0
        assert report.rows_inserted == 4
        assert report.maintained == 1            # delta maintenance ran


# ---------------------------------------------------------------------------
# The classifier's refusal vocabulary (end-to-end through real plans)
# ---------------------------------------------------------------------------
class TestClassifierRefusals:
    @pytest.mark.parametrize("query,reason", [
        ("SELECT id, tag FROM t JOIN u ON id = rid",
         "non-monotone-operator:JoinNode"),
        ("SELECT AVG(val) AS a FROM t",
         "non-mergeable-aggregate:avg"),
        ("SELECT SUM(score) AS s FROM t",
         "float-sum"),
        ("SELECT id, val FROM t ORDER BY val DESC, grp ASC LIMIT 5",
         "sort-key-projected-away:grp"),
        ("SELECT grp, COUNT(*) AS c FROM t GROUP BY grp ORDER BY c DESC",
         "order-above-aggregate"),
    ])
    def test_refusal_reason(self, query, reason):
        extra = [{"rid": i, "tag": f"tag{i % 3}"} for i in range(20)]
        session = fresh_session(make_rows(20), extra=extra)
        warm(session, query)
        report = session.append("t", make_rows(5, start=900))
        assert report.refusals == {reason: 1}, report.refusals
        assert report.maintained == 0

    def test_classify_refuses_foreign_table(self):
        session = fresh_session(make_rows(5))
        plan = session.plan_for("SELECT id FROM t").plan
        with pytest.raises(DeltaRefused) as excinfo:
            classify_plan(plan, "somewhere_else")
        assert "scan-of-other-table" in excinfo.value.reason


# ---------------------------------------------------------------------------
# Incremental vector indexes
# ---------------------------------------------------------------------------
class TestIncrementalIndexes:
    def test_bruteforce_extended_equals_rebuild_exactly(self, rng):
        old = rng.normal(size=(12, 16)).astype(np.float32)
        new = rng.normal(size=(5, 16)).astype(np.float32)
        extended = BruteForceIndex().build(old).extended(new)
        rebuilt = BruteForceIndex().build(np.vstack([old, new]))
        assert np.array_equal(extended.vectors, rebuilt.vectors)
        query = rng.normal(size=16).astype(np.float32)
        left, right = extended.search(query, 6), rebuilt.search(query, 6)
        assert np.array_equal(left.ids, right.ids)
        assert np.array_equal(left.scores, right.scores)

    def test_extended_index_is_a_fresh_object(self, rng):
        old = rng.normal(size=(6, 8)).astype(np.float32)
        base = BruteForceIndex().build(old)
        extended = base.extended(rng.normal(size=(2, 8)).astype(np.float32))
        assert base.size == 6 and extended.size == 8
        assert extended is not base

    def test_hnsw_extension_is_deterministic(self, rng):
        old = rng.normal(size=(30, 12)).astype(np.float32)
        new = rng.normal(size=(8, 12)).astype(np.float32)
        one = HNSWIndex(seed=5).build(old.copy()).extended(new.copy())
        two = HNSWIndex(seed=5).build(old.copy()).extended(new.copy())
        assert np.array_equal(one.vectors, two.vectors)
        for query in rng.normal(size=(4, 12)).astype(np.float32):
            first, second = one.search(query, 5), two.search(query, 5)
            assert np.array_equal(first.ids, second.ids)

    def test_index_cache_extends_on_sorted_prefix_growth(self, model):
        cache = EmbeddingCache(model)
        index_cache = IndexCache(seed=3)
        first = cache.row_ids(["shoes", "jacket", "car", "fruit"])
        index_cache.get_for_ids("brute", first, cache)
        grown = np.concatenate(
            [first, cache.row_ids(["dog", "kitten", "sedan"])])
        extended, unique_ids = index_cache.get_for_ids(
            "brute", grown, cache)
        assert index_cache.incremental_extends == 1
        rebuilt = BruteForceIndex().build(cache.rows_for(unique_ids))
        assert np.array_equal(extended.vectors, rebuilt.vectors)


# ---------------------------------------------------------------------------
# Streaming log source
# ---------------------------------------------------------------------------
class TestStreamingLogSource:
    def test_stream_prefix_matches_fresh_generation(self):
        stream = StreamingLogSource(initial_rows=60, batch_rows=20, seed=5)
        pieces = [stream.initial(), *stream.batches(3)]
        combined = Table.concat(pieces)
        fresh = StreamingLogSource(initial_rows=120, seed=5).initial()
        assert_tables_identical(combined, fresh)

    def test_default_stream_matches_log_workload(self):
        stream = StreamingLogSource(initial_rows=50, seed=67)
        # LogWorkload derives a different seed stream on purpose; the
        # contract is internal consistency, not cross-generator equality
        initial = stream.initial()
        assert initial.num_rows == 50
        assert initial.schema.names == LogWorkload(n=5).generate() \
            .schema.names
        batch = stream.next_batch()
        assert batch.num_rows == 50              # defaults to batch_rows
        assert batch.column("ts")[0] > initial.column("ts")[-1]

    def test_initial_twice_raises(self):
        stream = StreamingLogSource(initial_rows=5)
        stream.initial()
        with pytest.raises(RuntimeError, match="first draw"):
            stream.initial()

    def test_batch_before_initial_raises(self):
        with pytest.raises(RuntimeError, match="before streaming"):
            StreamingLogSource().next_batch()


# ---------------------------------------------------------------------------
# The server front door: scheduler admission + metrics
# ---------------------------------------------------------------------------
class TestServerIngest:
    @pytest.fixture()
    def server(self):
        with EngineServer(load_default_model=False) as server:
            server.register_table(
                "t", Table.from_rows(make_rows(20), SCHEMA))
            yield server

    def test_append_through_the_scheduler(self, server):
        query = "SELECT grp, COUNT(*) AS c FROM t GROUP BY grp"
        server.sql(query)
        server.sql(query)
        report = server.append("t", make_rows(5, start=1000))
        assert report.rows_inserted == 5
        assert report.maintained == 1
        expected = fresh_session(
            make_rows(20) + make_rows(5, start=1000)).sql(query)
        assert_tables_identical(server.sql(query), expected)

    def test_nonblocking_append_returns_a_ticket(self, server):
        ticket = server.append("t", make_rows(2, start=1100), wait=False)
        report = ticket.result()
        assert report.rows_inserted == 2

    def test_upsert_through_the_scheduler(self, server):
        report = server.upsert(
            "t", [{"id": 0, "grp": "b", "val": 5, "score": 1.0}], key="id")
        assert report.rows_updated == 1

    def test_ingest_metrics_exported(self, server):
        server.append("t", make_rows(3, start=1200))
        metrics = server.metrics()
        assert metrics["ingest"]["rows_total"] == 3
        parsed = parse_prometheus(server.export_prometheus())
        assert parsed["ingest_rows_total"] == 3.0
        staleness = [name for name in parsed
                     if name.startswith("ingest_table_staleness_seconds")]
        assert staleness, sorted(parsed)


# ---------------------------------------------------------------------------
# The property: append-then-query == rebuild-then-query, bit for bit
# ---------------------------------------------------------------------------
ROW = st.fixed_dictionaries({
    "id": st.integers(0, 50),
    "grp": st.sampled_from(["a", "b", "c"]),
    "val": st.integers(-5, 5),
    "score": st.integers(-4, 4).map(float),
})

#: Covers every merge form the classifier proves (concat, filter
#: chain, limit, top-k under each direction pattern, full sort,
#: mergeable aggregates) and the refused fallbacks (AVG, float SUM,
#: order above an aggregate) — parity must hold on BOTH paths.
PARITY_QUERIES = [
    "SELECT id, grp, val FROM t",
    "SELECT id, val FROM t WHERE val > 0",
    "SELECT id FROM t LIMIT 4",
    "SELECT id, grp, val FROM t ORDER BY val ASC, id ASC LIMIT 6",
    "SELECT id, grp, val FROM t ORDER BY val DESC, id ASC LIMIT 6",
    "SELECT id, grp, val FROM t ORDER BY val DESC, id DESC LIMIT 6",
    "SELECT id, grp, val FROM t ORDER BY grp ASC, val DESC",
    "SELECT grp, COUNT(*) AS c, SUM(val) AS s, MIN(val) AS lo, "
    "MAX(val) AS hi FROM t GROUP BY grp",
    "SELECT AVG(val) AS a FROM t",
    "SELECT SUM(score) AS s FROM t",
    "SELECT grp, COUNT(*) AS c FROM t GROUP BY grp "
    "ORDER BY c DESC, grp ASC",
]


@given(base=st.lists(ROW, min_size=1, max_size=12),
       delta=st.lists(ROW, max_size=10),
       query=st.sampled_from(PARITY_QUERIES))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_append_then_query_matches_rebuild(base, delta, query):
    live = fresh_session(base)
    warm(live, query)                        # a cached entry pre-append
    report = live.append("t", delta)
    assert report.maintained + report.refused == report.entries_seen
    patched = live.sql(query)
    expected = fresh_session(base + delta).sql(query)
    assert_tables_identical(patched, expected)
