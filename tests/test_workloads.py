"""Tests for workload generators."""

import numpy as np
import pytest

from repro.storage.catalog import Catalog
from repro.storage.types import date_to_int
from repro.workloads.labels import DirtyLabelWorkload
from repro.workloads.logs import EVENT_TEMPLATES, LogWorkload
from repro.workloads.retail import RetailWorkload
from repro.workloads.wiki_strings import WikiStringWorkload


class TestWikiStrings:
    def test_deterministic(self):
        a = WikiStringWorkload(n=100, seed=5).side("left")
        b = WikiStringWorkload(n=100, seed=5).side("left")
        assert a.column("text").tolist() == b.column("text").tolist()

    def test_sides_differ(self):
        workload = WikiStringWorkload(n=100, seed=5)
        left, right = workload.pair()
        assert left.column("text").tolist() != right.column("text").tolist()

    def test_selectivity_cutoff(self):
        workload = WikiStringWorkload(n=20_000, seed=5, selectivity=0.01)
        side = workload.side("left")
        passing = (side.column("views") >= workload.views_cutoff).mean()
        assert passing == pytest.approx(0.01, abs=0.005)

    def test_concept_fraction(self, thesaurus):
        workload = WikiStringWorkload(n=5_000, seed=5,
                                      concept_fraction=0.5)
        side = workload.side("left")
        forms = set(thesaurus.all_forms())
        fraction = np.mean([t in forms for t in side.column("text")])
        assert fraction == pytest.approx(0.5, abs=0.05)


class TestRetail:
    @pytest.fixture(scope="class")
    def workload(self):
        return RetailWorkload(n_products=50, n_users=20, n_transactions=100,
                              n_images=30, seed=11)

    def test_products_use_thesaurus_forms(self, workload, thesaurus):
        products = workload.products()
        forms = set(thesaurus.all_forms())
        assert all(t in forms for t in products.column("ptype"))

    def test_transactions_reference_valid_ids(self, workload):
        transactions = workload.transactions()
        assert transactions.column("pid").max() < 50
        assert transactions.column("uid").max() < 20

    def test_kb_labels_are_hypernym_categories(self, workload, thesaurus):
        kb = workload.knowledge_base()
        categories = {t.obj for t in kb.query(predicate="category")}
        hypernym_forms = {c.canonical for c in thesaurus.hypernyms}
        assert categories <= hypernym_forms

    def test_image_dates_in_range(self, workload):
        store = workload.image_store()
        lo = date_to_int(workload.start_date)
        hi = date_to_int(workload.end_date)
        for image in store.images:
            assert lo <= image.date_taken <= hi

    def test_register_into_catalog(self, workload):
        catalog = Catalog()
        workload.register_into(catalog)
        assert catalog.get("products").num_rows == 50
        assert catalog.get("images.detections").num_rows > 0

    def test_deterministic(self):
        a = RetailWorkload(n_products=20, seed=3).products()
        b = RetailWorkload(n_products=20, seed=3).products()
        assert a.column("ptype").tolist() == b.column("ptype").tolist()


class TestDirtyLabels:
    def test_truth_covers_all_labels(self):
        labels, truth = DirtyLabelWorkload(n=200, seed=9).generate()
        assert set(labels) <= set(truth)

    def test_truth_maps_to_concepts(self, thesaurus):
        _, truth = DirtyLabelWorkload(n=200, seed=9).generate()
        for concept_name in truth.values():
            assert concept_name in thesaurus

    def test_dirtiness_produces_variants(self):
        labels, truth = DirtyLabelWorkload(
            n=500, seed=9, synonym_rate=0.3, misspell_rate=0.3).generate()
        # misspellings should produce labels outside the thesaurus
        from repro.embeddings.thesaurus import default_thesaurus

        forms = set(default_thesaurus().all_forms())
        out_of_vocab = [l for l in labels if l.lower().strip() not in forms]
        assert len(out_of_vocab) > 50

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            DirtyLabelWorkload(synonym_rate=0.9, misspell_rate=0.9)

    def test_deterministic(self):
        a = DirtyLabelWorkload(n=100, seed=9).generate()[0]
        b = DirtyLabelWorkload(n=100, seed=9).generate()[0]
        assert a == b


class TestLogs:
    def test_messages_from_templates(self):
        table = LogWorkload(n=100, seed=3).generate()
        all_variants = {v for variants in EVENT_TEMPLATES.values()
                        for v in variants}
        assert all(m in all_variants for m in table.column("message"))

    def test_true_category_consistent(self):
        table = LogWorkload(n=100, seed=3).generate()
        for row in table.to_rows():
            assert row["message"] in EVENT_TEMPLATES[row["true_category"]]

    def test_timestamps_increasing(self):
        table = LogWorkload(n=50, seed=3).generate()
        timestamps = table.column("ts")
        assert np.all(np.diff(timestamps) > 0)
