"""End-to-end integration tests: the paper's motivating query (Figure 2)
and the log-clustering scenario, run through the whole engine."""

import pytest

from repro.core import ContextRichEngine
from repro.relational.expressions import col
from repro.storage.types import date_to_int
from repro.workloads.retail import RetailWorkload


@pytest.fixture(scope="module")
def engine():
    engine = ContextRichEngine(seed=7)
    engine.load_retail_workload(RetailWorkload(
        n_products=120, n_users=40, n_transactions=300, n_images=80,
        seed=7))
    engine.load_log_workload()
    return engine


FIGURE2_SQL = """
SELECT p.name, p.price, d.image_id, d.label, d.object_count
FROM products AS p
SEMANTIC JOIN kb.category AS k
    ON p.ptype ~ k.subject USING MODEL 'wiki-ft-100' THRESHOLD 0.9
SEMANTIC JOIN images.detections AS d
    ON p.ptype ~ d.label USING MODEL 'wiki-ft-100' THRESHOLD 0.8
WHERE p.price > 20
  AND k.object = 'clothes'
  AND d.date_taken > DATE '2022-06-01'
  AND d.object_count > 2
"""


class TestMotivatingQuery:
    def test_runs_and_returns_clothing_matches(self, engine, thesaurus):
        result = engine.sql(FIGURE2_SQL)
        assert result.num_rows > 0
        clothing_forms = thesaurus.hyponym_forms("clothes") | {
            "clothes", "clothing", "apparel", "garment"}
        for row in result.to_rows():
            assert row["p.price"] > 20
            assert row["d.object_count"] > 2

    def test_optimized_matches_naive(self, engine):
        plan = engine.sql_plan(FIGURE2_SQL)
        naive = engine.execute(plan, optimize=False)
        optimized = engine.execute(plan, optimize=True)
        key = lambda t: sorted(
            (r["p.name"], r["d.image_id"], r["d.label"])
            for r in t.to_rows())
        assert key(naive) == key(optimized)

    def test_optimizer_pushes_filters_below_joins(self, engine):
        plan = engine.optimize(engine.sql_plan(FIGURE2_SQL))
        text = plan.pretty()
        # the date/object-count filter must sit below the semantic join
        lines = text.splitlines()
        join_depth = min(i for i, line in enumerate(lines)
                         if "SemanticJoin" in line)
        filter_lines = [i for i, line in enumerate(lines)
                        if "date_taken" in line]
        assert filter_lines and all(i > join_depth for i in filter_lines)

    def test_exact_join_misses_what_semantic_finds(self, engine):
        exact = engine.sql("""
            SELECT p.pid FROM products AS p
            JOIN kb.category AS k ON p.ptype = k.subject
            WHERE k.object = 'clothes'
        """)
        semantic = engine.sql("""
            SELECT p.pid FROM products AS p
            SEMANTIC JOIN kb.category AS k
                ON p.ptype ~ k.subject THRESHOLD 0.9
            WHERE k.object = 'clothes'
        """)
        # the KB contains all surface forms, so exact matches exist, but
        # semantic matching must find at least as many product rows
        exact_pids = {r["p.pid"] for r in exact.to_rows()}
        semantic_pids = {r["p.pid"] for r in semantic.to_rows()}
        assert exact_pids <= semantic_pids


class TestLogClustering:
    def test_domain_model_recovers_categories_exactly(self, engine):
        result = engine.sql("""
            SELECT cluster_rep, COUNT(*) AS n
            FROM logs
            SEMANTIC GROUP BY message USING MODEL 'log-model' THRESHOLD 0.9
            ORDER BY n DESC
        """)
        # the specialized model clusters paraphrases into the 4 categories
        assert result.num_rows == 4

    def test_domain_model_clusters_are_pure(self, engine):
        result = engine.sql("""
            SELECT message, true_category, cluster_id, cluster_rep
            FROM logs
            SEMANTIC GROUP BY message USING MODEL 'log-model' THRESHOLD 0.9
        """, optimize=False)
        clusters: dict[int, set[str]] = {}
        for row in result.to_rows():
            clusters.setdefault(row["cluster_id"], set()).add(
                row["true_category"])
        assert all(len(cats) == 1 for cats in clusters.values())

    def test_general_model_approximates_categories(self, engine):
        """Without specialization the general model still groups most
        paraphrases (via shared tokens/subwords), just less cleanly."""
        result = engine.sql("""
            SELECT cluster_rep, COUNT(*) AS n
            FROM logs
            SEMANTIC GROUP BY message THRESHOLD 0.55
            ORDER BY n DESC
        """)
        assert 3 <= result.num_rows <= 10


class TestProfileOfSemanticQuery:
    def test_prefetch_cache_reused_across_queries(self, engine):
        statement = ("SELECT p.pid FROM products AS p "
                     "WHERE p.ptype ~ 'clothes' THRESHOLD 0.7")
        engine.sql(statement)
        first_misses = engine.last_profile.cache_misses
        # re-execute through the unoptimized path: it bypasses the
        # result cache (which would skip execution entirely), so the
        # embedding arena's session-lifetime reuse is what's measured
        engine.sql(statement, optimize=False)
        second_misses = engine.last_profile.cache_misses
        # cache is session-lifetime: second run re-embeds nothing new
        assert second_misses == first_misses
        # the optimized repeat doesn't even execute: result-cache hit
        engine.sql(statement)
        assert engine.last_profile.result_cache_hit is True
