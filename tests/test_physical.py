"""Tests for physical operators: every operator, every join type."""

import numpy as np
import pytest

from repro.relational.expressions import AggExpr, AggFunc, col
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
)
from repro.relational.physical import build_physical, execute_plan
from repro.storage.table import Table


@pytest.fixture()
def scan_products(products_table):
    return ScanNode("products", products_table.schema, qualifier="p")


@pytest.fixture()
def orders_catalog(catalog):
    orders = Table.from_dict({
        "oid": [1, 2, 3, 4, 5],
        "ptype": ["sneakers", "sneakers", "sedan", "ghost", "parka"],
        "qty": [1, 2, 3, 4, 5],
    })
    catalog.register("orders", orders)
    return catalog


class TestScanFilterProject:
    def test_scan_batches(self, context, scan_products):
        op = build_physical(scan_products, context)
        batches = list(op.batches())
        assert len(batches) == 2  # batch_size fixture = 3, table = 6 rows
        assert sum(b.num_rows for b in batches) == 6

    def test_filter(self, context, scan_products):
        plan = FilterNode(scan_products, col("p.price") > 100)
        result = execute_plan(plan, context)
        assert result.num_rows == 3  # parka, sedan, kitten

    def test_filter_empty_result(self, context, scan_products):
        plan = FilterNode(scan_products, col("p.price") > 1e9)
        result = execute_plan(plan, context)
        assert result.num_rows == 0
        assert result.schema == scan_products.schema

    def test_project_computes(self, context, scan_products):
        plan = ProjectNode(scan_products,
                           [(col("p.price") * 2, "double"),
                            (col("p.ptype"), "kind")])
        result = execute_plan(plan, context)
        assert result.schema.names == ["double", "kind"]
        assert result.column("double")[0] == pytest.approx(50.0)

    def test_operator_metrics_populated(self, context, scan_products):
        plan = FilterNode(scan_products, col("p.price") > 100)
        op = build_physical(plan, context)
        op.execute()
        assert op.rows_out == 3
        assert op.elapsed >= 0.0


class TestLimitSortUnion:
    def test_limit_stops_early(self, context, scan_products):
        plan = LimitNode(scan_products, 4)
        result = execute_plan(plan, context)
        assert result.num_rows == 4

    def test_limit_zero(self, context, scan_products):
        assert execute_plan(LimitNode(scan_products, 0),
                            context).num_rows == 0

    def test_limit_beyond_input(self, context, scan_products):
        assert execute_plan(LimitNode(scan_products, 100),
                            context).num_rows == 6

    def test_sort_descending(self, context, scan_products):
        plan = SortNode(scan_products, [("p.price", False)])
        result = execute_plan(plan, context)
        prices = result.column("p.price")
        assert np.all(np.diff(prices) <= 0)

    def test_union_all(self, context, scan_products):
        plan = UnionNode([scan_products, scan_products])
        result = execute_plan(plan, context)
        assert result.num_rows == 12


class TestHashJoin:
    def test_inner(self, orders_catalog, context, scan_products):
        orders = ScanNode("orders", orders_catalog.get("orders").schema,
                          qualifier="o")
        plan = JoinNode(orders, scan_products, JoinType.INNER,
                        ["o.ptype"], ["p.ptype"])
        result = execute_plan(plan, context)
        # sneakers x2, sedan, parka match; ghost does not
        assert result.num_rows == 4
        assert "p.price" in result.schema

    def test_left(self, orders_catalog, context, scan_products):
        orders = ScanNode("orders", orders_catalog.get("orders").schema,
                          qualifier="o")
        plan = JoinNode(orders, scan_products, JoinType.LEFT,
                        ["o.ptype"], ["p.ptype"])
        result = execute_plan(plan, context)
        assert result.num_rows == 5
        ghost_rows = [r for r in result.to_rows() if r["o.ptype"] == "ghost"]
        assert ghost_rows[0]["p.ptype"] is None

    def test_semi(self, orders_catalog, context, scan_products):
        orders = ScanNode("orders", orders_catalog.get("orders").schema,
                          qualifier="o")
        plan = JoinNode(orders, scan_products, JoinType.SEMI,
                        ["o.ptype"], ["p.ptype"])
        result = execute_plan(plan, context)
        assert result.num_rows == 4
        assert result.schema == orders.schema

    def test_anti(self, orders_catalog, context, scan_products):
        orders = ScanNode("orders", orders_catalog.get("orders").schema,
                          qualifier="o")
        plan = JoinNode(orders, scan_products, JoinType.ANTI,
                        ["o.ptype"], ["p.ptype"])
        result = execute_plan(plan, context)
        assert result.column("o.ptype").tolist() == ["ghost"]

    def test_multi_key(self, context, catalog):
        left = Table.from_dict({"a": [1, 1, 2], "b": ["x", "y", "x"],
                                "v": [10, 20, 30]})
        right = Table.from_dict({"a": [1, 2], "b": ["x", "x"],
                                 "w": [100, 200]})
        catalog.register("l", left)
        catalog.register("r", right)
        plan = JoinNode(ScanNode("l", left.schema, qualifier="l"),
                        ScanNode("r", right.schema, qualifier="r"),
                        JoinType.INNER, ["l.a", "l.b"], ["r.a", "r.b"])
        result = execute_plan(plan, context)
        assert result.num_rows == 2
        assert sorted(result.column("w").tolist()) == [100, 200]

    def test_extra_predicate(self, orders_catalog, context, scan_products):
        orders = ScanNode("orders", orders_catalog.get("orders").schema,
                          qualifier="o")
        plan = JoinNode(orders, scan_products, JoinType.INNER,
                        ["o.ptype"], ["p.ptype"],
                        extra_predicate=col("o.qty") > 1)
        result = execute_plan(plan, context)
        assert result.num_rows == 3


class TestNestedLoopJoin:
    def test_cross(self, context, scan_products, kb_table):
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = JoinNode(scan_products, kb, JoinType.CROSS)
        result = execute_plan(plan, context)
        assert result.num_rows == 6 * 6

    def test_theta(self, context, scan_products, kb_table):
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = JoinNode(scan_products, kb, JoinType.CROSS,
                        extra_predicate=col("p.ptype") == col("k.label"))
        result = execute_plan(plan, context)
        assert result.num_rows == 0  # no exact label matches (the point!)


class TestAggregate:
    def test_global_aggregate(self, context, scan_products):
        plan = AggregateNode(scan_products, [], [
            AggExpr(AggFunc.COUNT, None, "n"),
            AggExpr(AggFunc.SUM, col("p.price"), "total"),
            AggExpr(AggFunc.MIN, col("p.price"), "lo"),
            AggExpr(AggFunc.MAX, col("p.price"), "hi"),
            AggExpr(AggFunc.AVG, col("p.price"), "mean"),
        ])
        row = execute_plan(plan, context).to_rows()[0]
        assert row["n"] == 6
        assert row["total"] == pytest.approx(9462.0)
        assert row["lo"] == pytest.approx(2.0)
        assert row["hi"] == pytest.approx(9000.0)
        assert row["mean"] == pytest.approx(9462.0 / 6)

    def test_grouped(self, context, scan_products):
        plan = AggregateNode(scan_products, ["p.brand"], [
            AggExpr(AggFunc.COUNT, None, "n"),
        ])
        rows = {r["p.brand"]: r["n"] for r in
                execute_plan(plan, context).to_rows()}
        assert rows == {"acme": 3, "globex": 2, "initech": 1}

    def test_count_distinct(self, context, scan_products):
        plan = AggregateNode(scan_products, [], [
            AggExpr(AggFunc.COUNT_DISTINCT, col("p.brand"), "brands"),
        ])
        assert execute_plan(plan, context).to_rows()[0]["brands"] == 3

    def test_min_max_strings(self, context, scan_products):
        plan = AggregateNode(scan_products, [], [
            AggExpr(AggFunc.MIN, col("p.brand"), "first"),
            AggExpr(AggFunc.MAX, col("p.brand"), "last"),
        ])
        row = execute_plan(plan, context).to_rows()[0]
        assert row["first"] == "acme"
        assert row["last"] == "initech"


class TestExecuteVsBatches:
    def test_equivalence(self, context, scan_products):
        plan = FilterNode(scan_products, col("p.price") > 10)
        from_batches = Table.concat(
            list(build_physical(plan, context).batches()))
        materialized = execute_plan(plan, context)
        assert from_batches.num_rows == materialized.num_rows
