"""Semantic-subsumption reuse: containment, residuals, bit-identity.

Three layers of coverage:

- **unit**: spec extraction / family digests, the containment matcher's
  refusal axes, and the residual executor's tie guards, driven directly
  with synthetic specs and snapshots;
- **end-to-end**: every subsumption axis (threshold refinement, top-k
  truncation, predicate extension, projection subset, chained
  refinement) answered residually and compared **bit-identically** —
  schema, dtypes, values, row order — against a reuse-disabled session;
  plus every documented fallback (loosened threshold, aggregates,
  biting LIMIT, approximate-index plans, invalidation);
- **property** (hypothesis): threshold-refinement and k-truncation
  residuals equal fresh execution across random corpora and thresholds;
- **concurrency** (``-m concurrency``): a refinement storm resolves
  without any new scheduler admissions, and probes racing catalog
  invalidation never serve stale rows.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.session import Session
from repro.engine.sql.parser import parse_sql
from repro.engine.sql.binder import Binder
from repro.optimizer.optimizer import OptimizerConfig
from repro.reuse.analysis import (
    REUSE_SAFE_METHODS,
    PlanShape,
    analyze_and_augment,
    describe_plan,
    plan_containment,
)
from repro.server import EngineServer
from repro.storage.table import Table

WORDS = ["sneakers", "boots", "sandals", "loafers", "parka", "jacket",
         "coat", "blazer", "sedan", "truck", "bicycle", "kitten",
         "puppy", "apple", "banana", "bread", "shoes", "clothes",
         "vehicle", "animal", "fruit", "food", "dress", "shirt",
         "sweater", "van", "scooter", "hamster", "pear", "cake"]


def products_table(values=None, seed=3, size=20):
    # default size stays under the DIP probe/build ratio against the
    # 6-row kb table, so semantic-join plans remain dip_free (the DIP
    # refusal has its own dedicated test)
    rng = np.random.default_rng(seed)
    values = values if values is not None else list(
        rng.choice(WORDS, size=size))
    n = len(values)
    return Table.from_dict({
        "pid": list(range(n)),
        "ptype": [str(v) for v in values],
        "price": [float(p) for p in rng.integers(1, 200, size=n)],
        "brand": [["acme", "globex", "initech"][i % 3] for i in range(n)],
    })


def kb_table():
    return Table.from_dict({
        "subject": ["shoes", "jacket", "clothes", "dog", "car", "fruit"],
        "object": ["footwear", "outerwear", "apparel", "pet", "vehicle",
                   "food"],
    })


def build_session(model, reuse=True, products=None, config=None):
    session = Session(load_default_model=False, semantic_reuse=reuse,
                      optimizer_config=config)
    session.register_model(model, default=True)
    session.register_table("products", products if products is not None
                           else products_table())
    session.register_table("kb", kb_table())
    return session


def warm(session, *statements, rounds=2):
    """Stabilize lazy statistics + arena generations, then cache."""
    for _ in range(rounds):
        for statement in statements:
            session.sql(statement)


def assert_identical(a: Table, b: Table):
    """Bit-identical: names, dtypes, values, and row order."""
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        left, right = a.columns[name], b.columns[name]
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name


def bound_plan(session, text):
    return Binder(session.catalog, session.default_model_name).bind(
        parse_sql(text))


FILTER_BASE = ("SELECT ptype, price FROM products "
               "WHERE ptype ~ 'shoes' THRESHOLD 0.5 ORDER BY ptype, price")
FILTER_REFINED = ("SELECT ptype, price FROM products "
                  "WHERE ptype ~ 'shoes' THRESHOLD 0.8 "
                  "ORDER BY ptype, price")
JOIN_BASE = ("SELECT p.ptype, k.subject FROM products AS p "
             "SEMANTIC JOIN kb AS k ON p.ptype ~ k.subject "
             "THRESHOLD 0.2 TOP 5 ORDER BY p.ptype, k.subject")
JOIN_REFINED = ("SELECT p.ptype, k.subject FROM products AS p "
                "SEMANTIC JOIN kb AS k ON p.ptype ~ k.subject "
                "THRESHOLD 0.4 TOP 2 ORDER BY p.ptype, k.subject")


# ---------------------------------------------------------------------------
# unit: analysis
# ---------------------------------------------------------------------------
class TestAnalysis:
    def test_threshold_literal_shares_family(self, model):
        session = build_session(model)
        spec_a, _ = analyze_and_augment(bound_plan(session, FILTER_BASE))
        spec_b, _ = analyze_and_augment(bound_plan(session,
                                                   FILTER_REFINED))
        assert spec_a.eligible and spec_b.eligible
        assert spec_a.family == spec_b.family
        assert spec_a.slots[0].threshold == 0.5
        assert spec_b.slots[0].threshold == 0.8

    def test_probe_splits_family(self, model):
        session = build_session(model)
        spec_a, _ = analyze_and_augment(bound_plan(session, FILTER_BASE))
        spec_b, _ = analyze_and_augment(bound_plan(
            session, FILTER_BASE.replace("'shoes'", "'fruit'")))
        assert spec_a.family != spec_b.family

    def test_conjuncts_not_in_family(self, model):
        session = build_session(model)
        spec_a, _ = analyze_and_augment(bound_plan(
            session, "SELECT * FROM products WHERE ptype ~ 'shoes' "
                     "THRESHOLD 0.5"))
        spec_b, _ = analyze_and_augment(bound_plan(
            session, "SELECT * FROM products WHERE ptype ~ 'shoes' "
                     "THRESHOLD 0.5 AND price > 10"))
        assert spec_a.family == spec_b.family
        assert spec_a.conjunct_ids == ()
        assert len(spec_b.conjunct_ids) == 1

    def test_aggregates_ineligible(self, model):
        session = build_session(model)
        spec, plan = analyze_and_augment(bound_plan(
            session, "SELECT brand, COUNT(*) AS n FROM products "
                     "WHERE ptype ~ 'shoes' THRESHOLD 0.5 GROUP BY brand"))
        assert not spec.eligible
        assert "Aggregate" in spec.reason

    def test_reserved_alias_ineligible_but_executes(self, model):
        """A user alias colliding with the aux-column namespace makes
        the statement ineligible — it must run unaugmented, not crash
        on a duplicate column in the augmented projection."""
        session = build_session(model)
        text = ("SELECT ptype AS __reuse_f0 FROM products "
                "WHERE ptype ~ 'shoes' THRESHOLD 0.1 ORDER BY ptype")
        spec, _ = analyze_and_augment(bound_plan(session, text))
        assert not spec.eligible
        result = session.sql(text)
        fresh = build_session(model, reuse=False)
        assert_identical(result, fresh.sql(text))

    def test_semantic_group_by_ineligible(self, model):
        session = build_session(model)
        spec, _ = analyze_and_augment(bound_plan(
            session, "SELECT * FROM products SEMANTIC GROUP BY ptype "
                     "THRESHOLD 0.7"))
        assert not spec.eligible

    def test_augmented_plan_carries_aux_columns(self, model):
        session = build_session(model)
        spec, plan = analyze_and_augment(bound_plan(session, FILTER_BASE))
        assert spec.aux_columns == ("__reuse_f0",)
        assert "__reuse_f0" in plan.schema.names

    def test_topk_join_aux_columns(self, model):
        session = build_session(model)
        spec, plan = analyze_and_augment(bound_plan(session, JOIN_BASE))
        join_slot = spec.slots[0]
        assert join_slot.kind == "join" and join_slot.top_k == 5
        for name in ("__reuse_j0_score", "__reuse_j0_group",
                     "__reuse_j0_rank"):
            assert name in plan.schema.names
            assert name in spec.aux_columns

    def test_star_join_score_is_visible_not_aux(self, model):
        session = build_session(model)
        spec, plan = analyze_and_augment(bound_plan(
            session, "SELECT * FROM products AS p SEMANTIC JOIN kb AS k "
                     "ON p.ptype ~ k.subject THRESHOLD 0.3"))
        assert spec.slots[0].score_column == "similarity"
        assert "similarity" not in spec.aux_columns


# ---------------------------------------------------------------------------
# unit: containment matcher
# ---------------------------------------------------------------------------
def specs_for(session, base, probe):
    """Specs + shapes for matcher unit tests.

    DIP is disabled so the shapes stay ``dip_free`` — the matcher's DIP
    refusal has its own dedicated test below.
    """
    from repro.optimizer.optimizer import Optimizer

    optimizer = Optimizer(session.catalog, session.models,
                          config=OptimizerConfig(enable_dip=False),
                          execution_context=session.context)
    spec_a, plan_a = analyze_and_augment(bound_plan(session, base))
    spec_b, plan_b = analyze_and_augment(bound_plan(session, probe))
    shape_a = describe_plan(optimizer.optimize(plan_a))
    shape_b = describe_plan(optimizer.optimize(plan_b))
    return spec_a, shape_a, spec_b, shape_b


class TestMatcher:
    def test_threshold_tighten_subsumes(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, FILTER_BASE, FILTER_REFINED)
        columns = ("ptype", "price", "__reuse_f0")
        assert plan_containment(spec_a, shape_a, 10, columns,
                                spec_b, shape_b) is not None

    def test_threshold_loosen_refused(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, FILTER_REFINED, FILTER_BASE)
        columns = ("ptype", "price", "__reuse_f0")
        assert plan_containment(spec_a, shape_a, 10, columns,
                                spec_b, shape_b) is None

    def test_topk_grow_refused(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, JOIN_REFINED, JOIN_BASE)
        assert plan_containment(spec_a, shape_a, 10,
                                tuple(spec_a.aux_columns),
                                spec_b, shape_b) is None

    def test_topk_with_extra_predicate_refused(self, model):
        session = build_session(model)
        probe = JOIN_BASE.replace("ORDER BY",
                                  "WHERE p.price > 10 ORDER BY")
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, JOIN_BASE, probe)
        columns = ("p.ptype", "k.subject", "p.price",
                   *spec_a.aux_columns)
        assert plan_containment(spec_a, shape_a, 10, columns,
                                spec_b, shape_b) is None

    def test_unsafe_method_refused(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, JOIN_BASE, JOIN_REFINED)
        assert plan_containment(spec_a, shape_a, 10,
                                tuple(spec_a.aux_columns),
                                spec_b, shape_b) is not None
        unsafe = PlanShape(
            fingerprint=shape_a.fingerprint,
            methods=tuple((key, "index:hnsw")
                          for key, _ in shape_a.methods),
            dip_free=True)
        assert plan_containment(spec_a, unsafe, 10,
                                tuple(spec_a.aux_columns),
                                spec_b, unsafe) is None
        assert "index:hnsw" not in REUSE_SAFE_METHODS

    def test_fingerprint_mismatch_refused(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, FILTER_BASE, FILTER_REFINED)
        diverged = PlanShape(fingerprint="deadbeef",
                             methods=shape_a.methods, dip_free=True)
        assert plan_containment(spec_a, diverged, 10,
                                ("ptype", "price", "__reuse_f0"),
                                spec_b, shape_b) is None

    def test_dip_rewrite_refused(self, model):
        session = build_session(model)
        spec_a, shape_a, spec_b, shape_b = specs_for(
            session, FILTER_BASE, FILTER_REFINED)
        dip = PlanShape(fingerprint=shape_a.fingerprint,
                        methods=shape_a.methods, dip_free=False)
        assert plan_containment(spec_a, dip, 10,
                                ("ptype", "price", "__reuse_f0"),
                                spec_b, shape_b) is None

    def test_extra_predicate_needs_faithful_snapshot_columns(self, model):
        session = build_session(model)
        base = "SELECT ptype FROM products WHERE ptype ~ 'shoes' " \
               "THRESHOLD 0.5"
        probe = "SELECT ptype FROM products WHERE ptype ~ 'shoes' " \
                "THRESHOLD 0.5 AND price > 10"
        spec_a, shape_a, spec_b, shape_b = specs_for(session, base, probe)
        # price was projected away: not derivable from the snapshot —
        # even a same-named column in the raw name list is not trusted
        # unless the cached projection faithfully passed it through
        assert plan_containment(spec_a, shape_a, 10,
                                ("ptype", "__reuse_f0"),
                                spec_b, shape_b) is None
        assert plan_containment(spec_a, shape_a, 10,
                                ("ptype", "price", "__reuse_f0"),
                                spec_b, shape_b) is None
        # a cached statement that projects price itself does match
        wide = "SELECT ptype, price FROM products WHERE ptype ~ " \
               "'shoes' THRESHOLD 0.5"
        spec_w, shape_w, spec_b, shape_b = specs_for(session, wide, probe)
        assert plan_containment(spec_w, shape_w, 10,
                                ("ptype", "price", "__reuse_f0"),
                                spec_b, shape_b) is not None

    def test_biting_limit_refused(self, model):
        session = build_session(model)
        base = FILTER_BASE + " LIMIT 5"
        probe = FILTER_REFINED + " LIMIT 3"
        spec_a, shape_a, spec_b, shape_b = specs_for(session, base, probe)
        columns = ("ptype", "price", "__reuse_f0")
        # stored rows == limit: the refinement may need rows LIMIT cut
        assert plan_containment(spec_a, shape_a, 5, columns,
                                spec_b, shape_b) is None
        # stored rows < limit: the limit never bit, refinement is safe
        assert plan_containment(spec_a, shape_a, 4, columns,
                                spec_b, shape_b) is not None


# ---------------------------------------------------------------------------
# end-to-end: Session
# ---------------------------------------------------------------------------
class TestSessionReuse:
    def refined_matches_fresh(self, model, base, refined, expect=True,
                              products=None, config=None):
        session = build_session(model, reuse=True, products=products,
                                config=config)
        fresh = build_session(model, reuse=False, products=products,
                              config=config)
        warm(session, base)
        result = session.sql(refined)
        assert bool(session.last_profile.reuse_hit) is expect
        assert_identical(result, fresh.sql(refined))
        return session

    def test_filter_threshold_refinement(self, model):
        session = self.refined_matches_fresh(model, FILTER_BASE,
                                             FILTER_REFINED)
        assert session.state.reuse_registry.stats().hits == 1

    def test_contains_mode_refinement(self, model):
        base = ("SELECT ptype FROM products WHERE ptype ~* 'shoes' "
                "THRESHOLD 0.4 ORDER BY ptype")
        self.refined_matches_fresh(model, base,
                                   base.replace("0.4", "0.7"))

    def test_topk_refinement(self, model):
        self.refined_matches_fresh(model, JOIN_BASE, JOIN_REFINED)

    def test_threshold_join_refinement(self, model):
        base = ("SELECT p.ptype, k.subject FROM products AS p "
                "SEMANTIC JOIN kb AS k ON p.ptype ~ k.subject "
                "THRESHOLD 0.3 ORDER BY p.ptype, k.subject")
        self.refined_matches_fresh(model, base,
                                   base.replace("0.3", "0.6"))

    def test_predicate_extension(self, model):
        base = "SELECT * FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.5"
        self.refined_matches_fresh(
            model, base, base + " AND price > 40")

    def test_projection_subset_from_star(self, model):
        base = "SELECT * FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.5"
        self.refined_matches_fresh(
            model, base,
            "SELECT ptype FROM products WHERE ptype ~ 'shoes' "
            "THRESHOLD 0.5")

    def test_loosened_threshold_executes_fresh(self, model):
        self.refined_matches_fresh(model, FILTER_REFINED, FILTER_BASE,
                                   expect=False)

    def test_aggregate_refinement_executes_fresh(self, model):
        base = ("SELECT brand, COUNT(*) AS n FROM products "
                "WHERE ptype ~ 'shoes' THRESHOLD 0.5 GROUP BY brand "
                "ORDER BY brand")
        self.refined_matches_fresh(model, base,
                                   base.replace("0.5", "0.8"),
                                   expect=False)

    def test_limit_bite_executes_fresh(self, model):
        # every product matches at threshold 0: LIMIT 3 certainly bites
        base = ("SELECT ptype FROM products WHERE ptype ~ 'shoes' "
                "THRESHOLD 0.0 ORDER BY ptype LIMIT 3")
        self.refined_matches_fresh(model, base,
                                   base.replace("0.0", "0.9"),
                                   expect=False)

    def test_pure_limit_shrink_reuses(self, model):
        base = ("SELECT ptype FROM products WHERE ptype ~ 'shoes' "
                "THRESHOLD 0.0 ORDER BY ptype LIMIT 3")
        self.refined_matches_fresh(model, base,
                                   base.replace("LIMIT 3", "LIMIT 2"))

    def test_dip_rewritten_plans_fall_back(self, model):
        # 64 products vs the 6-row kb crosses DIP's probe/build ratio:
        # the optimized plan carries a semantic semi-filter, whose
        # pruning GEMM is not provably bit-consistent with the join's,
        # so subsumption refuses and the refinement executes fresh
        big = products_table(size=64)
        session = self.refined_matches_fresh(
            model, JOIN_BASE, JOIN_REFINED, expect=False, products=big)
        assert session.state.reuse_registry.stats().hits == 0

    def test_approximate_index_plans_fall_back(self, model):
        config = OptimizerConfig(semantic_join_methods=("index:lsh",))
        session = build_session(model, reuse=True, config=config)
        warm(session, JOIN_BASE)
        session.sql(JOIN_REFINED)
        assert not session.last_profile.reuse_hit
        assert session.state.reuse_registry.stats().hits == 0

    def test_chained_refinement(self, model):
        session = build_session(model, reuse=True)
        fresh = build_session(model, reuse=False)
        warm(session, FILTER_BASE)
        session.sql(FILTER_REFINED)
        assert session.last_profile.reuse_hit
        third = FILTER_REFINED.replace("0.8", "0.9")
        result = session.sql(third)
        assert session.last_profile.reuse_hit
        assert_identical(result, fresh.sql(third))

    def test_refined_repeat_is_exact_hit(self, model):
        session = build_session(model, reuse=True)
        warm(session, FILTER_BASE)
        session.sql(FILTER_REFINED)
        assert session.last_profile.reuse_hit
        session.sql(FILTER_REFINED)
        assert session.last_profile.result_cache_hit

    def test_register_table_invalidates(self, model):
        session = build_session(model, reuse=True)
        warm(session, FILTER_BASE)
        replacement = products_table(seed=11)
        session.register_table("products", replacement, replace=True)
        fresh = build_session(model, reuse=False, products=replacement)
        result = session.sql(FILTER_REFINED)
        assert not session.last_profile.reuse_hit
        assert_identical(result, fresh.sql(FILTER_REFINED))

    def test_shadowing_alias_never_feeds_extra_predicate(self, model):
        """`cost AS price` must not let `AND price > x` bind the cost
        values: resolution is restricted to faithful passthroughs, so
        the refinement executes fresh (and matches a fresh session)."""
        session = build_session(model, reuse=True)
        fresh = build_session(model, reuse=False)
        base = ("SELECT ptype, pid AS price FROM products "
                "WHERE ptype ~ 'shoes' THRESHOLD 0.4 ORDER BY ptype")
        refined = base.replace(" ORDER BY", " AND price > 100 ORDER BY")
        warm(session, base)
        result = session.sql(refined)
        assert not session.last_profile.reuse_hit
        assert_identical(result, fresh.sql(refined))

    def test_shadowing_alias_never_feeds_projection(self, model):
        """A probe selecting `price` must not be served the cached
        statement's `pid AS price` column."""
        session = build_session(model, reuse=True)
        fresh = build_session(model, reuse=False)
        base = ("SELECT ptype, pid AS price FROM products "
                "WHERE ptype ~ 'shoes' THRESHOLD 0.4 ORDER BY ptype")
        probe = ("SELECT price FROM products "
                 "WHERE ptype ~ 'shoes' THRESHOLD 0.4 ORDER BY ptype")
        warm(session, base)
        result = session.sql(probe)
        assert not session.last_profile.reuse_hit
        assert_identical(result, fresh.sql(probe))

    def test_faithful_passthrough_still_reuses(self, model):
        """Unaliased projections remain eligible for both axes."""
        session = build_session(model, reuse=True)
        fresh = build_session(model, reuse=False)
        base = ("SELECT ptype, price FROM products "
                "WHERE ptype ~ 'shoes' THRESHOLD 0.4 ORDER BY ptype")
        refined = base.replace(" ORDER BY", " AND price > 100 ORDER BY")
        warm(session, base)
        result = session.sql(refined)
        assert session.last_profile.reuse_hit
        assert_identical(result, fresh.sql(refined))

    def test_results_are_isolated_copies(self, model):
        session = build_session(model, reuse=True)
        warm(session, FILTER_BASE)
        first = session.sql(FILTER_REFINED)
        if first.num_rows:
            first.columns["price"][:] = -1.0
        again = session.sql(FILTER_REFINED)
        assert not (again.column("price") == -1.0).any()


# ---------------------------------------------------------------------------
# end-to-end: server
# ---------------------------------------------------------------------------
class TestServerReuse:
    def test_submit_accounts_reuse_noop(self, model):
        with EngineServer(load_default_model=False) as server:
            server.register_model(model, default=True)
            server.register_table("products", products_table())
            server.register_table("kb", kb_table())
            for _ in range(2):
                server.sql(FILTER_BASE, tenant="alice")
            admitted_before = server.scheduler.stats()["admitted"]
            result = server.sql(FILTER_REFINED, tenant="alice")
            metrics = server.metrics()
            assert metrics["scheduler"]["reuse_noops"] == 1
            assert metrics["scheduler"]["tenants"]["alice"][
                "reuse_hits"] == 1
            assert metrics["reuse"]["hits"] == 1
            # the residual never entered a queue or took a worker
            assert server.scheduler.stats()["admitted"] == admitted_before
            fresh = Session(load_default_model=False,
                            semantic_reuse=False)
            fresh.register_model(model, default=True)
            fresh.register_table("products", products_table())
            fresh.register_table("kb", kb_table())
            assert_identical(result, fresh.sql(FILTER_REFINED))

    def test_client_session_profile_flags(self, model):
        with EngineServer(load_default_model=False) as server:
            server.register_model(model, default=True)
            server.register_table("products", products_table())
            server.register_table("kb", kb_table())
            client = server.session(tenant="bob")
            for _ in range(2):
                client.sql(FILTER_BASE)
            client.sql(FILTER_REFINED)
            assert client.last_profile.reuse_hit
            assert client.last_profile.lane == "interactive"
            assert client.last_profile.result_cache_hit is False


# ---------------------------------------------------------------------------
# property tests: residuals are always bit-identical to fresh execution
# ---------------------------------------------------------------------------
@st.composite
def corpus_and_thresholds(draw):
    values = draw(st.lists(st.sampled_from(WORDS), min_size=4,
                           max_size=20))
    low = draw(st.floats(min_value=0.0, max_value=0.9,
                         allow_nan=False))
    high = draw(st.floats(min_value=float(low), max_value=1.0,
                          allow_nan=False))
    return values, float(low), float(high)


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(data=corpus_and_thresholds())
    def test_threshold_refinement_bit_identical(self, model, data):
        values, low, high = data
        products = products_table(values=values)
        session = build_session(model, reuse=True, products=products)
        fresh = build_session(model, reuse=False, products=products)
        # fixed-point rendering: the SQL lexer takes no exponents (the
        # two sessions see identical literals either way)
        base = (f"SELECT ptype, price FROM products WHERE ptype ~ 'shoes'"
                f" THRESHOLD {low:.6f} ORDER BY ptype, price")
        refined = (f"SELECT ptype, price FROM products WHERE ptype ~ "
                   f"'shoes' THRESHOLD {high:.6f} ORDER BY ptype, price")
        warm(session, base)
        assert_identical(session.sql(refined), fresh.sql(refined))

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.sampled_from(WORDS), min_size=4,
                           max_size=20),
           k_large=st.integers(min_value=2, max_value=8),
           k_delta=st.integers(min_value=0, max_value=6),
           threshold=st.sampled_from([0.0, 0.2, 0.35, 0.5]))
    def test_k_truncation_bit_identical(self, model, values, k_large,
                                        k_delta, threshold):
        k_small = max(1, k_large - k_delta)
        products = products_table(values=values)
        session = build_session(model, reuse=True, products=products)
        fresh = build_session(model, reuse=False, products=products)
        base = (f"SELECT p.ptype, k.subject FROM products AS p "
                f"SEMANTIC JOIN kb AS k ON p.ptype ~ k.subject "
                f"THRESHOLD {threshold} TOP {k_large} "
                f"ORDER BY p.ptype, k.subject")
        refined = base.replace(f"TOP {k_large}", f"TOP {k_small}")
        warm(session, base)
        assert_identical(session.sql(refined), fresh.sql(refined))


# ---------------------------------------------------------------------------
# concurrency lane
# ---------------------------------------------------------------------------
@pytest.mark.concurrency
class TestReuseRaces:
    def test_refinement_storm_resolves_without_admissions(self, model):
        """Eight clients refining a warmed base statement: every answer
        is bit-identical and none of them occupies a scheduler worker —
        the base executed once (plus warmup), the storm is all no-ops."""
        with EngineServer(load_default_model=False) as server:
            server.register_model(model, default=True)
            server.register_table("products", products_table())
            server.register_table("kb", kb_table())
            for _ in range(2):
                server.sql(FILTER_BASE)
            admitted_before = server.scheduler.stats()["admitted"]
            fresh = Session(load_default_model=False,
                            semantic_reuse=False)
            fresh.register_model(model, default=True)
            fresh.register_table("products", products_table())
            fresh.register_table("kb", kb_table())
            reference = fresh.sql(FILTER_REFINED)
            results: list = [None] * 8
            errors: list = []

            def refine(slot):
                try:
                    client = server.session(tenant=f"t{slot}")
                    results[slot] = client.sql(FILTER_REFINED)
                except Exception as error:    # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=refine, args=(slot,))
                       for slot in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            for result in results:
                assert_identical(result, reference)
            # no refinement entered a queue or took a worker
            assert server.scheduler.stats()["admitted"] == admitted_before
            stats = server.metrics()
            noops = (stats["scheduler"]["reuse_noops"]
                     + stats["result_cache"]["hits"])
            assert noops >= 8

    def test_probe_racing_invalidation_never_stale(self, model):
        """Refinements racing ``register_table`` must answer from one of
        the two catalog states, never a mix, and settle on the new one."""
        old = products_table(seed=3)
        new = products_table(seed=11)
        fresh_old = Session(load_default_model=False,
                            semantic_reuse=False)
        fresh_old.register_model(model, default=True)
        fresh_old.register_table("products", old)
        fresh_old.register_table("kb", kb_table())
        reference_old = fresh_old.sql(FILTER_REFINED)
        fresh_new = Session(load_default_model=False,
                            semantic_reuse=False)
        fresh_new.register_model(model, default=True)
        fresh_new.register_table("products", new)
        fresh_new.register_table("kb", kb_table())
        reference_new = fresh_new.sql(FILTER_REFINED)

        with EngineServer(load_default_model=False) as server:
            server.register_model(model, default=True)
            server.register_table("products", old)
            server.register_table("kb", kb_table())
            for _ in range(2):
                server.sql(FILTER_BASE)
            stop = threading.Event()
            errors: list = []

            def refine():
                client = server.session(tenant="prober")
                while not stop.is_set():
                    result = client.sql(FILTER_REFINED)
                    rows = [tuple(r.items()) for r in result.to_rows()]
                    ok_old = rows == [tuple(r.items()) for r
                                      in reference_old.to_rows()]
                    ok_new = rows == [tuple(r.items()) for r
                                      in reference_new.to_rows()]
                    if not (ok_old or ok_new):
                        errors.append(rows)
                        return

            threads = [threading.Thread(target=refine) for _ in range(4)]
            for thread in threads:
                thread.start()
            for _ in range(5):
                server.register_table("products", new, replace=True)
                server.sql(FILTER_BASE)
                server.register_table("products", old, replace=True)
                server.sql(FILTER_BASE)
            server.register_table("products", new, replace=True)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            # settled: the post-invalidation answer is the new state's
            final = server.sql(FILTER_REFINED)
            assert_identical(final, fresh_new.sql(FILTER_REFINED))
