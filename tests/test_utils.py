"""Tests for repro.utils: rng derivation, timing, text helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng
from repro.utils.text import ngrams, normalize_token, tokenize
from repro.utils.timing import Timer, timed


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(42).standard_normal(8)
        b = make_rng(42).standard_normal(8)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_derive_seed_stable(self):
        assert derive_seed(7, "leaf", "dog") == derive_seed(7, "leaf", "dog")

    def test_derive_seed_path_sensitive(self):
        assert derive_seed(7, "leaf", "dog") != derive_seed(7, "leaf", "cat")
        assert derive_seed(7, "leaf") != derive_seed(7, "hyper")

    def test_derive_seed_parent_sensitive(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_derive_seed_accepts_ints(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 12)

    def test_derive_seed_in_valid_range(self):
        seed = derive_seed(999, "anything")
        assert 0 <= seed < 2**63


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure():
            pass
        with timer.measure():
            pass
        assert timer.calls == 2
        assert timer.elapsed >= 0.0
        assert timer.last <= timer.elapsed + 1e-9

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.calls == 0
        assert timer.elapsed == 0.0

    def test_timed_sink(self):
        sink = {}
        with timed(sink, "step"):
            pass
        with timed(sink, "step"):
            pass
        assert sink["step"] >= 0.0


class TestText:
    def test_normalize_lowercases(self):
        assert normalize_token("Golden Retriever") == "golden retriever"

    def test_normalize_collapses_whitespace(self):
        assert normalize_token("  a   b ") == "a b"

    def test_tokenize_basic(self):
        assert tokenize("The Cat sat.") == ["the", "cat", "sat"]

    def test_tokenize_keeps_hyphens(self):
        assert tokenize("buy lace-ups now") == ["buy", "lace-ups", "now"]

    def test_tokenize_keeps_apostrophes(self):
        assert tokenize("it's fine") == ["it's", "fine"]

    def test_ngrams_boundary_markers(self):
        grams = ngrams("cat", 3, 3)
        assert "<ca" in grams
        assert "at>" in grams

    def test_ngrams_no_boundary(self):
        assert ngrams("cat", 3, 3, boundary=False) == ["cat"]

    def test_ngrams_range(self):
        grams = ngrams("dog", 3, 5)
        assert "<dog>" in grams
        assert all(3 <= len(g) <= 5 for g in grams)

    def test_ngrams_short_word(self):
        # decorated 'a' -> '<a>' has length 3
        assert ngrams("a", 3, 5) == ["<a>"]

    def test_ngrams_longer_than_word(self):
        assert ngrams("ab", 5, 6) == []
