"""Tests for cardinality estimation, cost model, join order, DIP, and the
full optimizer pipeline."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import Cost, CostModel, CostParams, \
    semantic_join_method_cost
from repro.optimizer.dip import DataInducedPredicates
from repro.optimizer.join_order import JoinOrderOptimizer
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.physical_selection import PhysicalSelector
from repro.optimizer.properties import traits_of
from repro.relational.expressions import col
from repro.relational.logical import (
    FilterNode,
    JoinNode,
    JoinType,
    ScanNode,
    SemanticFilterNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
)
from repro.relational.physical import ExecutionContext, execute_plan
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import make_rng


@pytest.fixture()
def big_catalog(registry):
    """Catalog with size asymmetries the optimizer should exploit."""
    rng = make_rng(3)
    types = ["sneakers", "parka", "sedan", "kitten", "blazer", "apple",
             "sofa", "cap", "jeans", "dslr"]
    n = 1_000
    products = Table.from_dict({
        "pid": list(range(n)),
        "ptype": [types[int(i)] for i in rng.integers(0, len(types), n)],
        "price": rng.uniform(1, 100, n).tolist(),
    })
    kb = Table.from_dict({
        "label": ["shoes", "jacket", "trousers", "dog", "car", "fruit"],
        "category": ["clothes", "clothes", "clothes", "animal", "vehicle",
                     "food"],
    })
    transactions = Table.from_dict({
        "tid": list(range(5_000)),
        "pid": [int(i) for i in rng.integers(0, n, 5_000)],
        "qty": [int(i) for i in rng.integers(1, 5, 5_000)],
    })
    catalog = Catalog()
    catalog.register("products", products)
    catalog.register("kb", kb)
    catalog.register("transactions", transactions)
    return catalog


@pytest.fixture()
def big_context(big_catalog, registry):
    return ExecutionContext(catalog=big_catalog, models=registry)


def _scan(catalog, name, alias):
    return ScanNode(name, catalog.get(name).schema, qualifier=alias)


class TestCardinality:
    def test_scan(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        assert estimator.estimate(_scan(big_catalog, "products", "p")) == \
            1_000

    def test_filter_range(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = FilterNode(_scan(big_catalog, "products", "p"),
                          col("p.price") > 90)
        estimate = estimator.estimate(plan)
        assert 50 <= estimate <= 200  # ~10% of 1000

    def test_filter_equality(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = FilterNode(_scan(big_catalog, "products", "p"),
                          col("p.ptype") == "sedan")
        estimate = estimator.estimate(plan)
        assert 80 <= estimate <= 120  # 1/10 of types

    def test_flipped_comparison(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        from repro.relational.expressions import Compare, Literal, ColumnRef

        plan = FilterNode(_scan(big_catalog, "products", "p"),
                          Compare("<", Literal(90.0),
                                  ColumnRef("p.price")))
        estimate = estimator.estimate(plan)
        assert 50 <= estimate <= 200

    def test_equi_join_ndv(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = JoinNode(_scan(big_catalog, "transactions", "t"),
                        _scan(big_catalog, "products", "p"),
                        JoinType.INNER, ["t.pid"], ["p.pid"])
        estimate = estimator.estimate(plan)
        assert 4_000 <= estimate <= 6_000  # FK join ~ |transactions|

    def test_semantic_filter_sampled(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = SemanticFilterNode(_scan(big_catalog, "products", "p"),
                                  "p.ptype", "clothes", "wiki-ft-100", 0.7)
        selectivity = estimator.semantic_filter_selectivity(plan)
        # 4 of 10 types are clothes-family
        assert 0.2 <= selectivity <= 0.6

    def test_semantic_join_sampled(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = SemanticJoinNode(_scan(big_catalog, "products", "p"),
                                _scan(big_catalog, "kb", "k"),
                                "p.ptype", "k.label", "wiki-ft-100", 0.9)
        selectivity = estimator.semantic_join_selectivity(plan)
        assert 0.0 < selectivity < 0.2

    def test_semantic_estimates_cached(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        plan = SemanticFilterNode(_scan(big_catalog, "products", "p"),
                                  "p.ptype", "clothes", "wiki-ft-100", 0.7)
        first = estimator.semantic_filter_selectivity(plan)
        second = estimator.semantic_filter_selectivity(plan)
        assert first == second

    def test_column_ndv(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        scan = _scan(big_catalog, "products", "p")
        assert estimator.column_ndv("p.ptype", scan) == 10


class TestCostModel:
    def test_nested_loop_dominates_blocked(self):
        params = CostParams()
        naive = semantic_join_method_cost(params, 1000, 1000, "nested_loop")
        blocked = semantic_join_method_cost(params, 1000, 1000, "blocked")
        assert naive.total > 100 * blocked.total

    def test_prefetched_between(self):
        params = CostParams()
        naive = semantic_join_method_cost(params, 500, 500, "nested_loop")
        prefetched = semantic_join_method_cost(params, 500, 500,
                                               "prefetched")
        blocked = semantic_join_method_cost(params, 500, 500, "blocked")
        assert blocked.total < prefetched.total < naive.total

    def test_parallel_wins_at_scale(self):
        params = CostParams()
        blocked = semantic_join_method_cost(params, 50_000, 50_000,
                                            "blocked")
        parallel = semantic_join_method_cost(params, 50_000, 50_000,
                                             "parallel")
        assert parallel.total < blocked.total

    def test_parallel_loses_small(self):
        params = CostParams()
        blocked = semantic_join_method_cost(params, 10, 10, "blocked")
        parallel = semantic_join_method_cost(params, 10, 10, "parallel")
        assert parallel.total > blocked.total

    def test_index_wins_for_many_queries_large_build(self):
        params = CostParams()
        blocked = semantic_join_method_cost(params, 100_000, 100_000,
                                            "blocked")
        lsh = semantic_join_method_cost(params, 100_000, 100_000,
                                        "index:lsh")
        assert lsh.total < blocked.total

    def test_unknown_method_infinite(self):
        params = CostParams()
        assert semantic_join_method_cost(params, 10, 10,
                                         "bogus").total == float("inf")

    def test_plan_cost_monotone_in_children(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        cost_model = CostModel(estimator)
        scan = _scan(big_catalog, "products", "p")
        filtered = FilterNode(scan, col("p.price") > 90)
        assert cost_model.cost(filtered).total > cost_model.cost(scan).total

    def test_cost_addition(self):
        assert (Cost(1, 2) + Cost(3, 4)).total == 10


class TestTraits:
    def test_model_operators_flagged(self, big_catalog):
        scan = _scan(big_catalog, "products", "p")
        semantic = SemanticFilterNode(scan, "p.ptype", "x", "m", 0.9)
        assert traits_of(semantic).compute_class == "model"
        assert traits_of(semantic).model_state_bytes > 0
        assert traits_of(scan).compute_class == "relational"

    def test_join_expanding(self, big_catalog):
        scan = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        join = JoinNode(scan, kb, JoinType.CROSS)
        assert traits_of(join).expanding


class TestJoinOrder:
    def test_small_build_side_chosen(self, big_catalog, registry):
        """DP should join products with kb (small) before transactions."""
        estimator = CardinalityEstimator(big_catalog, registry)
        cost_model = CostModel(estimator)
        products = _scan(big_catalog, "products", "p")
        transactions = _scan(big_catalog, "transactions", "t")
        kb_small = FilterNode(_scan(big_catalog, "kb", "k"),
                              col("k.category") == "clothes")
        # deliberately bad order: big join first
        plan = JoinNode(
            JoinNode(transactions, products, JoinType.INNER,
                     ["t.pid"], ["p.pid"]),
            kb_small, JoinType.INNER, ["p.ptype"], ["k.label"])
        reordered = JoinOrderOptimizer(estimator, cost_model).run(plan)
        assert cost_model.cost(reordered).total <= \
            cost_model.cost(plan).total

    def test_result_equivalence(self, big_catalog, big_context, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        cost_model = CostModel(estimator)
        products = _scan(big_catalog, "products", "p")
        transactions = _scan(big_catalog, "transactions", "t")
        plan = JoinNode(transactions, products, JoinType.INNER,
                        ["t.pid"], ["p.pid"])
        reordered = JoinOrderOptimizer(estimator, cost_model).run(plan)
        a = execute_plan(plan, big_context)
        b = execute_plan(reordered, big_context)
        assert a.num_rows == b.num_rows


class TestDip:
    def test_equi_join_in_list(self, big_catalog, big_context, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        products = _scan(big_catalog, "products", "p")
        kb_small = FilterNode(_scan(big_catalog, "kb", "k"),
                              col("k.category") == "clothes")
        plan = JoinNode(products, kb_small, JoinType.INNER,
                        ["p.ptype"], ["k.label"])
        dip = DataInducedPredicates(estimator, big_context, row_limit=16)
        rewritten = dip.run(plan)
        assert dip.applied == 1
        assert isinstance(rewritten.left, FilterNode)
        a = execute_plan(plan, big_context)
        b = execute_plan(rewritten, big_context)
        assert a.num_rows == b.num_rows

    def test_semantic_join_semi_filter(self, big_catalog, big_context,
                                       registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        products = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        plan = SemanticJoinNode(products, kb, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        dip = DataInducedPredicates(estimator, big_context, row_limit=16)
        rewritten = dip.run(plan)
        assert dip.applied == 1
        assert isinstance(rewritten.left, SemanticSemiFilterNode)
        a = execute_plan(plan, big_context)
        b = execute_plan(rewritten, big_context)
        assert sorted(r["p.pid"] for r in a.to_rows()) == \
            sorted(r["p.pid"] for r in b.to_rows())

    def test_respects_row_limit(self, big_catalog, big_context, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        products = _scan(big_catalog, "products", "p")
        transactions = _scan(big_catalog, "transactions", "t")
        plan = JoinNode(transactions, products, JoinType.INNER,
                        ["t.pid"], ["p.pid"])
        dip = DataInducedPredicates(estimator, big_context, row_limit=16)
        rewritten = dip.run(plan)
        assert dip.applied == 0
        assert rewritten.label() == plan.label()

    def test_not_reapplied(self, big_catalog, big_context, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        products = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        plan = SemanticJoinNode(products, kb, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        dip = DataInducedPredicates(estimator, big_context, row_limit=16)
        once = dip.run(plan)
        again = dip.run(once)
        assert dip.applied == 1
        semi_filters = [n for n in again.walk()
                        if isinstance(n, SemanticSemiFilterNode)]
        assert len(semi_filters) == 1


class TestPhysicalSelection:
    def test_selects_method_hint(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        cost_model = CostModel(estimator)
        products = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        plan = SemanticJoinNode(products, kb, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        selected = PhysicalSelector(cost_model).run(plan)
        assert "method" in selected.hints
        assert selected.hints["method"] in (
            "blocked", "parallel", "index:lsh", "index:ivf", "index:hnsw",
            "index:brute")

    def test_join_algorithm_hint(self, big_catalog, registry):
        estimator = CardinalityEstimator(big_catalog, registry)
        cost_model = CostModel(estimator)
        plan = JoinNode(_scan(big_catalog, "transactions", "t"),
                        _scan(big_catalog, "products", "p"),
                        JoinType.INNER, ["t.pid"], ["p.pid"])
        PhysicalSelector(cost_model).run(plan)
        assert plan.hints["algorithm"] == "hash"


class TestFullPipeline:
    def test_optimized_equals_naive(self, big_catalog, big_context,
                                    registry):
        products = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        join = SemanticJoinNode(products, kb, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, (col("p.price") > 80)
                          & (col("k.category") == "clothes"))
        optimizer = Optimizer(big_catalog, registry,
                              execution_context=big_context)
        optimized = optimizer.optimize(plan)
        naive = execute_plan(plan, big_context)
        fast = execute_plan(optimized, big_context)
        key = lambda t: sorted((r["p.pid"], r["k.label"])
                               for r in t.to_rows())
        assert key(naive) == key(fast)
        assert optimizer.last_report.rules_applied

    def test_stage_toggles(self, big_catalog, big_context, registry):
        products = _scan(big_catalog, "products", "p")
        kb = _scan(big_catalog, "kb", "k")
        join = SemanticJoinNode(products, kb, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, col("p.price") > 80)
        config = OptimizerConfig(enable_rules=False, enable_dip=False,
                                 enable_join_order=False,
                                 enable_physical=False, enable_prune=False)
        optimizer = Optimizer(big_catalog, registry, config=config,
                              execution_context=big_context)
        unchanged = optimizer.optimize(plan)
        assert unchanged.label() == plan.label()
        assert not optimizer.last_report.rules_applied

    def test_report_estimated_cost(self, big_catalog, big_context,
                                   registry):
        plan = _scan(big_catalog, "products", "p")
        optimizer = Optimizer(big_catalog, registry,
                              execution_context=big_context)
        optimizer.optimize(plan)
        assert optimizer.last_report.estimated_cost > 0
