"""Tests for the session, builder API, profiler, and explain."""

import pytest

from repro.core import ContextRichEngine
from repro.engine.session import Session
from repro.errors import CatalogError
from repro.polystore.knowledge_base import KnowledgeBase
from repro.relational.expressions import col
from repro.storage.table import Table


@pytest.fixture()
def session(products_table, kb_table):
    session = Session(seed=7)
    session.register_table("products", products_table)
    session.register_table("kb", kb_table)
    return session


class TestSession:
    def test_register_and_query(self, session):
        result = session.sql("SELECT * FROM products")
        assert result.num_rows == 6

    def test_unknown_table_builder(self, session):
        with pytest.raises(CatalogError):
            session.table("ghost")

    def test_register_source(self, session):
        kb = KnowledgeBase("kb2")
        kb.add("a", "rel", "b")
        names = session.register_source(kb)
        assert "kb2.triples" in names
        assert session.sql("SELECT * FROM kb2.triples").num_rows == 1

    def test_register_model_default(self, session, model):
        clone = type(model)(name="custom", vocab=model.vocab,
                            word_vectors=model.word_vectors,
                            bucket_vectors=model.bucket_vectors)
        session.register_model(clone, default=True)
        assert session.default_model_name == "custom"

    def test_profile_recorded(self, session):
        session.sql("SELECT * FROM products AS p WHERE p.price > 10")
        profile = session.last_profile
        assert profile is not None
        assert profile.total_seconds > 0
        assert any("Scan" in op.label for op in profile.operators)

    def test_profile_counts_semantic_cache(self, session):
        session.sql("SELECT * FROM products AS p "
                    "WHERE p.ptype ~ 'clothes' THRESHOLD 0.7")
        profile = session.last_profile
        assert profile.cache_misses > 0

    def test_explain_sql(self, session):
        text = session.explain(
            "SELECT p.pid FROM products AS p WHERE p.price > 10")
        assert "Scan" in text
        assert "rows~" in text

    def test_sql_unoptimized_same_result(self, session):
        query = ("SELECT p.pid FROM products AS p SEMANTIC JOIN kb AS k "
                 "ON p.ptype ~ k.label THRESHOLD 0.9 WHERE p.price > 10")
        fast = session.sql(query)
        slow = session.sql(query, optimize=False)
        assert sorted(r["p.pid"] for r in fast.to_rows()) == \
            sorted(r["p.pid"] for r in slow.to_rows())


class TestBuilder:
    def test_filter_select(self, session):
        rows = (session.table("products", alias="p")
                .filter(col("p.price") > 100)
                .select("p.pid", "p.ptype")
                .to_rows())
        assert len(rows) == 3
        assert set(rows[0]) == {"p.pid", "p.ptype"}

    def test_computed_select(self, session):
        rows = (session.table("products", alias="p")
                .select((col("p.price") * 2, "double"))
                .to_rows())
        assert rows[0]["double"] == pytest.approx(50.0)

    def test_equi_join(self, session):
        products = session.table("products", alias="p")
        kb = session.table("kb", alias="k")
        result = products.join(kb, on=("p.ptype", "k.label")).execute()
        assert result.num_rows == 0  # vocabulary mismatch, the paper's point

    def test_semantic_join(self, session):
        products = session.table("products", alias="p")
        kb = session.table("kb", alias="k")
        result = products.semantic_join(kb, "p.ptype", "k.label",
                                        threshold=0.9).execute()
        assert result.num_rows >= 3

    def test_semantic_filter(self, session):
        rows = (session.table("products", alias="p")
                .semantic_filter("p.ptype", "clothes", threshold=0.7)
                .to_rows())
        assert {r["p.ptype"] for r in rows} == {"sneakers", "parka",
                                                "blazer"}

    def test_semantic_group_by(self, session):
        result = (session.table("products", alias="p")
                  .semantic_group_by("p.ptype", threshold=0.55)
                  .execute())
        assert "cluster_rep" in result.schema

    def test_aggregate(self, session):
        rows = (session.table("products", alias="p")
                .aggregate(["p.brand"], n=("count", "*"),
                           total=("sum", "p.price"))
                .to_rows())
        by_brand = {r["p.brand"]: r["n"] for r in rows}
        assert by_brand["acme"] == 3

    def test_sort_limit_count(self, session):
        builder = (session.table("products", alias="p")
                   .sort("-p.price")
                   .limit(2))
        assert builder.count() == 2

    def test_builder_matches_sql(self, session):
        via_builder = (session.table("products", alias="p")
                       .filter(col("p.price") > 20)
                       .semantic_filter("p.ptype", "clothes", 0.7)
                       .select("p.pid")
                       .execute())
        via_sql = session.sql(
            "SELECT p.pid FROM products AS p WHERE p.price > 20 "
            "AND p.ptype ~ 'clothes' THRESHOLD 0.7")
        assert sorted(r["p.pid"] for r in via_builder.to_rows()) == \
            sorted(r["p.pid"] for r in via_sql.to_rows())

    def test_explain(self, session):
        text = (session.table("products", alias="p")
                .filter(col("p.price") > 20)
                .explain())
        assert "Filter" in text or "Scan" in text

    def test_cross_join(self, session):
        products = session.table("products", alias="p")
        kb = session.table("kb", alias="k")
        assert products.cross_join(kb).count() == 36


class TestEngineFacade:
    def test_retail_workload_loads(self):
        engine = ContextRichEngine(seed=7)
        engine.load_retail_workload()
        for table in ["products", "users", "transactions", "kb.category",
                      "images.metadata", "images.detections"]:
            assert table in engine.catalog

    def test_log_workload_loads(self):
        engine = ContextRichEngine(seed=7)
        engine.load_log_workload()
        assert "logs" in engine.catalog
