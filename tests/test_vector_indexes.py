"""Tests for the vector indexes: exactness, recall, interface contracts."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.lsh import LSHIndex


@pytest.fixture(scope="module")
def clustered_vectors():
    """Vectors with clear cluster structure (realistic embedding shape)."""
    rng = np.random.default_rng(17)
    anchors = rng.standard_normal((8, 32))
    anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
    rows = []
    for anchor in anchors:
        for _ in range(40):
            noise = rng.standard_normal(32) * 0.15
            rows.append(anchor + noise)
    return np.asarray(rows, dtype=np.float32)


@pytest.fixture(scope="module")
def queries(clustered_vectors):
    rng = np.random.default_rng(23)
    picks = rng.choice(clustered_vectors.shape[0], size=20, replace=False)
    return clustered_vectors[picks] + 0.01


def _recall(approx_ids, exact_ids) -> float:
    if len(exact_ids) == 0:
        return 1.0
    return len(set(approx_ids.tolist()) & set(exact_ids.tolist())) / len(
        exact_ids)


class TestBruteForce:
    def test_topk_exact(self, clustered_vectors):
        index = BruteForceIndex().build(clustered_vectors)
        query = clustered_vectors[0]
        result = index.search(query, 5)
        normalized = index.vectors
        q = query / np.linalg.norm(query)
        scores = normalized @ q
        expected = np.argsort(-scores)[:5]
        assert set(result.ids.tolist()) == set(expected.tolist())

    def test_self_is_top1(self, clustered_vectors):
        index = BruteForceIndex().build(clustered_vectors)
        result = index.search(clustered_vectors[7], 1)
        assert result.ids[0] == 7

    def test_range_search_threshold(self, clustered_vectors):
        index = BruteForceIndex().build(clustered_vectors)
        result = index.range_search(clustered_vectors[0], 0.9)
        assert np.all(result.scores >= 0.9)
        assert 0 in result.ids

    def test_range_search_sorted(self, clustered_vectors):
        index = BruteForceIndex().build(clustered_vectors)
        result = index.range_search(clustered_vectors[0], 0.5)
        assert np.all(np.diff(result.scores) <= 1e-6)

    def test_query_before_build_raises(self):
        with pytest.raises(IndexError_):
            BruteForceIndex().search(np.ones(4), 1)

    def test_bad_query_dim(self, clustered_vectors):
        index = BruteForceIndex().build(clustered_vectors)
        with pytest.raises(IndexError_):
            index.search(np.ones(5), 1)

    def test_empty_build_raises(self):
        with pytest.raises(IndexError_):
            BruteForceIndex().build(np.empty((0, 8)))


@pytest.mark.parametrize("index_factory,min_recall", [
    (lambda: LSHIndex(n_tables=12, n_bits=10, seed=3), 0.6),
    (lambda: IVFFlatIndex(n_lists=8, n_probes=3, seed=3), 0.6),
    (lambda: HNSWIndex(m=12, ef_construction=96, ef_search=64, seed=3), 0.8),
])
class TestApproximateIndexes:
    def test_recall_at_10(self, clustered_vectors, queries, index_factory,
                          min_recall):
        exact = BruteForceIndex().build(clustered_vectors)
        approx = index_factory().build(clustered_vectors)
        recalls = []
        for query in queries:
            exact_ids = exact.search(query, 10).ids
            approx_ids = approx.search(query, 10).ids
            recalls.append(_recall(approx_ids, exact_ids))
        assert np.mean(recalls) >= min_recall

    def test_scores_are_exact_for_returned_ids(self, clustered_vectors,
                                               queries, index_factory,
                                               min_recall):
        """Approximate indexes may miss ids but must not fake scores."""
        index = index_factory().build(clustered_vectors)
        query = queries[0] / np.linalg.norm(queries[0])
        result = index.search(query, 5)
        for vector_id, score in zip(result.ids, result.scores):
            expected = float(index.vectors[vector_id] @ query)
            assert score == pytest.approx(expected, abs=1e-5)

    def test_range_search_respects_threshold(self, clustered_vectors,
                                             queries, index_factory,
                                             min_recall):
        index = index_factory().build(clustered_vectors)
        result = index.range_search(queries[1], 0.85)
        assert np.all(result.scores >= 0.85)

    def test_size_property(self, clustered_vectors, index_factory,
                           min_recall):
        index = index_factory().build(clustered_vectors)
        assert index.size == clustered_vectors.shape[0]


class TestLshSpecifics:
    def test_deterministic_given_seed(self, clustered_vectors):
        a = LSHIndex(seed=5).build(clustered_vectors)
        b = LSHIndex(seed=5).build(clustered_vectors)
        query = clustered_vectors[3]
        assert np.array_equal(a.search(query, 5).ids, b.search(query, 5).ids)

    def test_multiprobe_expands_candidates(self, clustered_vectors):
        narrow = LSHIndex(n_tables=2, n_bits=14, seed=5, multiprobe_flips=0)
        wide = LSHIndex(n_tables=2, n_bits=14, seed=5, multiprobe_flips=1)
        narrow.build(clustered_vectors)
        wide.build(clustered_vectors)
        query = clustered_vectors[10]
        assert len(wide.search(query, 50)) >= len(narrow.search(query, 50))


class TestHnswSpecifics:
    def test_single_element(self):
        index = HNSWIndex(seed=1).build(np.ones((1, 4), dtype=np.float32))
        result = index.search(np.ones(4), 3)
        assert result.ids.tolist() == [0]

    def test_duplicate_vectors(self):
        vectors = np.tile(np.array([[1.0, 0.0]], dtype=np.float32), (5, 1))
        index = HNSWIndex(seed=1).build(vectors)
        result = index.search(np.array([1.0, 0.0]), 5)
        assert len(result) == 5
