"""Tests for UDFs, semantic-contains mode, and model persistence."""

import numpy as np
import pytest

from repro.embeddings.persistence import load_model, save_model
from repro.errors import ExpressionError, ModelError
from repro.relational.expressions import Func, col
from repro.relational.logical import ScanNode, SemanticFilterNode, \
    infer_dtype
from repro.relational.physical import execute_plan
from repro.relational.udf import (
    expression_udf_cost,
    register_udf,
    udf_info,
    unregister_udf,
)
from repro.semantic.select import semantic_contains_mask
from repro.storage.table import Table
from repro.storage.types import DataType


@pytest.fixture()
def margin_udf():
    udf = register_udf("margin", lambda price: price * 0.2,
                       DataType.FLOAT64, cost_per_row=25.0, replace=True)
    yield udf
    unregister_udf("margin")


class TestUdf:
    def test_scalar_udf_in_expression(self, margin_udf, products_table):
        expr = Func("margin", (col("price"),))
        values = expr.evaluate(products_table)
        assert values[0] == pytest.approx(5.0)

    def test_vectorized_udf(self, products_table):
        register_udf("double", lambda args: args[0] * 2, DataType.FLOAT64,
                     vectorized=True, replace=True)
        try:
            expr = Func("double", (col("price"),))
            assert expr.evaluate(products_table)[0] == pytest.approx(50.0)
        finally:
            unregister_udf("double")

    def test_udf_in_sql(self, margin_udf, products_table, kb_table):
        from repro.engine.session import Session

        session = Session(seed=7)
        session.register_table("products", products_table)
        result = session.sql(
            "SELECT margin(p.price) AS m FROM products AS p LIMIT 1")
        assert result.to_rows()[0]["m"] == pytest.approx(5.0)

    def test_dtype_inference(self, margin_udf, products_table):
        expr = Func("margin", (col("price"),))
        assert infer_dtype(expr, products_table.schema) == DataType.FLOAT64

    def test_string_udf(self):
        register_udf("shout", lambda s: s.upper() + "!", DataType.STRING,
                     replace=True)
        try:
            table = Table.from_dict({"s": ["hi", "yo"]})
            values = Func("shout", (col("s"),)).evaluate(table)
            assert values.tolist() == ["HI!", "YO!"]
        finally:
            unregister_udf("shout")

    def test_cost_annotation_visible(self, margin_udf):
        expr = (Func("margin", (col("price"),)) > 10) & (col("x") > 1)
        assert expression_udf_cost(expr) == 25.0
        assert udf_info("margin").cost_per_row == 25.0

    def test_cost_model_reads_udf_cost(self, margin_udf, catalog,
                                       registry):
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.optimizer.cost import CostModel
        from repro.relational.logical import FilterNode

        estimator = CardinalityEstimator(catalog, registry)
        cost_model = CostModel(estimator)
        scan = ScanNode("products", catalog.get("products").schema,
                        qualifier="p")
        cheap = FilterNode(scan, col("p.price") > 10)
        expensive = FilterNode(scan,
                               Func("margin", (col("p.price"),)) > 10)
        assert cost_model.node_cost(expensive).cpu > \
            cost_model.node_cost(cheap).cpu * 5

    def test_duplicate_registration_rejected(self, margin_udf):
        with pytest.raises(ExpressionError):
            register_udf("margin", lambda x: x, DataType.FLOAT64)

    def test_bad_compute_class(self):
        with pytest.raises(ExpressionError):
            register_udf("bad", lambda x: x, DataType.FLOAT64,
                         compute_class="quantum")

    def test_unknown_function_message(self):
        with pytest.raises(ExpressionError, match="unknown function"):
            Func("nonexistent", (col("x"),))


class TestSemanticContains:
    def test_matches_token_inside_text(self, cache):
        values = ["great pair of sneakers for running",
                  "the report was late",
                  "warm parka for winter", None]
        mask, scores = semantic_contains_mask(values, "clothes", cache,
                                              0.7)
        assert mask.tolist() == [True, False, True, False]

    def test_whole_value_mode_misses_free_text(self, cache):
        """Whole-string embedding dilutes the signal the contains mode
        keeps — the reason the mode exists."""
        from repro.semantic.select import semantic_select_mask

        values = ["great pair of sneakers for running all day long"]
        whole_mask, _ = semantic_select_mask(values, "shoes", cache, 0.7)
        contains_mask, _ = semantic_contains_mask(values, "shoes", cache,
                                                  0.7)
        assert not whole_mask[0]
        assert contains_mask[0]

    def test_contains_node_end_to_end(self, context, catalog):
        reviews = Table.from_dict({
            "rid": [1, 2, 3],
            "text": ["lovely sneakers arrived today",
                     "package was damaged",
                     "this parka is warm"],
        })
        catalog.register("reviews", reviews)
        scan = ScanNode("reviews", reviews.schema, qualifier="r")
        plan = SemanticFilterNode(scan, "r.text", "clothes", "wiki-ft-100",
                                  0.7, mode="contains")
        result = execute_plan(plan, context)
        assert sorted(result.column("r.rid").tolist()) == [1, 3]

    def test_mode_validation(self, products_table):
        scan = ScanNode("products", products_table.schema)
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            SemanticFilterNode(scan, "ptype", "x", "m", 0.5, mode="regex")

    def test_builder_exposes_mode(self, products_table):
        from repro.engine.session import Session

        session = Session(seed=7)
        session.register_table("reviews", Table.from_dict({
            "text": ["nice sneakers", "boring meeting"],
        }))
        rows = (session.table("reviews")
                .semantic_filter("text", "shoes", threshold=0.7,
                                 mode="contains")
                .to_rows())
        assert len(rows) == 1


class TestModelPersistence:
    def test_round_trip_bit_exact(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        assert loaded.name == model.name
        assert loaded.vocab == model.vocab
        assert np.array_equal(loaded.word_vectors, model.word_vectors)
        assert np.array_equal(loaded.bucket_vectors, model.bucket_vectors)

    def test_loaded_model_behaves_identically(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        for word in ["dog", "sneakers", "golden retriever", "sneekers"]:
            assert np.allclose(loaded.embed(word), model.embed(word),
                               atol=1e-7)

    def test_suffix_appended(self, model, tmp_path):
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_model(tmp_path / "ghost.npz")

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ModelError):
            load_model(path)
