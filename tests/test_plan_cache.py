"""Plan-cache behaviour: canonicalization, hits, versioned invalidation.

The invalidation edges the serving PR must not get wrong:

- ``register_table`` replacing an existing name bumps the catalog
  version, so plans bound against the old table stop matching;
- a statistics refresh bumps the version for the same reason (fresh
  stats change the optimizer's choices);
- two *textually different but canonically identical* statements share
  one cache entry;
- two statements that differ only in a literal share a canonical
  family (digest) but not a plan entry.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.engine.sql.canonical import canonicalize
from repro.engine.sql.parser import parse_sql
from repro.server.plan_cache import PlanCache
from repro.storage.table import Table


@pytest.fixture()
def session(model):
    session = Session(load_default_model=False)
    session.register_model(model, default=True)
    session.register_table("t", Table.from_dict({
        "a": [1, 2, 3, 4], "b": ["w", "x", "y", "z"]}))
    return session


def warm(session: Session, text: str) -> None:
    """Issue ``text`` until its plan is cached under a stable version
    (the first run may bump the version by computing statistics)."""
    session.sql(text)
    session.sql(text)


class TestCanonicalization:
    def test_whitespace_and_case_share_a_digest(self):
        a = canonicalize(parse_sql("SELECT a FROM t WHERE a > 1"))
        b = canonicalize(parse_sql("select   a\nFROM t  WHERE a > 1"))
        assert a.digest == b.digest
        assert a.parameters == b.parameters

    def test_literals_are_parameterized_into_one_family(self):
        a = canonicalize(parse_sql("SELECT a FROM t WHERE a > 1"))
        b = canonicalize(parse_sql("SELECT a FROM t WHERE a > 2"))
        assert a.digest == b.digest          # same family
        assert a.parameters != b.parameters  # different statement key
        assert a.key != b.key

    def test_literal_types_split_families(self):
        integer = canonicalize(parse_sql("SELECT a FROM t WHERE a > 1"))
        floating = canonicalize(parse_sql("SELECT a FROM t WHERE a > 1.5"))
        assert integer.digest != floating.digest

    def test_semantic_predicate_probe_is_parameterized(self):
        a = canonicalize(parse_sql("SELECT * FROM t WHERE b ~ 'shoes'"))
        b = canonicalize(parse_sql("SELECT * FROM t WHERE b ~ 'cars'"))
        assert a.digest == b.digest
        assert a.parameters != b.parameters

    def test_different_statements_do_not_collide(self):
        a = canonicalize(parse_sql("SELECT a FROM t"))
        b = canonicalize(parse_sql("SELECT b FROM t"))
        assert a.digest != b.digest


class TestPlanCacheHits:
    def test_repeat_statement_hits(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        session.sql("SELECT a FROM t WHERE a > 1")
        assert session.last_profile.plan_cache_hit is True

    def test_canonically_identical_spellings_share_one_entry(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        before = len(session.state.plan_cache)
        session.sql("select   a from t  where a > 1")
        assert session.last_profile.plan_cache_hit is True
        assert len(session.state.plan_cache) == before

    def test_different_literal_misses_but_shares_family(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        session.sql("SELECT a FROM t WHERE a > 2")
        assert session.last_profile.plan_cache_hit is False
        stats = session.state.plan_cache.stats()
        assert stats.entries == 2
        assert stats.families == 1

    def test_unoptimized_path_bypasses_cache(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        hits_before = session.state.plan_cache.stats().hits
        session.sql("SELECT a FROM t WHERE a > 1", optimize=False)
        assert session.state.plan_cache.stats().hits == hits_before


class TestInvalidation:
    def test_register_replacing_existing_name_invalidates(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        replacement = Table.from_dict({
            "a": [10, 20], "b": ["p", "q"]})
        session.register_table("t", replacement, replace=True)
        result = session.sql("SELECT a FROM t WHERE a > 1")
        assert session.last_profile.plan_cache_hit is False
        assert sorted(result.column("a").tolist()) == [10, 20]

    def test_registering_new_table_invalidates_too(self, session):
        # any version bump retires old entries: conservative but simple
        warm(session, "SELECT a FROM t WHERE a > 1")
        session.register_table("u", Table.from_dict({"c": [1]}))
        session.sql("SELECT a FROM t WHERE a > 1")
        assert session.last_profile.plan_cache_hit is False

    def test_stats_refresh_bumps_version_and_invalidates(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        version = session.catalog.version
        session.catalog.refresh_stats("t")
        assert session.catalog.version > version
        session.sql("SELECT a FROM t WHERE a > 1")
        assert session.last_profile.plan_cache_hit is False

    def test_lazy_stats_computation_bumps_version_once(self, session):
        version = session.catalog.version
        session.catalog.stats("t")
        bumped = session.catalog.version
        assert bumped == version + 1
        session.catalog.stats("t")          # cached: no further bump
        assert session.catalog.version == bumped

    def test_stale_entries_are_swept_not_leaked(self, session):
        warm(session, "SELECT a FROM t WHERE a > 1")
        for value in (10, 20, 30):
            session.register_table(
                "t", Table.from_dict({"a": [value], "b": ["x"]}),
                replace=True)
            warm(session, "SELECT a FROM t WHERE a > 1")
        stats = session.state.plan_cache.stats()
        assert stats.entries == 1
        assert stats.stale_evictions >= 3


class TestLRU:
    def test_capacity_evicts_oldest(self, session):
        # generics off: three distinct literals of one family would
        # otherwise promote it, and the evicted statement would then
        # (correctly) hit the generic tier instead of missing
        cache = PlanCache(capacity=2, enable_generic=False)
        session.state.plan_cache = cache
        warm(session, "SELECT a FROM t WHERE a > 1")
        warm(session, "SELECT a FROM t WHERE a > 2")
        warm(session, "SELECT a FROM t WHERE a > 3")
        assert len(cache) == 2
        assert cache.stats().evictions >= 1
        # oldest statement was evicted: re-running it misses
        session.sql("SELECT a FROM t WHERE a > 1")
        assert session.last_profile.plan_cache_hit is False

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
