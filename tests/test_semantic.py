"""Tests for semantic kernels and operators: the paper's §IV extensions."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.relational.logical import (
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
)
from repro.relational.physical import execute_plan
from repro.semantic.cache import EmbeddingCache
from repro.semantic.groupby import cluster_strings
from repro.semantic.join import (
    join_blocked,
    join_index,
    join_nested_loop,
    join_parallel,
    join_prefetched,
    join_rowkernel,
)
from repro.semantic.select import semantic_any_mask, semantic_select_mask


@pytest.fixture(scope="module")
def words():
    left = ["sneakers", "parka", "sedan", "apple", "sofa"]
    right = ["shoes", "jacket", "car", "fruit", "couch", "dog"]
    return left, right


@pytest.fixture(scope="module")
def matrices(model, words):
    left, right = words
    return model.embed_batch(left), model.embed_batch(right)


def _pair_set(left_idx, right_idx):
    return set(zip(left_idx.tolist(), right_idx.tolist()))


class TestJoinKernels:
    def test_blocked_finds_synonym_pairs(self, matrices):
        left_matrix, right_matrix = matrices
        li, ri, scores = join_blocked(left_matrix, right_matrix, 0.9)
        pairs = _pair_set(li, ri)
        assert (0, 0) in pairs   # sneakers ~ shoes
        assert (1, 1) in pairs   # parka ~ jacket
        assert (2, 2) in pairs   # sedan ~ car
        assert (4, 4) in pairs   # sofa ~ couch
        assert np.all(scores >= 0.9)

    def test_all_matrix_kernels_agree(self, matrices):
        left_matrix, right_matrix = matrices
        reference = _pair_set(*join_blocked(left_matrix, right_matrix,
                                            0.9)[:2])
        assert _pair_set(*join_rowkernel(left_matrix, right_matrix,
                                         0.9)[:2]) == reference
        assert _pair_set(*join_parallel(left_matrix, right_matrix, 0.9,
                                        block=2, workers=2)[:2]) == reference
        assert _pair_set(*join_index(left_matrix, right_matrix, 0.9,
                                     kind="brute")[:2]) == reference

    def test_string_kernels_agree_with_blocked(self, model, words, matrices):
        left, right = words
        left_matrix, right_matrix = matrices
        reference = _pair_set(*join_blocked(left_matrix, right_matrix,
                                            0.9)[:2])
        nested = join_nested_loop(left, right, model, 0.9)
        prefetched = join_prefetched(left, right, model, 0.9)
        assert _pair_set(*nested[:2]) == reference
        assert _pair_set(*prefetched[:2]) == reference

    @pytest.mark.parametrize("kind", ["lsh", "ivf", "hnsw"])
    def test_approximate_index_recall(self, matrices, kind):
        left_matrix, right_matrix = matrices
        reference = _pair_set(*join_blocked(left_matrix, right_matrix,
                                            0.9)[:2])
        approx = _pair_set(*join_index(left_matrix, right_matrix, 0.9,
                                       kind=kind)[:2])
        assert approx <= reference or len(reference) == 0
        assert len(approx) >= len(reference) * 0.5

    def test_unknown_index_kind(self, matrices):
        left_matrix, right_matrix = matrices
        with pytest.raises(ExecutionError):
            join_index(left_matrix, right_matrix, 0.9, kind="btree")

    def test_empty_result(self, model):
        left = model.embed_batch(["sedan"])
        right = model.embed_batch(["apple"])
        li, ri, scores = join_blocked(left, right, 0.9)
        assert li.shape == (0,)

    def test_blocked_block_boundary(self, matrices):
        left_matrix, right_matrix = matrices
        one = join_blocked(left_matrix, right_matrix, 0.7, block=1)
        full = join_blocked(left_matrix, right_matrix, 0.7, block=1024)
        assert _pair_set(*one[:2]) == _pair_set(*full[:2])


class TestSelectKernels:
    def test_mask_matches_synonyms(self, cache):
        values = ["boots", "parka", "sedan", None, "tee"]
        mask, scores = semantic_select_mask(values, "clothes", cache, 0.7)
        assert mask.tolist() == [True, True, False, False, True]
        assert scores[3] == 0.0

    def test_threshold_monotonic(self, cache):
        values = ["boots", "parka", "sedan", "tee"]
        loose, _ = semantic_select_mask(values, "clothes", cache, 0.5)
        strict, _ = semantic_select_mask(values, "clothes", cache, 0.9)
        assert np.all(strict <= loose)

    def test_any_mask_union(self, cache):
        values = ["boots", "sedan", "apple", "kitten"]
        any_mask, _ = semantic_any_mask(values, ["shoes", "car"], cache, 0.9)
        assert any_mask.tolist() == [True, True, False, False]

    def test_any_mask_matches_max_of_singles(self, cache):
        values = ["boots", "sedan", "apple"]
        probes = ["shoes", "fruit"]
        any_mask, any_scores = semantic_any_mask(values, probes, cache, 0.5)
        singles = [semantic_select_mask(values, p, cache, 0.5)[1]
                   for p in probes]
        expected = np.maximum(*singles)
        assert np.allclose(any_scores, expected, atol=1e-5)


class TestClusterStrings:
    def test_synonyms_cluster(self, cache):
        values = ["boots", "sneakers", "oxfords", "sedan", "automobile",
                  "apple"]
        clustering = cluster_strings(values, cache, 0.9)
        labels = clustering.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[5] not in (labels[0], labels[3])
        assert clustering.n_clusters == 3

    def test_representative_is_most_frequent(self, cache):
        values = ["boots", "boots", "boots", "sneakers"]
        clustering = cluster_strings(values, cache, 0.9)
        assert clustering.representatives[0] == "boots"

    def test_empty(self, cache):
        clustering = cluster_strings([], cache, 0.9)
        assert clustering.n_clusters == 0

    def test_deterministic(self, cache, model):
        values = ["boots", "sneakers", "sedan", "apple"] * 3
        a = cluster_strings(values, cache, 0.85)
        b = cluster_strings(values, EmbeddingCache(model), 0.85)
        assert np.array_equal(a.labels, b.labels)

    def test_threshold_one_isolates_distinct(self, cache):
        values = ["boots", "sneakers"]
        clustering = cluster_strings(values, cache, 1.0)
        assert clustering.n_clusters == 2


class TestSemanticOperators:
    def test_filter_op_with_score(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = SemanticFilterNode(scan, "p.ptype", "clothes", "wiki-ft-100",
                                  0.7, score_alias="score")
        result = execute_plan(plan, context)
        kinds = set(result.column("p.ptype").tolist())
        assert kinds == {"sneakers", "parka", "blazer"}
        assert np.all(result.column("score") >= 0.7)

    def test_join_op_expands_duplicates(self, context, catalog, kb_table):
        from repro.storage.table import Table

        left = Table.from_dict({"name": ["boots", "boots", "sedan"]})
        catalog.register("dupes", left)
        scan_l = ScanNode("dupes", left.schema, qualifier="d")
        scan_r = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan_l, scan_r, "d.name", "k.label",
                                "wiki-ft-100", 0.9)
        result = execute_plan(plan, context)
        boots_rows = [r for r in result.to_rows() if r["d.name"] == "boots"]
        assert len(boots_rows) == 2  # both duplicate rows joined to shoes

    def test_join_op_method_hint(self, context, products_table, kb_table):
        scan_p = ScanNode("products", products_table.schema, qualifier="p")
        scan_k = ScanNode("kb", kb_table.schema, qualifier="k")
        reference = None
        for method in ["blocked", "rowkernel", "parallel", "index:brute",
                       "nested_loop", "prefetched"]:
            plan = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                    "wiki-ft-100", 0.9)
            plan.hints["method"] = method
            rows = sorted(
                (r["p.pid"], r["k.label"])
                for r in execute_plan(plan, context).to_rows())
            if reference is None:
                reference = rows
            else:
                assert rows == reference, method

    def test_join_op_unknown_method(self, context, products_table, kb_table):
        scan_p = ScanNode("products", products_table.schema, qualifier="p")
        scan_k = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan.hints["method"] = "quantum"
        with pytest.raises(ExecutionError):
            execute_plan(plan, context)

    def test_groupby_op(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = SemanticGroupByNode(scan, "p.ptype", "wiki-ft-100", 0.55)
        result = execute_plan(plan, context)
        by_type = {r["p.ptype"]: r["cluster_id"] for r in result.to_rows()}
        # sneakers/parka/blazer are all clothes-family at 0.55
        assert by_type["sneakers"] == by_type["parka"] == by_type["blazer"]
        assert by_type["sedan"] != by_type["sneakers"]

    def test_semi_filter_op(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = SemanticSemiFilterNode(scan, "p.ptype", ["shoes", "car"],
                                      "wiki-ft-100", 0.9)
        result = execute_plan(plan, context)
        assert set(result.column("p.ptype").tolist()) == {"sneakers",
                                                          "sedan"}


class TestCache:
    def test_hit_miss_accounting(self, cache):
        cache.vector("dog")
        cache.vector("dog")
        assert cache.misses == 1
        assert cache.hits == 1

    def test_prefetch_dedup(self, cache):
        cache.prefetch(["a", "b", "a", "b"])
        assert cache.misses == 2
        assert len(cache) == 2

    def test_matrix_matches_model(self, cache, model):
        matrix = cache.matrix(["dog", "cat"])
        assert np.allclose(matrix[0], model.embed("dog"), atol=1e-6)

    def test_matrix_normalizes_tokens(self, cache):
        matrix_a = cache.matrix(["Dog"])
        matrix_b = cache.matrix(["dog"])
        assert np.allclose(matrix_a, matrix_b)

    def test_clear(self, cache):
        cache.vector("dog")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
