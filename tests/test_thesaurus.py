"""Tests for the concept thesaurus."""

import pytest

from repro.embeddings.thesaurus import (
    Concept,
    TABLE_I,
    Thesaurus,
    default_thesaurus,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def thesaurus():
    return default_thesaurus()


class TestStructure:
    def test_validates(self, thesaurus):
        thesaurus.validate()

    def test_contains_table_i_categories(self, thesaurus):
        for category in TABLE_I:
            assert category in thesaurus

    def test_table_i_matches_are_known_forms(self, thesaurus):
        forms = set(thesaurus.all_forms())
        for matches in TABLE_I.values():
            for match in matches:
                assert match in forms

    def test_leaves_and_hypernyms_partition(self, thesaurus):
        names = {c.name for c in thesaurus}
        leaves = {c.name for c in thesaurus.leaves}
        hypers = {c.name for c in thesaurus.hypernyms}
        assert leaves | hypers == names
        assert not leaves & hypers

    def test_hierarchy_is_single_level(self, thesaurus):
        for hyper in thesaurus.hypernyms:
            for child in hyper.children:
                assert not thesaurus[child].is_hypernym

    def test_canonical_is_first_form(self, thesaurus):
        assert thesaurus["dog"].canonical == "dog"

    def test_len(self, thesaurus):
        assert len(thesaurus) > 20


class TestLookups:
    def test_concept_of_form(self, thesaurus):
        assert thesaurus.concept_of("parka").name == "jacket"

    def test_concept_of_is_case_insensitive(self, thesaurus):
        assert thesaurus.concept_of("Parka").name == "jacket"

    def test_concept_of_unknown(self, thesaurus):
        assert thesaurus.concept_of("quux") is None

    def test_synonyms_of(self, thesaurus):
        synonyms = thesaurus.synonyms_of("dog")
        assert "canine" in synonyms
        assert "dog" not in synonyms

    def test_synonyms_of_unknown(self, thesaurus):
        assert thesaurus.synonyms_of("quux") == set()

    def test_hyponym_forms(self, thesaurus):
        forms = thesaurus.hyponym_forms("clothes")
        assert "boots" in forms
        assert "parka" in forms
        assert "clothes" not in forms

    def test_parent_of(self, thesaurus):
        assert thesaurus.parent_of("dog").name == "animal"
        assert thesaurus.parent_of("animal") is None

    def test_getitem_unknown_raises(self, thesaurus):
        with pytest.raises(ModelError):
            thesaurus["nonexistent"]


class TestMutation:
    def test_duplicate_add_raises(self):
        thesaurus = Thesaurus()
        thesaurus.add(Concept("x", ("x",)))
        with pytest.raises(ModelError):
            thesaurus.add(Concept("x", ("y",)))

    def test_validate_missing_child(self):
        thesaurus = Thesaurus()
        thesaurus.add(Concept("parent", ("parent",), children=("ghost",)))
        with pytest.raises(ModelError):
            thesaurus.validate()

    def test_validate_nested_hypernym(self):
        thesaurus = Thesaurus()
        thesaurus.add(Concept("a", ("a",), children=("b",)))
        thesaurus.add(Concept("b", ("b",), children=("c",)))
        thesaurus.add(Concept("c", ("c",)))
        with pytest.raises(ModelError):
            thesaurus.validate()
