"""Tests for EXPLAIN ANALYZE (estimated vs actual cardinality feedback)."""

import pytest

from repro.engine.session import Session
from repro.storage.table import Table
from repro.utils.rng import make_rng


@pytest.fixture()
def session(products_table, kb_table):
    session = Session(seed=7)
    session.register_table("products", products_table)
    session.register_table("kb", kb_table)
    return session


class TestExplainAnalyze:
    def test_renders_estimates_and_actuals(self, session):
        text = session.explain_analyze(
            "SELECT p.pid FROM products AS p WHERE p.price > 100")
        assert "EXPLAIN ANALYZE" in text
        assert "est~" in text
        assert "actual" in text
        assert "Scan" in text

    def test_actual_rows_correct(self, session):
        text = session.explain_analyze(
            "SELECT p.pid FROM products AS p WHERE p.price > 100",
            optimize=False)
        # the filter keeps parka, sedan, kitten = 3 rows
        assert "actual 3 rows" in text

    def test_semantic_operator_included(self, session):
        text = session.explain_analyze(
            "SELECT p.pid FROM products AS p "
            "SEMANTIC JOIN kb AS k ON p.ptype ~ k.label THRESHOLD 0.9")
        assert "SemanticJoin" in text

    def test_flags_large_estimate_drift(self):
        """A skewed equality predicate should be flagged as mis-estimated."""
        rng = make_rng(5)
        n = 1_000
        # 'common' dominates but NDV is 20, so the uniform estimate is
        # ~n/20 while the actual is ~0.9n — a >4x drift
        values = ["common"] * 171 + [f"rare{i}" for i in range(19)]
        session = Session(seed=7)
        session.register_table("skewed", Table.from_dict({
            "v": [values[int(i)] for i in rng.integers(0, len(values), n)],
        }))
        text = session.explain_analyze(
            "SELECT * FROM skewed AS s WHERE s.v = 'common'",
            optimize=False)
        assert "estimate off" in text

    def test_no_drift_flag_when_accurate(self, session):
        text = session.explain_analyze(
            "SELECT * FROM products", optimize=False)
        assert "estimate off" not in text

    def test_accepts_plan_objects(self, session):
        plan = session.sql_plan("SELECT p.pid FROM products AS p")
        text = session.explain_analyze(plan)
        assert "actual" in text
