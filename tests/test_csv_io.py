"""Tests for CSV / JSONL IO and schema inference."""

import json

import pytest

from repro.errors import SourceError
from repro.storage.csv_io import (
    infer_csv_schema,
    read_csv,
    read_jsonl,
    scan_csv,
    write_csv,
)
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "id,name,price,active,born\n"
        "1,ada,10.5,true,1990-01-01\n"
        "2,bob,20.0,false,1985-06-15\n"
        "3,eve,7.25,true,2000-12-31\n"
    )
    return path


class TestInference:
    def test_types(self, csv_file):
        schema = infer_csv_schema(csv_file)
        assert schema.dtype_of("id") == DataType.INT64
        assert schema.dtype_of("name") == DataType.STRING
        assert schema.dtype_of("price") == DataType.FLOAT64
        assert schema.dtype_of("active") == DataType.BOOL
        assert schema.dtype_of("born") == DataType.DATE

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SourceError):
            infer_csv_schema(path)


class TestReadWrite:
    def test_read_csv(self, csv_file):
        table = read_csv(csv_file)
        assert table.num_rows == 3
        assert table.column("name").tolist() == ["ada", "bob", "eve"]

    def test_scan_batches(self, csv_file):
        batches = list(scan_csv(csv_file, batch_size=2))
        assert [b.num_rows for b in batches] == [2, 1]

    def test_round_trip(self, csv_file, tmp_path):
        table = read_csv(csv_file)
        out = tmp_path / "out.csv"
        write_csv(table, out)
        again = read_csv(out, schema=table.schema)
        assert again.column("id").tolist() == table.column("id").tolist()

    def test_explicit_schema_subset(self, csv_file):
        schema = Schema([Field("name", DataType.STRING),
                         Field("price", DataType.FLOAT64)])
        table = read_csv(csv_file, schema=schema)
        assert table.schema.names == ["name", "price"]

    def test_read_jsonl(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path.write_text("\n".join(json.dumps(r) for r in rows))
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        table = read_jsonl(path, schema)
        assert table.num_rows == 2
        assert table.column("b").tolist() == ["x", "y"]
