"""Tests for logical plan nodes: schemas, cloning, traversal."""

import pytest

from repro.errors import PlanError, SchemaError
from repro.relational.expressions import AggExpr, AggFunc, col
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.storage.types import DataType


@pytest.fixture()
def scan_products(products_table):
    return ScanNode("products", products_table.schema, qualifier="p")


@pytest.fixture()
def scan_kb(kb_table):
    return ScanNode("kb", kb_table.schema, qualifier="k")


class TestSchemas:
    def test_scan_qualifies(self, scan_products):
        assert "p.pid" in scan_products.schema

    def test_scan_without_qualifier(self, products_table):
        scan = ScanNode("products", products_table.schema)
        assert "pid" in scan.schema

    def test_filter_preserves_schema(self, scan_products):
        node = FilterNode(scan_products, col("p.price") > 1)
        assert node.schema == scan_products.schema

    def test_project_schema(self, scan_products):
        node = ProjectNode(scan_products, [(col("p.price") * 2, "double")])
        assert node.schema.names == ["double"]
        assert node.schema.dtype_of("double") == DataType.FLOAT64

    def test_join_concat_schema(self, scan_products, scan_kb):
        node = JoinNode(scan_products, scan_kb, JoinType.INNER,
                        ["p.ptype"], ["k.label"])
        assert node.schema.names[:4] == ["p.pid", "p.ptype", "p.price",
                                         "p.brand"]
        assert "k.label" in node.schema

    def test_semi_join_keeps_left_schema(self, scan_products, scan_kb):
        node = JoinNode(scan_products, scan_kb, JoinType.SEMI,
                        ["p.ptype"], ["k.label"])
        assert node.schema == scan_products.schema

    def test_join_key_length_mismatch(self, scan_products, scan_kb):
        with pytest.raises(PlanError):
            JoinNode(scan_products, scan_kb, JoinType.INNER, ["a"], [])

    def test_aggregate_schema(self, scan_products):
        node = AggregateNode(scan_products, ["p.brand"], [
            AggExpr(AggFunc.COUNT, None, "n"),
            AggExpr(AggFunc.AVG, col("p.price"), "avg_price"),
        ])
        assert node.schema.names == ["p.brand", "n", "avg_price"]
        assert node.schema.dtype_of("avg_price") == DataType.FLOAT64

    def test_semantic_join_appends_score(self, scan_products, scan_kb):
        node = SemanticJoinNode(scan_products, scan_kb, "p.ptype", "k.label",
                                "m", 0.9)
        assert node.schema.names[-1] == "similarity"
        assert node.schema.dtype_of("similarity") == DataType.FLOAT64

    def test_semantic_filter_score_alias(self, scan_products):
        plain = SemanticFilterNode(scan_products, "p.ptype", "clothes", "m",
                                   0.9)
        assert plain.schema == scan_products.schema
        scored = SemanticFilterNode(scan_products, "p.ptype", "clothes", "m",
                                    0.9, score_alias="score")
        assert scored.schema.names[-1] == "score"

    def test_semantic_groupby_appends_columns(self, scan_products):
        node = SemanticGroupByNode(scan_products, "p.ptype", "m", 0.8)
        assert node.schema.names[-2:] == ["cluster_id", "cluster_rep"]

    def test_semantic_semi_filter_schema(self, scan_products):
        node = SemanticSemiFilterNode(scan_products, "p.ptype",
                                      ["shoes"], "m", 0.9)
        assert node.schema == scan_products.schema

    def test_union_schema_mismatch(self, scan_products, scan_kb):
        with pytest.raises(PlanError):
            UnionNode([scan_products, scan_kb]).schema

    def test_threshold_validation(self, scan_products, scan_kb):
        with pytest.raises(PlanError):
            SemanticFilterNode(scan_products, "p.ptype", "x", "m", 1.5)
        with pytest.raises(PlanError):
            SemanticJoinNode(scan_products, scan_kb, "a", "b", "m", -0.1)
        with pytest.raises(PlanError):
            SemanticSemiFilterNode(scan_products, "p.ptype", [], "m", 0.9)

    def test_limit_validation(self, scan_products):
        with pytest.raises(PlanError):
            LimitNode(scan_products, -1)


class TestTreeOps:
    def test_with_children_preserves_hints(self, scan_products):
        node = FilterNode(scan_products, col("p.price") > 1)
        node.hints["method"] = "x"
        clone = node.with_children((scan_products,))
        assert clone.hints == {"method": "x"}
        assert clone is not node

    def test_walk_preorder(self, scan_products, scan_kb):
        join = JoinNode(scan_products, scan_kb, JoinType.CROSS)
        top = FilterNode(join, col("p.price") > 1)
        labels = [type(n).__name__ for n in top.walk()]
        assert labels == ["FilterNode", "JoinNode", "ScanNode", "ScanNode"]

    def test_pretty_contains_labels(self, scan_products):
        node = SortNode(LimitNode(scan_products, 3), [("p.price", False)])
        text = node.pretty()
        assert "Sort" in text and "Limit" in text and "Scan" in text

    def test_scan_clone_rejects_children(self, scan_products, scan_kb):
        with pytest.raises(PlanError):
            scan_products.with_children((scan_kb,))
