"""Tests for sampling-based approximate query processing."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.relational.aqp import ApproximateAggregator, ApproximateResult
from repro.relational.expressions import col
from repro.storage.table import Table
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def big_table():
    rng = make_rng(11)
    n = 20_000
    return Table.from_dict({
        "value": rng.uniform(0, 100, n).tolist(),
        "group": [["a", "b", "c"][int(i)] for i in
                  rng.integers(0, 3, n)],
    })


class TestEstimates:
    def test_count_within_ci(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.1,
                                           seed=5)
        result = aggregator.count(col("group") == "a")
        exact = int((big_table.column("group") == "a").sum())
        assert result.contains(exact)
        assert result.sample_rows == 2_000

    def test_count_no_predicate_exact(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.05)
        result = aggregator.count()
        assert result.estimate == big_table.num_rows
        assert result.half_width == 0.0

    def test_sum_within_ci(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.1,
                                           seed=5)
        result = aggregator.sum("value")
        exact = float(big_table.column("value").sum())
        assert result.contains(exact)
        # the interval is meaningfully tight at 10% sampling
        assert result.half_width < 0.05 * exact

    def test_sum_with_predicate(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.2,
                                           seed=5)
        predicate = col("group") == "b"
        result = aggregator.sum("value", predicate)
        mask = big_table.column("group") == "b"
        exact = float(big_table.column("value")[mask].sum())
        assert result.contains(exact)

    def test_avg_within_ci(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.1,
                                           seed=5)
        result = aggregator.avg("value")
        exact = float(big_table.column("value").mean())
        assert result.contains(exact)

    def test_higher_confidence_wider_interval(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.05,
                                           seed=5)
        narrow = aggregator.sum("value", confidence=0.90)
        wide = aggregator.sum("value", confidence=0.99)
        assert wide.half_width > narrow.half_width
        assert wide.estimate == narrow.estimate

    def test_larger_sample_tighter_interval(self, big_table):
        small = ApproximateAggregator(big_table, sample_fraction=0.02,
                                      seed=5).sum("value")
        large = ApproximateAggregator(big_table, sample_fraction=0.3,
                                      seed=5).sum("value")
        assert large.half_width < small.half_width

    def test_full_sample_is_exact(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=1.0)
        result = aggregator.avg("value")
        exact = float(big_table.column("value").mean())
        assert result.estimate == pytest.approx(exact)

    def test_coverage_rate(self, big_table):
        """~95% of 95%-CIs must contain the truth (checked loosely)."""
        exact = float(big_table.column("value").sum())
        covered = 0
        trials = 40
        for seed in range(trials):
            result = ApproximateAggregator(
                big_table, sample_fraction=0.05, seed=seed).sum("value")
            covered += int(result.contains(exact))
        assert covered >= int(0.80 * trials)


class TestValidation:
    def test_bad_fraction(self, big_table):
        with pytest.raises(ExecutionError):
            ApproximateAggregator(big_table, sample_fraction=0.0)
        with pytest.raises(ExecutionError):
            ApproximateAggregator(big_table, sample_fraction=1.5)

    def test_unsupported_confidence(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.1)
        with pytest.raises(ExecutionError):
            aggregator.sum("value", confidence=0.5)

    def test_empty_match(self, big_table):
        aggregator = ApproximateAggregator(big_table, sample_fraction=0.05)
        result = aggregator.avg("value", col("group") == "zzz")
        assert result.estimate == 0.0

    def test_result_str(self, big_table):
        result = ApproximateAggregator(big_table, 0.1).sum("value")
        assert "CI" in str(result)

    def test_deterministic_given_seed(self, big_table):
        a = ApproximateAggregator(big_table, 0.1, seed=9).sum("value")
        b = ApproximateAggregator(big_table, 0.1, seed=9).sum("value")
        assert a.estimate == b.estimate
