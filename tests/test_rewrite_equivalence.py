"""Plan-equivalence harness: every rewrite preserves results, bit for bit.

Hypothesis generates small logical plans over the shared products/kb
catalog — filter-over-scan, renaming projections, cross joins,
self-joins with duplicated column suffixes, semantic operators,
aggregates — with randomized predicate trees (``And``/``Or``/``Not``
over comparisons on both sides).  For each plan the harness checks:

- every rule in :data:`DEFAULT_RULES` (plus ``BreakupSelections``),
  applied *individually* wherever it fires, leaves the sorted row set
  bit-identical;
- the full flat fixpoint and the phased suite
  (:func:`rewrite_phases` over :data:`DEFAULT_PHASES`) do too;
- the whole :class:`Optimizer` stack (prune, join order, DIP,
  physical selection, fusion) still answers identically to the naive
  plan.

Generated plans never carry LIMIT: sorted-row comparison is only
meaningful on order-insensitive plans, and LIMIT's row choice is
legitimately plan-dependent.

Two explicit regression shapes ride along (also unit-tested in
``test_optimizer_rules.py``) so the harness pins the bugs this PR
fixed even when shrinking never reaches them: the self-join whose
unqualified column resolves on *both* sides, and the aggregate whose
group key is spelled differently above and below the aggregate.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.optimizer.optimizer import Optimizer
from repro.optimizer.rules import (
    DEFAULT_PHASES,
    DEFAULT_RULES,
    BreakupSelections,
    RuleContext,
    rewrite_fixpoint,
    rewrite_phases,
)
from repro.relational.expressions import (
    AggExpr,
    AggFunc,
    And,
    Compare,
    Not,
    Or,
    col,
    lit,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticJoinNode,
)
from repro.relational.physical import execute_plan

SETTINGS = settings(max_examples=30, deadline=None, derandomize=True,
                    suppress_health_check=[
                        HealthCheck.function_scoped_fixture,
                        HealthCheck.too_slow])

#: Rules exercised one at a time (DEFAULT_RULES never contains
#: BreakupSelections — it would ping-pong with MergeFilters — but on
#: its own it must be equivalence-preserving like any other rule).
ALL_RULES = [*DEFAULT_RULES, BreakupSelections()]

_MODEL = "wiki-ft-100"

_P_STRINGS = ["acme", "globex", "initech", "umbrella"]
_K_STRINGS = ["clothes", "animal", "vehicle", "food"]
_OPS = [">", "<", ">=", "<=", "=", "!="]


_SCHEMAS: dict[str, object] = {}


def _atom_p(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return _compare("p.price", draw(st.sampled_from(_OPS)),
                        draw(st.sampled_from([2.0, 20.0, 120.0, 500.0])))
    if kind == 1:
        return _compare("p.brand", draw(st.sampled_from(["=", "!="])),
                        draw(st.sampled_from(_P_STRINGS)))
    return _compare("p.pid", draw(st.sampled_from(_OPS)),
                    float(draw(st.integers(0, 7))))


def _compare(name, op, value):
    return Compare(op, col(name), lit(value))


@st.composite
def predicates(draw, side="p", max_depth=2):
    """A boolean predicate tree over one join side."""
    def leaf():
        if side == "k":
            op = draw(st.sampled_from(["=", "!="]))
            return _compare("k.category", op,
                            draw(st.sampled_from(_K_STRINGS)))
        return _atom_p(draw)

    def tree(depth):
        if depth == 0 or draw(st.booleans()):
            return leaf()
        shape = draw(st.integers(0, 2))
        if shape == 0:
            return And(tree(depth - 1), tree(depth - 1))
        if shape == 1:
            return Or(tree(depth - 1), tree(depth - 1))
        return Not(tree(depth - 1))

    return tree(max_depth)


@st.composite
def plans(draw, catalog):
    """A small logical plan: a filtered shape over products/kb."""
    _SCHEMAS["products"] = catalog.get("products").schema
    _SCHEMAS["kb"] = catalog.get("kb").schema
    scan_p = ScanNode("products", _SCHEMAS["products"], qualifier="p")
    scan_k = ScanNode("kb", _SCHEMAS["kb"], qualifier="k")
    shape = draw(st.integers(0, 5))
    if shape == 0:
        return FilterNode(scan_p, draw(predicates()))
    if shape == 1:
        # renaming projection: part of the mapping is a rename, part a
        # computed column — pushdown must substitute, not copy
        project = ProjectNode(scan_p, [
            (col("p.price"), "cost"),
            (col("p.brand"), "maker"),
            (col("p.pid"), "p.pid"),
        ])
        pred = _compare("cost", draw(st.sampled_from(_OPS)),
                        draw(st.sampled_from([2.0, 20.0, 500.0])))
        if draw(st.booleans()):
            pred = And(pred, _compare(
                "maker", "=", draw(st.sampled_from(_P_STRINGS))))
        return FilterNode(project, pred)
    if shape == 2:
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        pred = And(draw(predicates(side="p")), draw(predicates(side="k")))
        if draw(st.booleans()):
            pred = Not(Or(Not(pred), _compare("k.category", "=", "ghost")))
        return FilterNode(join, pred)
    if shape == 3:
        # self-join: both inputs carry every column suffix, so only
        # qualified predicates are executable (unqualified ones are a
        # SchemaError — covered by TestRegressionShapes)
        scan_q = ScanNode("products", _SCHEMAS["products"], qualifier="q")
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        pred = draw(predicates(side="p"))
        if draw(st.booleans()):
            pred = And(pred, _compare("q.brand", "=",
                                      draw(st.sampled_from(_P_STRINGS))))
        return FilterNode(join, pred)
    if shape == 4:
        semantic = SemanticFilterNode(scan_p, "p.ptype",
                                      draw(st.sampled_from(
                                          ["clothes", "vehicle"])),
                                      _MODEL, 0.7)
        return FilterNode(semantic, draw(predicates(side="p")))
    aggregate = AggregateNode(
        scan_p, [draw(st.sampled_from(["p.brand", "brand"]))],
        [AggExpr(AggFunc.COUNT, None, "n")])
    return FilterNode(aggregate, _compare(
        "p.brand", "=", draw(st.sampled_from(_P_STRINGS))))


def _rows(plan: LogicalPlan, context) -> list[str]:
    return sorted(map(str, execute_plan(plan, context).to_rows()))


def _apply_everywhere(plan: LogicalPlan, rule) -> LogicalPlan:
    """One bottom-up pass of a single rule (no fixpoint)."""
    rebuilt = plan.with_children(tuple(
        _apply_everywhere(child, rule) for child in plan.children))
    replaced = rule.apply(rebuilt, RuleContext())
    return replaced if replaced is not None else rebuilt


class TestEveryRulePreservesResults:
    @given(data=st.data())
    @SETTINGS
    def test_single_rules(self, data, catalog, context):
        plan = data.draw(plans(catalog))
        baseline = _rows(plan, context)
        for rule in ALL_RULES:
            rewritten = _apply_everywhere(plan, rule)
            assert _rows(rewritten, context) == baseline, rule.name

    @given(data=st.data())
    @SETTINGS
    def test_flat_fixpoint(self, data, catalog, context):
        plan = data.draw(plans(catalog))
        rewritten = rewrite_fixpoint(plan, DEFAULT_RULES, RuleContext())
        assert _rows(rewritten, context) == _rows(plan, context)

    @given(data=st.data())
    @SETTINGS
    def test_phased_suite(self, data, catalog, context):
        plan = data.draw(plans(catalog))
        ctx = RuleContext()
        rewritten = rewrite_phases(plan, DEFAULT_PHASES, ctx)
        assert ctx.converged
        assert _rows(rewritten, context) == _rows(plan, context)


class TestFullOptimizerPreservesResults:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None, derandomize=True,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
                  HealthCheck.too_slow])
    def test_optimize_bit_identical(self, data, catalog, registry, context):
        plan = data.draw(plans(catalog))
        baseline = _rows(plan, context)
        optimizer = Optimizer(catalog, models=registry,
                              execution_context=context)
        optimized = optimizer.optimize(plan)
        assert optimizer.last_report.rewrite_converged
        assert _rows(optimized, context) == baseline


class TestRegressionShapes:
    """The two bugs this PR fixed, pinned as explicit equivalence cases."""

    def _scans(self, catalog):
        schema = catalog.get("products").schema
        return (ScanNode("products", schema, qualifier="p"),
                ScanNode("products", schema, qualifier="q"))

    def test_ambiguous_selfjoin_column(self, catalog, context):
        # "price" resolves in BOTH join inputs: executing the plan is a
        # SchemaError.  The old _split_by_side pushed the predicate to
        # the left child, where it suddenly resolved — turning an
        # ambiguity error into silently wrong one-sided filtering.  The
        # fixed rules must leave the predicate above the join so the
        # error is preserved.
        from repro.errors import SchemaError

        scan_p, scan_q = self._scans(catalog)
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        plan = FilterNode(join, _compare("price", ">", 20.0))
        with pytest.raises(SchemaError, match="ambiguous"):
            _rows(plan, context)
        for rule in ALL_RULES:
            rewritten = _apply_everywhere(plan, rule)
            assert isinstance(rewritten, FilterNode), rule.name
            assert rewritten.predicate.columns() == {"price"}, rule.name
        rewritten = rewrite_phases(plan, DEFAULT_PHASES, RuleContext())
        with pytest.raises(SchemaError, match="ambiguous"):
            _rows(rewritten, context)

    def test_ambiguous_semantic_join_column(self, catalog, context):
        from repro.errors import SchemaError

        scan_p, scan_q = self._scans(catalog)
        join = SemanticJoinNode(scan_p, scan_q, "p.ptype", "q.ptype",
                                _MODEL, 0.9)
        plan = FilterNode(join, _compare("brand", "=", "acme"))
        with pytest.raises(SchemaError, match="ambiguous"):
            _rows(plan, context)
        for rule in ALL_RULES:
            rewritten = _apply_everywhere(plan, rule)
            assert isinstance(rewritten, FilterNode), rule.name
            assert rewritten.predicate.columns() == {"brand"}, rule.name

    def test_renamed_aggregate_group_key(self, catalog, context):
        # group key spelled "brand" below, predicate spelled "p.brand"
        # above: the old string-set membership check pushed the verbatim
        # spelling into a child where it may not resolve (or, over a
        # join child, resolves ambiguously)
        scan_p, scan_q = self._scans(catalog)
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        aggregate = AggregateNode(join, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, _compare("brand", "=", "acme"))
        baseline = _rows(plan, context)
        for rule in ALL_RULES:
            assert _rows(_apply_everywhere(plan, rule),
                         context) == baseline, rule.name
        rewritten = rewrite_phases(plan, DEFAULT_PHASES, RuleContext())
        assert _rows(rewritten, context) == baseline
