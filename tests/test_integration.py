"""Tests for online integration: consolidation, entity resolution, FD
repair."""

import numpy as np
import pytest

from repro.errors import IntegrationError
from repro.integration.consolidation import (
    ResultConsolidator,
    pairwise_f1,
)
from repro.integration.entity_resolution import EntityResolver
from repro.integration.fd_repair import (
    FunctionalDependency,
    repair_fd_violations,
)
from repro.storage.table import Table


class TestConsolidation:
    def test_semantic_groups_synonyms(self, cache):
        values = ["boots", "sneakers", "boots", "sedan", "automobile"]
        report = ResultConsolidator(cache, threshold=0.9).consolidate(values)
        assert report.mapping["sneakers"] == report.mapping["boots"]
        assert report.mapping["sedan"] == report.mapping["automobile"]
        assert report.mapping["boots"] != report.mapping["sedan"]
        assert report.n_clusters == 2

    def test_semantic_handles_misspellings(self, cache):
        values = ["sneakers", "sneekers", "parka", "parkka"]
        report = ResultConsolidator(cache, threshold=0.85).consolidate(values)
        assert report.mapping["sneekers"] == report.mapping["sneakers"]
        assert report.mapping["parkka"] == report.mapping["parka"]

    def test_edit_baseline_misses_synonyms(self, cache):
        values = ["boots", "sneakers"]
        semantic = ResultConsolidator(cache, threshold=0.9).consolidate(
            values)
        edit = ResultConsolidator(method="edit",
                                  threshold=0.7).consolidate(values)
        assert semantic.n_clusters == 1
        assert edit.n_clusters == 2  # edit distance can't see synonymy

    def test_edit_baseline_catches_misspellings(self):
        values = ["sneakers", "sneekers"]
        report = ResultConsolidator(method="edit",
                                    threshold=0.7).consolidate(values)
        assert report.n_clusters == 1

    def test_jaccard_baseline(self):
        values = ["sneakers", "sneekers", "boots"]
        report = ResultConsolidator(method="jaccard",
                                    threshold=0.3).consolidate(values)
        assert report.mapping["sneekers"] == report.mapping["sneakers"]

    def test_exact_baseline(self):
        report = ResultConsolidator(method="exact").consolidate(
            ["a", "a", "b"])
        assert report.n_clusters == 2

    def test_semantic_requires_cache(self):
        with pytest.raises(IntegrationError):
            ResultConsolidator(method="semantic")

    def test_unknown_method(self, cache):
        with pytest.raises(IntegrationError):
            ResultConsolidator(cache, method="soundex")

    def test_consolidate_column(self, cache):
        table = Table.from_dict({
            "label": ["boots", "sneakers", "sedan"],
            "n": [1, 2, 3],
        })
        consolidator = ResultConsolidator(cache, threshold=0.9)
        rewritten = consolidator.consolidate_column(table, "label")
        labels = set(rewritten.column("label").tolist())
        assert len(labels) == 2
        assert rewritten.column("n").tolist() == [1, 2, 3]

    def test_none_values_skipped(self, cache):
        report = ResultConsolidator(cache).consolidate(["boots", None])
        assert None not in report.mapping


class TestPairwiseF1:
    def test_perfect(self):
        predicted = {"a": "g1", "b": "g1", "c": "g2"}
        truth = {"a": "x", "b": "x", "c": "y"}
        assert pairwise_f1(predicted, truth) == (1.0, 1.0, 1.0)

    def test_under_merge_recall_low(self):
        predicted = {"a": "g1", "b": "g2", "c": "g3"}
        truth = {"a": "x", "b": "x", "c": "x"}
        precision, recall, f1 = pairwise_f1(predicted, truth)
        assert recall == 0.0 and f1 == 0.0

    def test_over_merge_precision_low(self):
        predicted = {"a": "g", "b": "g", "c": "g"}
        truth = {"a": "x", "b": "y", "c": "z"}
        precision, recall, f1 = pairwise_f1(predicted, truth)
        assert precision == 0.0

    def test_empty(self):
        assert pairwise_f1({}, {}) == (1.0, 1.0, 1.0)


class TestEntityResolver:
    def test_match_cross_tables(self, cache):
        left = Table.from_dict({"name": ["sneakers", "sedan", "apple"]})
        right = Table.from_dict({"name": ["shoes", "car", "kitten"]})
        pairs = EntityResolver(cache, 0.9).match(left, right, "name",
                                                 "name")
        matched = {(p.left_row, p.right_row) for p in pairs}
        assert (0, 0) in matched and (1, 1) in matched
        assert (2, 2) not in matched

    def test_deduplicate_transitive(self, cache):
        table = Table.from_dict({
            "name": ["boots", "sneakers", "oxfords", "sedan", "car"],
        })
        ids = EntityResolver(cache, 0.9).deduplicate(table, "name")
        assert ids[0] == ids[1] == ids[2]
        assert ids[3] == ids[4]
        assert ids[0] != ids[3]

    def test_deduplicate_empty(self, cache):
        table = Table.from_dict({"name": ["x"]}).slice(0, 0)
        assert EntityResolver(cache).deduplicate(table, "name").shape == (0,)

    def test_ids_compact_first_appearance(self, cache):
        table = Table.from_dict({"name": ["sedan", "boots", "car"]})
        ids = EntityResolver(cache, 0.9).deduplicate(table, "name")
        assert ids[0] == 0
        assert ids[1] == 1
        assert ids[2] == 0


class TestFdRepair:
    @pytest.fixture()
    def dirty_table(self):
        return Table.from_dict({
            "pid": [1, 1, 1, 2, 2, 3],
            "category": ["boots", "sneakers", "boots", "sedan", "plane",
                         "apple"],
            "price": [10.0, 11.0, 12.0, 13.0, 14.0, 15.0],
        })

    def test_semantic_consolidation_counted(self, dirty_table, cache):
        fd = FunctionalDependency(("pid",), "category")
        repaired, report = repair_fd_violations(dirty_table, fd, cache,
                                                semantic_threshold=0.9)
        assert report.violating_groups == 2
        assert report.semantic_consolidations == 1  # boots/sneakers group
        assert report.majority_repairs == 1         # sedan/plane conflict
        group1 = [r["category"] for r in repaired.to_rows()
                  if r["pid"] == 1]
        assert len(set(group1)) == 1

    def test_majority_vote_wins(self, dirty_table, cache):
        fd = FunctionalDependency(("pid",), "category")
        repaired, _ = repair_fd_violations(dirty_table, fd, cache)
        group1 = {r["category"] for r in repaired.to_rows() if r["pid"] == 1}
        assert group1 == {"boots"}  # 2-of-3 majority

    def test_scope_mask_limits_repair(self, dirty_table, cache):
        fd = FunctionalDependency(("pid",), "category")
        scope = np.asarray([True, True, True, False, False, False])
        repaired, report = repair_fd_violations(dirty_table, fd, cache,
                                                scope_mask=scope)
        assert report.violating_groups == 1
        untouched = [r["category"] for r in repaired.to_rows()
                     if r["pid"] == 2]
        assert set(untouched) == {"sedan", "plane"}

    def test_clean_table_no_changes(self, cache):
        table = Table.from_dict({"pid": [1, 1], "category": ["a", "a"]})
        fd = FunctionalDependency(("pid",), "category")
        _, report = repair_fd_violations(table, fd, cache)
        assert report.violating_groups == 0
        assert report.rows_changed == 0

    def test_works_without_cache(self, dirty_table):
        fd = FunctionalDependency(("pid",), "category")
        repaired, report = repair_fd_violations(dirty_table, fd, cache=None)
        assert report.semantic_consolidations == 0
        assert report.violating_groups == 2

    def test_empty_lhs_rejected(self, dirty_table):
        with pytest.raises(IntegrationError):
            repair_fd_violations(dirty_table,
                                 FunctionalDependency((), "category"))

    def test_bad_scope_length(self, dirty_table):
        fd = FunctionalDependency(("pid",), "category")
        with pytest.raises(IntegrationError):
            repair_fd_violations(dirty_table, fd,
                                 scope_mask=np.ones(2, dtype=bool))
