"""Robustness: empty inputs, degenerate plans, and edge cases through
every operator — the failure modes a downstream user hits first."""

import numpy as np
import pytest

from repro.relational.expressions import AggExpr, AggFunc, col
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.relational.physical import execute_plan
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType


@pytest.fixture()
def empty_catalog(catalog, products_table):
    empty = Table.empty(products_table.schema)
    catalog.register("empty_products", empty)
    return catalog


@pytest.fixture()
def scan_empty(empty_catalog):
    schema = empty_catalog.get("empty_products").schema
    return ScanNode("empty_products", schema, qualifier="e")


class TestEmptyInputs:
    def test_filter_on_empty(self, context, scan_empty):
        plan = FilterNode(scan_empty, col("e.price") > 0)
        result = execute_plan(plan, context)
        assert result.num_rows == 0
        assert result.schema == scan_empty.schema

    def test_project_on_empty(self, context, scan_empty):
        plan = ProjectNode(scan_empty, [(col("e.price") * 2, "x")])
        assert execute_plan(plan, context).num_rows == 0

    def test_sort_limit_on_empty(self, context, scan_empty):
        plan = LimitNode(SortNode(scan_empty, [("e.price", True)]), 5)
        assert execute_plan(plan, context).num_rows == 0

    def test_aggregate_global_on_empty(self, context, scan_empty):
        plan = AggregateNode(scan_empty, [], [
            AggExpr(AggFunc.COUNT, None, "n"),
            AggExpr(AggFunc.SUM, col("e.price"), "total"),
        ])
        row = execute_plan(plan, context).to_rows()[0]
        assert row["n"] == 0
        assert row["total"] == 0

    def test_aggregate_grouped_on_empty(self, context, scan_empty):
        plan = AggregateNode(scan_empty, ["e.brand"],
                             [AggExpr(AggFunc.COUNT, None, "n")])
        assert execute_plan(plan, context).num_rows == 0

    def test_hash_join_empty_build(self, context, scan_empty,
                                   products_table):
        full = ScanNode("products", products_table.schema, qualifier="p")
        plan = JoinNode(full, scan_empty, JoinType.INNER,
                        ["p.ptype"], ["e.ptype"])
        assert execute_plan(plan, context).num_rows == 0

    def test_hash_join_empty_probe(self, context, scan_empty,
                                   products_table):
        full = ScanNode("products", products_table.schema, qualifier="p")
        plan = JoinNode(scan_empty, full, JoinType.INNER,
                        ["e.ptype"], ["p.ptype"])
        assert execute_plan(plan, context).num_rows == 0

    def test_left_join_empty_build_keeps_probe(self, context, scan_empty,
                                               products_table):
        full = ScanNode("products", products_table.schema, qualifier="p")
        plan = JoinNode(full, scan_empty, JoinType.LEFT,
                        ["p.ptype"], ["e.ptype"])
        result = execute_plan(plan, context)
        assert result.num_rows == products_table.num_rows

    def test_cross_join_with_empty(self, context, scan_empty,
                                   products_table):
        full = ScanNode("products", products_table.schema, qualifier="p")
        plan = JoinNode(full, scan_empty, JoinType.CROSS)
        assert execute_plan(plan, context).num_rows == 0

    def test_union_with_empty(self, context, scan_empty, empty_catalog,
                              products_table):
        full = ScanNode("products", products_table.schema, qualifier="e")
        plan = UnionNode([scan_empty, full])
        assert execute_plan(plan, context).num_rows == \
            products_table.num_rows

    def test_semantic_filter_on_empty(self, context, scan_empty):
        plan = SemanticFilterNode(scan_empty, "e.ptype", "clothes",
                                  "wiki-ft-100", 0.7)
        assert execute_plan(plan, context).num_rows == 0

    def test_semantic_join_empty_left(self, context, scan_empty, kb_table):
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan_empty, kb, "e.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        assert execute_plan(plan, context).num_rows == 0

    def test_semantic_join_empty_right(self, context, scan_empty,
                                       products_table):
        full = ScanNode("products", products_table.schema, qualifier="p")
        plan = SemanticJoinNode(full, scan_empty, "p.ptype", "e.ptype",
                                "wiki-ft-100", 0.9)
        assert execute_plan(plan, context).num_rows == 0

    def test_semantic_groupby_on_empty(self, context, scan_empty):
        plan = SemanticGroupByNode(scan_empty, "e.ptype", "wiki-ft-100",
                                   0.8)
        assert execute_plan(plan, context).num_rows == 0

    def test_semantic_semi_filter_on_empty(self, context, scan_empty):
        plan = SemanticSemiFilterNode(scan_empty, "e.ptype", ["shoes"],
                                      "wiki-ft-100", 0.9)
        assert execute_plan(plan, context).num_rows == 0


class TestOptimizerOnDegeneratePlans:
    def test_optimize_empty_table_plan(self, empty_catalog, registry,
                                       context):
        from repro.optimizer import Optimizer

        schema = empty_catalog.get("empty_products").schema
        scan = ScanNode("empty_products", schema, qualifier="e")
        plan = FilterNode(scan, col("e.price") > 10)
        optimizer = Optimizer(empty_catalog, registry,
                              execution_context=context)
        optimized = optimizer.optimize(plan)
        assert execute_plan(optimized, context).num_rows == 0

    def test_optimize_semantic_join_over_empty(self, empty_catalog,
                                               registry, context,
                                               kb_table):
        from repro.optimizer import Optimizer

        schema = empty_catalog.get("empty_products").schema
        scan = ScanNode("empty_products", schema, qualifier="e")
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan, kb, "e.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        optimizer = Optimizer(empty_catalog, registry,
                              execution_context=context)
        optimized = optimizer.optimize(plan)
        assert execute_plan(optimized, context).num_rows == 0


class TestNullHandling:
    def test_semantic_join_skips_null_keys(self, context, catalog,
                                           kb_table):
        with_nulls = Table.from_dict(
            {"name": ["boots", None, "sedan"]},
            schema=Schema([Field("name", DataType.STRING)]))
        catalog.register("nullable", with_nulls)
        scan = ScanNode("nullable", with_nulls.schema, qualifier="n")
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan, kb, "n.name", "k.label",
                                "wiki-ft-100", 0.9)
        result = execute_plan(plan, context)
        assert None not in set(result.column("n.name").tolist())

    def test_single_row_table(self, context, catalog, kb_table):
        single = Table.from_dict({"name": ["boots"]})
        catalog.register("single", single)
        scan = ScanNode("single", single.schema, qualifier="s")
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan, kb, "s.name", "k.label",
                                "wiki-ft-100", 0.9)
        result = execute_plan(plan, context)
        assert result.num_rows == 1

    def test_all_identical_values(self, context, catalog, kb_table):
        same = Table.from_dict({"name": ["boots"] * 10})
        catalog.register("same", same)
        scan = ScanNode("same", same.schema, qualifier="s")
        kb = ScanNode("kb", kb_table.schema, qualifier="k")
        plan = SemanticJoinNode(scan, kb, "s.name", "k.label",
                                "wiki-ft-100", 0.9)
        result = execute_plan(plan, context)
        assert result.num_rows == 10  # each duplicate row joins once


class TestSqlEdgeCases:
    def test_top_k_parsed(self):
        from repro.engine.sql.parser import parse_sql

        statement = parse_sql(
            "SELECT * FROM a SEMANTIC JOIN b ON a.x ~ b.y "
            "THRESHOLD 0.5 TOP 3")
        assert statement.joins[0].top_k == 3

    def test_contains_operator_parsed(self):
        from repro.engine.sql import ast
        from repro.engine.sql.parser import parse_sql

        statement = parse_sql("SELECT * FROM t WHERE x ~* 'probe'")
        assert isinstance(statement.where, ast.SemanticPredicate)
        assert statement.where.mode == "contains"

    def test_empty_in_list_rejected(self):
        from repro.engine.sql.parser import parse_sql
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t WHERE a IN ()")

    def test_double_semantic_group_by_rejected(self):
        from repro.engine.sql.parser import parse_sql
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t SEMANTIC GROUP BY a "
                      "SEMANTIC GROUP BY b")

    def test_limit_zero_via_sql(self, products_table):
        from repro.engine.session import Session

        session = Session(seed=7)
        session.register_table("products", products_table)
        assert session.sql("SELECT * FROM products LIMIT 0").num_rows == 0
