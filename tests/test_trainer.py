"""Tests for the skip-gram trainer and the corpus generator."""

import numpy as np
import pytest

from repro.embeddings.corpus import CorpusGenerator
from repro.embeddings.thesaurus import default_thesaurus
from repro.embeddings.trainer import SkipGramTrainer, TrainConfig
from repro.errors import ModelError


@pytest.fixture(scope="module")
def small_corpus():
    generator = CorpusGenerator(seed=11)
    return generator.generate(1_200)


@pytest.fixture(scope="module")
def trained(small_corpus):
    config = TrainConfig(dim=24, epochs=4, window=3, negatives=4,
                         learning_rate=0.03, seed=13, buckets=4001)
    trainer = SkipGramTrainer(config)
    model = trainer.fit(small_corpus, name="tiny")
    return trainer, model


class TestCorpus:
    def test_deterministic(self):
        a = CorpusGenerator(seed=11).generate(50)
        b = CorpusGenerator(seed=11).generate(50)
        assert a == b

    def test_sentences_contain_topic_words(self):
        generator = CorpusGenerator(seed=11)
        sentence = generator.generate(1)[0]
        assert len(sentence) >= 5

    def test_topic_stability(self):
        generator = CorpusGenerator(seed=11)
        assert generator.topic_of("dog") == generator.topic_of("dog")

    def test_different_concepts_different_topics(self):
        generator = CorpusGenerator(seed=11)
        assert generator.topic_of("dog") != generator.topic_of("sofa")


class TestTrainer:
    def test_loss_decreases(self, trained):
        trainer, _ = trained
        assert trainer.loss_history[-1] < trainer.loss_history[0]

    def test_synonyms_cluster_above_random(self, trained):
        """The distributional-hypothesis check: same-concept forms end up
        more similar than random cross-concept pairs."""
        _, model = trained
        thesaurus = default_thesaurus()
        synonym_scores = []
        random_scores = []
        pairs = [("dog", "canine"), ("cat", "feline"), ("boots", "sneakers"),
                 ("sofa", "couch"), ("car", "sedan")]
        for a, b in pairs:
            if a in model and b in model:
                synonym_scores.append(model.similarity(a, b))
        cross = [("dog", "sofa"), ("cat", "boots"), ("car", "parrot"),
                 ("apple", "blazer"), ("desk", "kitten")]
        for a, b in cross:
            if a in model and b in model:
                random_scores.append(model.similarity(a, b))
        assert len(synonym_scores) >= 3
        assert np.mean(synonym_scores) > np.mean(random_scores) + 0.1

    def test_deterministic_training(self, small_corpus):
        config = TrainConfig(dim=8, epochs=1, seed=21, buckets=997)
        a = SkipGramTrainer(config).fit(small_corpus[:100])
        b = SkipGramTrainer(config).fit(small_corpus[:100])
        assert np.array_equal(a.word_vectors, b.word_vectors)

    def test_empty_corpus_raises(self):
        with pytest.raises(ModelError):
            SkipGramTrainer(TrainConfig(dim=8)).fit([])

    def test_config_validation(self):
        with pytest.raises(ModelError):
            TrainConfig(dim=0).validate()
        with pytest.raises(ModelError):
            TrainConfig(negatives=0).validate()

    def test_min_count_filters_vocab(self, small_corpus):
        config = TrainConfig(dim=8, epochs=1, min_count=1000, seed=1)
        with pytest.raises(ModelError):
            SkipGramTrainer(config).fit(small_corpus[:50])
