"""End-to-end observability: span trees, metrics registry, exporters.

The tentpole contract under test: one traced statement yields ONE span
tree whose spans, attributes, and timings agree with every other
reporting surface — ``QueryProfile``, ``server.metrics()``, and both
exporters — because they all render the same instruments and spans.

The exporter golden files under ``tests/golden/`` pin the exact output
formats; regenerate them with
``PYTHONPATH=src python -m repro.obs.smoke --write-golden`` after a
deliberate format change.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.obs.export import json_snapshot, parse_prometheus, prometheus_text
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    hit_ratio
from repro.obs.smoke import demo_registry
from repro.obs.trace import NULL_SPAN, NULL_TRACE, Span, Tracer
from repro.server import EngineServer

GOLDEN = Path(__file__).parent / "golden"

JOIN = ("SELECT p.pid, k.category FROM products AS p "
        "SEMANTIC JOIN kb AS k ON p.ptype ~ k.label THRESHOLD 0.5 "
        "ORDER BY p.pid, k.category")


@pytest.fixture()
def server(model, products_table, kb_table):
    with EngineServer(load_default_model=False, parallelism=4) as server:
        server.register_model(model, default=True)
        server.register_table("products", products_table)
        server.register_table("kb", kb_table)
        yield server


def operator_spans(span: Span) -> list[Span]:
    """Preorder ``operator:*`` spans under ``span``."""
    out: list[Span] = []
    for child in span.children:
        if child.name.startswith("operator:"):
            out.append(child)
            out.extend(operator_spans(child))
    return out


# ---------------------------------------------------------------------
# Span-tree shape
# ---------------------------------------------------------------------
class TestSpanTree:
    def test_semantic_join_span_tree(self, server):
        """One submitted semantic join -> one complete span tree."""
        client = server.session("alice")
        client.sql(JOIN)
        trace = client.last_profile.trace
        assert trace is not None and trace.enabled
        root = trace.root
        assert root.name == "statement"
        assert root.attrs["tenant"] == "alice"
        assert root.attrs["plan_cache_hit"] is False
        assert root.attrs["result_cache_hit"] is False
        assert root.attrs["reuse_hit"] is False

        parse = trace.find("frontend.parse")
        assert parse is not None
        assert parse.attrs["text_memo_hit"] is False

        probe = trace.find("plan_cache.probe")
        assert probe is not None
        assert probe.attrs["hit"] is False
        assert probe.attrs["model"] == "wiki-ft-100"
        assert probe.attrs["catalog_version"] >= 0
        assert trace.find("frontend.bind") is not None
        assert trace.find("optimize") is not None

        result_probe = trace.find("result_cache.probe")
        assert result_probe is not None
        assert result_probe.attrs == {"hit": False, "cacheable": True}
        assert trace.find("reuse.probe").attrs == {"hit": False}

        queue = trace.find("scheduler.queue")
        assert queue is not None
        assert queue.attrs["lane"] in ("interactive", "batch")
        assert queue.attrs["tenant"] == "alice"
        assert queue.attrs["workers"] >= 1
        assert queue.seconds >= 0.0

        execute = trace.find("execute")
        assert execute is not None
        ops = operator_spans(execute)
        assert ops, "execute span must carry the operator tree"
        assert any(op.name.startswith("operator:SemanticJoin")
                   for op in ops)
        # a semantic join embeds -> the arena probe span is present
        arena = trace.find("embedding_cache.probe")
        assert arena is not None
        assert arena.attrs["hits"] + arena.attrs["misses"] > 0
        # root duration covers the children (finish() sums them)
        assert root.seconds >= execute.seconds

    def test_repeat_statement_hits_in_trace(self, server):
        """A warmed repeat traces as cache hits and skips execute."""
        # two full passes: pass 1 computes lazy statistics (bumping the
        # catalog version), pass 2 caches under the stable version
        for _ in range(2):
            server.sql(JOIN)
        server.sql(JOIN)
        trace = server.traces()[-1]
        assert trace.root.attrs["plan_cache_hit"] is True
        assert trace.root.attrs["result_cache_hit"] is True
        assert trace.find("plan_cache.probe").attrs["hit"] is True
        assert trace.find("result_cache.probe").attrs["hit"] is True
        assert trace.find("frontend.parse").attrs["text_memo_hit"] is True
        assert trace.find("execute") is None
        assert trace.find("scheduler.queue") is None

    def test_traces_ring_is_bounded(self, server):
        keep = server.state.tracer._completed.maxlen
        for index in range(keep + 5):
            server.sql(f"SELECT pid FROM products WHERE pid > {index}")
        assert len(server.traces()) == keep


# ---------------------------------------------------------------------
# Trace vs QueryProfile consistency
# ---------------------------------------------------------------------
class TestTraceProfileConsistency:
    def test_operator_spans_mirror_profile(self, server):
        client = server.session()
        client.sql(JOIN)
        profile = client.last_profile
        trace = profile.trace
        ops = operator_spans(trace.find("execute"))
        assert [span.name for span in ops] \
            == [f"operator:{op.label}" for op in profile.operators]
        assert [span.seconds for span in ops] \
            == [op.seconds for op in profile.operators]
        assert [span.attrs["rows_out"] for span in ops] \
            == [op.rows_out for op in profile.operators]
        assert [span.attrs["depth"] for span in ops] \
            == [op.depth for op in profile.operators]

    def test_profile_pretty_renders_trace(self, server):
        client = server.session()
        client.sql(JOIN)
        text = client.last_profile.pretty()
        assert "trace:" in text
        assert "statement" in text
        assert "operator:" in text

    def test_explain_analyze_renders_trace(self, server):
        text = server.session().explain_analyze(JOIN)
        assert "trace:" in text
        assert "explain_analyze" in text
        assert "operator:" in text


# ---------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------
class TestExporters:
    def test_prometheus_text_golden(self):
        text = prometheus_text(demo_registry())
        assert text == (GOLDEN / "observability_prometheus.txt").read_text()

    def test_json_snapshot_golden(self):
        snapshot = json_snapshot(demo_registry())
        golden = json.loads(
            (GOLDEN / "observability_snapshot.json").read_text())
        assert snapshot == golden

    def test_parse_prometheus_round_trips(self):
        registry = demo_registry()
        assert parse_prometheus(prometheus_text(registry)) \
            == json_snapshot(registry)

    def test_server_exporters_agree(self, server):
        for _ in range(2):
            server.sql(JOIN)
        parsed = parse_prometheus(server.export_prometheus())
        assert parsed == server.export_json()

    def test_exporters_agree_with_metrics_dict(self, server):
        for _ in range(2):
            server.sql(JOIN)
        server.sql("SELECT pid FROM products WHERE price > 10 "
                   "ORDER BY pid")
        snapshot = server.export_json()
        metrics = server.metrics()
        assert snapshot["plan_cache_hits_total"] \
            == metrics["plan_cache"]["hits"]
        assert snapshot["plan_cache_misses_total"] \
            == metrics["plan_cache"]["misses"]
        assert snapshot["result_cache_hits_total"] \
            == metrics["result_cache"]["hits"]
        assert snapshot["result_cache_misses_total"] \
            == metrics["result_cache"]["misses"]
        assert snapshot["scheduler_admitted_total"] \
            == metrics["scheduler"]["admitted"]
        assert snapshot["kernel_cache_hits_total"] \
            == metrics["kernels"]["hits"]
        assert snapshot["catalog_version"] == metrics["catalog_version"]

    def test_parse_prometheus_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x summary\n")
        with pytest.raises(ValueError):
            parse_prometheus('x_bucket{le="+Inf"} 1\nx_bucket{le="+Inf"} 2\n')


# ---------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------
class TestInstruments:
    def test_histogram_bucket_edges_are_le(self):
        histogram = Histogram("h_seconds", buckets=(0.001, 0.01, 0.1))
        histogram.observe(0.001)    # == edge: lands in that bucket
        histogram.observe(0.0011)   # just above: next bucket
        histogram.observe(0.1)
        histogram.observe(99.0)     # above the last edge: +Inf only
        assert histogram.cumulative() == [
            (0.001, 1), (0.01, 2), (0.1, 3), (float("inf"), 4)]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.001 + 0.0011 + 0.1 + 99.0)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1, 0.01))

    def test_registry_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total")
        first.inc()
        assert registry.counter("c_total") is first
        assert registry.counter("c_total").value == 1
        with pytest.raises(TypeError):
            registry.gauge("c_total")

    def test_gauge_callback_rebinds(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", fn=lambda: 1.0)
        assert gauge.value == 1.0
        assert registry.gauge("g", fn=lambda: 2.0) is gauge
        assert gauge.value == 2.0
        gauge.set(5)
        assert gauge.value == 5.0

    def test_counter_and_gauge_basics(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0
        gauge = Gauge("g")
        assert gauge.value == 0.0

    def test_hit_ratio_zero_over_zero(self):
        assert hit_ratio(0, 0) == 0.0
        assert hit_ratio(3, 1) == 0.75


# ---------------------------------------------------------------------
# Sampling and the disabled path
# ---------------------------------------------------------------------
class TestSampling:
    def test_sample_zero_returns_null_singleton(self):
        tracer = Tracer(sample=0.0)
        trace = tracer.start("statement")
        assert trace is NULL_TRACE
        with trace.span("anything") as span:
            assert span is NULL_SPAN
            span.annotate(ignored=True)
        tracer.finish(trace)
        assert tracer.completed() == []

    def test_sample_is_deterministic_floor_crossing(self):
        tracer = Tracer(sample=0.25)
        enabled = [tracer.start("s").enabled for _ in range(8)]
        assert enabled == [False, False, False, True,
                           False, False, False, True]

    def test_sample_one_traces_everything(self):
        tracer = Tracer(sample=1.0)
        assert all(tracer.start("s").enabled for _ in range(5))

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)

    def test_server_with_tracing_disabled(self, model, products_table):
        with EngineServer(load_default_model=False,
                          trace_sample=0.0) as server:
            server.register_model(model, default=True)
            server.register_table("products", products_table)
            client = server.session()
            client.sql("SELECT pid FROM products ORDER BY pid")
            assert server.traces() == []
            assert client.last_profile.trace is None
            # metrics still flow with tracing off
            assert server.export_json()["engine_statements_total"] == 1

    def test_traces_total_counter(self, server):
        server.sql(JOIN)
        assert server.export_json()["engine_traces_total"] \
            == len(server.traces())


# ---------------------------------------------------------------------
# NDJSON trace log
# ---------------------------------------------------------------------
class TestTraceLog:
    def test_ndjson_sink(self, tmp_path):
        path = tmp_path / "traces.ndjson"
        tracer = Tracer(sample=1.0, sink=path)
        for index in range(2):
            trace = tracer.start("statement", n=index)
            with trace.span("execute"):
                pass
            tracer.finish(trace)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for index, line in enumerate(lines):
            event = json.loads(line)
            assert event["name"] == "statement"
            assert event["attrs"] == {"n": index}
            assert event["spans"][0]["name"] == "execute"
            assert event["ts"] > 0

    def test_server_trace_log(self, tmp_path, model, products_table):
        path = tmp_path / "server.ndjson"
        with EngineServer(load_default_model=False,
                          trace_log=path) as server:
            server.register_model(model, default=True)
            server.register_table("products", products_table)
            server.sql("SELECT pid FROM products ORDER BY pid")
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert events and events[0]["name"] == "statement"


# ---------------------------------------------------------------------
# Concurrency: disjoint traces under parallel clients
# ---------------------------------------------------------------------
@pytest.mark.concurrency
class TestConcurrentTraces:
    def test_eight_clients_eight_disjoint_traces(self, server):
        n_clients = 8
        barrier = threading.Barrier(n_clients)
        errors: list[BaseException] = []

        def work(index: int) -> None:
            try:
                client = server.session(f"c{index}")
                barrier.wait(timeout=10)
                client.sql(f"SELECT pid FROM products "
                           f"WHERE pid > {index} ORDER BY pid")
            except BaseException as error:  # noqa: BLE001 — re-raised
                errors.append(error)

        threads = [threading.Thread(target=work, args=(index,))
                   for index in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        traces = server.traces()
        assert len(traces) == n_clients
        # disjoint: one trace per tenant, no span shared between trees
        assert {t.root.attrs["tenant"] for t in traces} \
            == {f"c{i}" for i in range(n_clients)}
        seen_span_ids: set[int] = set()
        for trace in traces:
            assert trace.root.name == "statement"
            stack = [trace.root]
            while stack:
                span = stack.pop()
                assert id(span) not in seen_span_ids
                seen_span_ids.add(id(span))
                assert span.seconds >= 0.0
                stack.extend(span.children)
            # every executed statement has its queue + execute spans
            assert trace.find("scheduler.queue") is not None
            execute = trace.find("execute")
            assert execute is not None
            assert operator_spans(execute)
