"""Tests for rewrite rules: each rule, fixpoint, semantics preservation."""

import pytest

from repro.optimizer.rules import (
    DEFAULT_RULES,
    MergeFilters,
    PruneColumns,
    PushFilterBelowSemanticFilter,
    PushFilterIntoJoin,
    PushFilterThroughAggregate,
    PushFilterThroughProject,
    PushFilterThroughSemanticJoin,
    RemoveTrivialProject,
    RuleContext,
    rewrite_fixpoint,
    substitute,
)
from repro.relational.expressions import AggExpr, AggFunc, ColumnRef, col, lit
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticJoinNode,
)
from repro.relational.physical import execute_plan


@pytest.fixture()
def scan_p(products_table):
    return ScanNode("products", products_table.schema, qualifier="p")


@pytest.fixture()
def scan_k(kb_table):
    return ScanNode("kb", kb_table.schema, qualifier="k")


def _rows(plan, context):
    return sorted(map(str, execute_plan(plan, context).to_rows()))


class TestMergeFilters:
    def test_merges(self, scan_p):
        plan = FilterNode(FilterNode(scan_p, col("p.price") > 1),
                          col("p.price") < 100)
        merged = MergeFilters().apply(plan, RuleContext())
        assert isinstance(merged, FilterNode)
        assert isinstance(merged.child, ScanNode)

    def test_no_match(self, scan_p):
        assert MergeFilters().apply(scan_p, RuleContext()) is None


class TestPushThroughProject:
    def test_substitutes_alias(self, scan_p, context):
        project = ProjectNode(scan_p, [(col("p.price") * 2, "double"),
                                       (col("p.pid"), "pid")])
        plan = FilterNode(project, col("double") > 100)
        rewritten = PushFilterThroughProject().apply(plan, RuleContext())
        assert isinstance(rewritten, ProjectNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_substitute_helper(self):
        mapping = {"alias": col("real") + lit(1)}
        rewritten = substitute(col("alias") > 5, mapping)
        assert rewritten.columns() == {"real"}

    def test_substitute_missing_alias(self):
        with pytest.raises(KeyError):
            substitute(col("ghost") > 5, {})


class TestPushIntoJoin:
    def test_splits_by_side(self, scan_p, scan_k, context):
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        plan = FilterNode(join, (col("p.price") > 100)
                          & (col("k.category") == "clothes"))
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_residual_predicate_stays(self, scan_p, scan_k):
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        plan = FilterNode(join, (col("p.ptype") == col("k.label"))
                          & (col("p.price") > 1))
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        assert isinstance(rewritten, FilterNode)  # cross-side part remains
        assert isinstance(rewritten.child, JoinNode)

    def test_left_join_not_rewritten(self, scan_p, scan_k):
        join = JoinNode(scan_p, scan_k, JoinType.LEFT,
                        ["p.ptype"], ["k.label"])
        plan = FilterNode(join, col("k.category") == "clothes")
        assert PushFilterIntoJoin().apply(plan, RuleContext()) is None


class TestPushThroughSemanticJoin:
    def test_pushes_both_sides(self, scan_p, scan_k, context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, (col("p.price") > 20)
                          & (col("k.category") == "clothes"))
        rewritten = PushFilterThroughSemanticJoin().apply(plan,
                                                          RuleContext())
        assert isinstance(rewritten, SemanticJoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_score_predicate_not_pushed(self, scan_p, scan_k):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9,
                                score_alias="similarity")
        plan = FilterNode(join, col("similarity") > 0.95)
        assert PushFilterThroughSemanticJoin().apply(
            plan, RuleContext()) is None


class TestPushBelowSemanticFilter:
    def test_relational_filter_sinks(self, scan_p, context):
        semantic = SemanticFilterNode(scan_p, "p.ptype", "clothes",
                                      "wiki-ft-100", 0.7)
        plan = FilterNode(semantic, col("p.price") > 20)
        rewritten = PushFilterBelowSemanticFilter().apply(plan,
                                                          RuleContext())
        assert isinstance(rewritten, SemanticFilterNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_score_reference_blocks(self, scan_p):
        semantic = SemanticFilterNode(scan_p, "p.ptype", "clothes",
                                      "wiki-ft-100", 0.7,
                                      score_alias="score")
        plan = FilterNode(semantic, col("score") > 0.8)
        assert PushFilterBelowSemanticFilter().apply(
            plan, RuleContext()) is None


class TestPushThroughAggregate:
    def test_key_predicate_pushes(self, scan_p, context):
        aggregate = AggregateNode(scan_p, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("p.brand") == "acme")
        rewritten = PushFilterThroughAggregate().apply(plan, RuleContext())
        assert isinstance(rewritten, AggregateNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_agg_output_predicate_stays(self, scan_p):
        aggregate = AggregateNode(scan_p, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("n") > 1)
        assert PushFilterThroughAggregate().apply(plan,
                                                  RuleContext()) is None


class TestRemoveTrivialProject:
    def test_removes_identity(self, scan_p):
        identity = ProjectNode(scan_p, [
            (ColumnRef(n), n) for n in scan_p.schema.names])
        assert RemoveTrivialProject().apply(identity,
                                            RuleContext()) is scan_p

    def test_keeps_non_identity(self, scan_p):
        project = ProjectNode(scan_p, [(col("p.pid"), "pid")])
        assert RemoveTrivialProject().apply(project, RuleContext()) is None


class TestPruneColumns:
    def test_inserts_projection_over_scan(self, scan_p, scan_k, context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = ProjectNode(join, [(col("p.pid"), "pid")])
        pruned = PruneColumns().run(plan)
        scans_with_project = [
            node for node in pruned.walk()
            if isinstance(node, ProjectNode)
            and node.children and isinstance(node.child, ScanNode)
        ]
        assert scans_with_project  # at least one scan now pruned
        assert _rows(plan, context) == _rows(pruned, context)

    def test_keeps_filter_columns(self, scan_p, context):
        plan = ProjectNode(FilterNode(scan_p, col("p.price") > 20),
                           [(col("p.pid"), "pid")])
        pruned = PruneColumns().run(plan)
        assert _rows(plan, context) == _rows(pruned, context)


class TestFixpoint:
    def test_filter_reaches_scans_through_stack(self, scan_p, scan_k,
                                                context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(FilterNode(join, col("p.price") > 20),
                          col("k.category") == "clothes")
        ctx = RuleContext()
        rewritten = rewrite_fixpoint(plan, DEFAULT_RULES, ctx)
        assert isinstance(rewritten, SemanticJoinNode)
        assert ctx.applied  # rules fired
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_fixpoint_idempotent(self, scan_p):
        plan = FilterNode(scan_p, col("p.price") > 20)
        once = rewrite_fixpoint(plan, DEFAULT_RULES)
        twice = rewrite_fixpoint(once, DEFAULT_RULES)
        assert once.pretty() == twice.pretty()
