"""Tests for rewrite rules: each rule, fixpoint, semantics preservation."""

import pytest

from repro.optimizer.rules import (
    DEFAULT_PHASES,
    DEFAULT_RULES,
    BreakupSelections,
    MergeFilters,
    NormalizePredicate,
    PruneColumns,
    PushFilterBelowSemanticFilter,
    PushFilterIntoJoin,
    PushFilterThroughAggregate,
    PushFilterThroughProject,
    PushFilterThroughSemanticJoin,
    RemoveTrivialProject,
    RuleContext,
    normalize_predicate,
    rewrite_fixpoint,
    rewrite_phases,
    substitute,
)
from repro.relational.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Compare,
    Not,
    Or,
    col,
    lit,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticJoinNode,
)
from repro.relational.physical import execute_plan


@pytest.fixture()
def scan_p(products_table):
    return ScanNode("products", products_table.schema, qualifier="p")


@pytest.fixture()
def scan_k(kb_table):
    return ScanNode("kb", kb_table.schema, qualifier="k")


def _rows(plan, context):
    return sorted(map(str, execute_plan(plan, context).to_rows()))


class TestMergeFilters:
    def test_merges(self, scan_p):
        plan = FilterNode(FilterNode(scan_p, col("p.price") > 1),
                          col("p.price") < 100)
        merged = MergeFilters().apply(plan, RuleContext())
        assert isinstance(merged, FilterNode)
        assert isinstance(merged.child, ScanNode)

    def test_no_match(self, scan_p):
        assert MergeFilters().apply(scan_p, RuleContext()) is None


class TestPushThroughProject:
    def test_substitutes_alias(self, scan_p, context):
        project = ProjectNode(scan_p, [(col("p.price") * 2, "double"),
                                       (col("p.pid"), "pid")])
        plan = FilterNode(project, col("double") > 100)
        rewritten = PushFilterThroughProject().apply(plan, RuleContext())
        assert isinstance(rewritten, ProjectNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_substitute_helper(self):
        mapping = {"alias": col("real") + lit(1)}
        rewritten = substitute(col("alias") > 5, mapping)
        assert rewritten.columns() == {"real"}

    def test_substitute_missing_alias(self):
        with pytest.raises(KeyError):
            substitute(col("ghost") > 5, {})


class TestPushIntoJoin:
    def test_splits_by_side(self, scan_p, scan_k, context):
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        plan = FilterNode(join, (col("p.price") > 100)
                          & (col("k.category") == "clothes"))
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_residual_predicate_stays(self, scan_p, scan_k):
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        plan = FilterNode(join, (col("p.ptype") == col("k.label"))
                          & (col("p.price") > 1))
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        assert isinstance(rewritten, FilterNode)  # cross-side part remains
        assert isinstance(rewritten.child, JoinNode)

    def test_left_join_not_rewritten(self, scan_p, scan_k):
        join = JoinNode(scan_p, scan_k, JoinType.LEFT,
                        ["p.ptype"], ["k.label"])
        plan = FilterNode(join, col("k.category") == "clothes")
        assert PushFilterIntoJoin().apply(plan, RuleContext()) is None


class TestPushThroughSemanticJoin:
    def test_pushes_both_sides(self, scan_p, scan_k, context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, (col("p.price") > 20)
                          & (col("k.category") == "clothes"))
        rewritten = PushFilterThroughSemanticJoin().apply(plan,
                                                          RuleContext())
        assert isinstance(rewritten, SemanticJoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_score_predicate_not_pushed(self, scan_p, scan_k):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9,
                                score_alias="similarity")
        plan = FilterNode(join, col("similarity") > 0.95)
        assert PushFilterThroughSemanticJoin().apply(
            plan, RuleContext()) is None


class TestPushBelowSemanticFilter:
    def test_relational_filter_sinks(self, scan_p, context):
        semantic = SemanticFilterNode(scan_p, "p.ptype", "clothes",
                                      "wiki-ft-100", 0.7)
        plan = FilterNode(semantic, col("p.price") > 20)
        rewritten = PushFilterBelowSemanticFilter().apply(plan,
                                                          RuleContext())
        assert isinstance(rewritten, SemanticFilterNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_score_reference_blocks(self, scan_p):
        semantic = SemanticFilterNode(scan_p, "p.ptype", "clothes",
                                      "wiki-ft-100", 0.7,
                                      score_alias="score")
        plan = FilterNode(semantic, col("score") > 0.8)
        assert PushFilterBelowSemanticFilter().apply(
            plan, RuleContext()) is None


class TestPushThroughAggregate:
    def test_key_predicate_pushes(self, scan_p, context):
        aggregate = AggregateNode(scan_p, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("p.brand") == "acme")
        rewritten = PushFilterThroughAggregate().apply(plan, RuleContext())
        assert isinstance(rewritten, AggregateNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_agg_output_predicate_stays(self, scan_p):
        aggregate = AggregateNode(scan_p, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("n") > 1)
        assert PushFilterThroughAggregate().apply(plan,
                                                  RuleContext()) is None


class TestRemoveTrivialProject:
    def test_removes_identity(self, scan_p):
        identity = ProjectNode(scan_p, [
            (ColumnRef(n), n) for n in scan_p.schema.names])
        assert RemoveTrivialProject().apply(identity,
                                            RuleContext()) is scan_p

    def test_keeps_non_identity(self, scan_p):
        project = ProjectNode(scan_p, [(col("p.pid"), "pid")])
        assert RemoveTrivialProject().apply(project, RuleContext()) is None


class TestPruneColumns:
    def test_inserts_projection_over_scan(self, scan_p, scan_k, context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = ProjectNode(join, [(col("p.pid"), "pid")])
        pruned = PruneColumns().run(plan)
        scans_with_project = [
            node for node in pruned.walk()
            if isinstance(node, ProjectNode)
            and node.children and isinstance(node.child, ScanNode)
        ]
        assert scans_with_project  # at least one scan now pruned
        assert _rows(plan, context) == _rows(pruned, context)

    def test_keeps_filter_columns(self, scan_p, context):
        plan = ProjectNode(FilterNode(scan_p, col("p.price") > 20),
                           [(col("p.pid"), "pid")])
        pruned = PruneColumns().run(plan)
        assert _rows(plan, context) == _rows(pruned, context)


class TestFixpoint:
    def test_filter_reaches_scans_through_stack(self, scan_p, scan_k,
                                                context):
        join = SemanticJoinNode(scan_p, scan_k, "p.ptype", "k.label",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(FilterNode(join, col("p.price") > 20),
                          col("k.category") == "clothes")
        ctx = RuleContext()
        rewritten = rewrite_fixpoint(plan, DEFAULT_RULES, ctx)
        assert isinstance(rewritten, SemanticJoinNode)
        assert ctx.applied  # rules fired
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_fixpoint_idempotent(self, scan_p):
        plan = FilterNode(scan_p, col("p.price") > 20)
        once = rewrite_fixpoint(plan, DEFAULT_RULES)
        twice = rewrite_fixpoint(once, DEFAULT_RULES)
        assert once.pretty() == twice.pretty()


@pytest.fixture()
def scan_q(products_table):
    """A second scan of products (qualifier q): every column name is
    then present on both sides of a self-join, so unqualified suffixes
    are ambiguous between the inputs."""
    return ScanNode("products", products_table.schema, qualifier="q")


class TestSplitBySideAmbiguity:
    """Regression: a column resolving in *both* join inputs used to be
    silently pushed to the left side, changing results."""

    def test_ambiguous_column_stays_residual(self, scan_p, scan_q):
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        plan = FilterNode(join, col("price") > 20)  # p.price or q.price?
        assert PushFilterIntoJoin().apply(plan, RuleContext()) is None

    def test_qualified_column_still_pushes(self, scan_p, scan_q, context):
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        plan = FilterNode(join, col("p.price") > 20)
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert not isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_mixed_conjunct_splits_only_unambiguous(self, scan_p, scan_q,
                                                    context):
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        plan = FilterNode(join, (col("p.price") > 2) & (col("brand")
                                                        == "acme"))
        rewritten = PushFilterIntoJoin().apply(plan, RuleContext())
        # the qualified part sank left; the ambiguous part is residual
        assert isinstance(rewritten, FilterNode)
        assert rewritten.predicate.columns() == {"brand"}
        assert isinstance(rewritten.child, JoinNode)
        assert isinstance(rewritten.child.left, FilterNode)

    def test_ambiguous_column_semantic_join(self, scan_p, scan_q):
        join = SemanticJoinNode(scan_p, scan_q, "p.ptype", "q.ptype",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, col("brand") == "acme")
        assert PushFilterThroughSemanticJoin().apply(
            plan, RuleContext()) is None

    def test_qualified_column_semantic_join_pushes(self, scan_p, scan_q):
        join = SemanticJoinNode(scan_p, scan_q, "p.ptype", "q.ptype",
                                "wiki-ft-100", 0.9)
        plan = FilterNode(join, col("q.brand") == "acme")
        rewritten = PushFilterThroughSemanticJoin().apply(
            plan, RuleContext())
        assert isinstance(rewritten, SemanticJoinNode)
        assert isinstance(rewritten.right, FilterNode)
        assert not isinstance(rewritten.left, FilterNode)


class TestAggregateKeySubstitution:
    """Regression: pushed group-key predicates must be substituted back
    to the child's canonical column names, not copied verbatim."""

    def test_suffix_spelling_pushes_substituted(self, scan_p, context):
        # group key spelled "brand"; child's canonical name is
        # "p.brand", and so is the aggregate's output field
        aggregate = AggregateNode(scan_p, ["brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("p.brand") == "acme")
        rewritten = PushFilterThroughAggregate().apply(plan, RuleContext())
        assert isinstance(rewritten, AggregateNode)
        assert isinstance(rewritten.child, FilterNode)
        assert rewritten.child.predicate.columns() == {"p.brand"}
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_substitution_disambiguates_child_columns(self, scan_p,
                                                      scan_q, context):
        # the aggregate's child is a self-join: pushing the predicate's
        # "brand" spelling verbatim would be ambiguous in the child;
        # substitution rewrites it to the key's canonical "p.brand"
        join = JoinNode(scan_p, scan_q, JoinType.INNER,
                        ["p.pid"], ["q.pid"])
        aggregate = AggregateNode(join, ["p.brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, col("brand") == "acme")
        rewritten = PushFilterThroughAggregate().apply(plan, RuleContext())
        assert isinstance(rewritten, AggregateNode)
        assert rewritten.child.predicate.columns() == {"p.brand"}
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_non_key_reference_refused(self, scan_p):
        aggregate = AggregateNode(scan_p, ["brand"],
                                  [AggExpr(AggFunc.COUNT, None, "n")])
        plan = FilterNode(aggregate, (col("p.brand") == "acme")
                          & (col("n") > 1))
        rewritten = PushFilterThroughAggregate().apply(plan, RuleContext())
        # key part sinks, aggregate-result part stays residual
        assert isinstance(rewritten, FilterNode)
        assert rewritten.predicate.columns() == {"n"}
        assert isinstance(rewritten.child, AggregateNode)


class TestNormalizePredicate:
    def test_double_negation(self):
        expr = Not(Not(col("p.price") > 3))
        assert normalize_predicate(expr).same_as(col("p.price") > 3)

    def test_de_morgan_not_or(self):
        expr = Not(Or(col("p.brand") == "acme", col("p.price") > 100))
        normalized = normalize_predicate(expr)
        expected = (col("p.brand") != "acme") & Not(col("p.price") > 100)
        assert normalized.same_as(expected)

    def test_inequalities_not_flipped(self):
        # NOT(a < b) is NOT a >= b under NaN semantics: keep the Not
        normalized = normalize_predicate(Not(col("p.price") < 3))
        assert isinstance(normalized, Not)

    def test_equality_flips(self):
        normalized = normalize_predicate(Not(col("p.brand") == "acme"))
        assert isinstance(normalized, Compare)
        assert normalized.op == "!="

    def test_idempotent(self):
        expr = Not(Or(Not(col("p.brand") == "x"), col("p.price") > 1))
        once = normalize_predicate(expr)
        assert normalize_predicate(once).same_as(once)

    def test_rule_preserves_semantics(self, scan_p, context):
        plan = FilterNode(scan_p, Not(Or(col("p.brand") == "acme",
                                         col("p.price") > 100)))
        rewritten = NormalizePredicate().apply(plan, RuleContext())
        assert rewritten is not None
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_unmasks_conjuncts_for_join_pushdown(self, scan_p, scan_k,
                                                 context):
        # NOT(p-pred OR k-pred) hides two single-side conjuncts; the
        # phased suite normalizes, then sinks each below the join
        join = JoinNode(scan_p, scan_k, JoinType.CROSS)
        plan = FilterNode(join, Not(Or(col("p.brand") == "acme",
                                       col("k.category") == "clothes")))
        rewritten = rewrite_phases(plan, ctx=RuleContext())
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, FilterNode)
        assert isinstance(rewritten.right, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)


class TestBreakupSelections:
    def test_splits_conjunction_into_chain(self, scan_p, context):
        plan = FilterNode(scan_p, (col("p.price") > 2)
                          & (col("p.brand") == "acme"))
        rewritten = BreakupSelections().apply(plan, RuleContext())
        assert isinstance(rewritten, FilterNode)
        assert isinstance(rewritten.child, FilterNode)
        assert isinstance(rewritten.child.child, ScanNode)
        assert _rows(plan, context) == _rows(rewritten, context)

    def test_single_conjunct_untouched(self, scan_p):
        plan = FilterNode(scan_p, col("p.price") > 2)
        assert BreakupSelections().apply(plan, RuleContext()) is None

    def test_not_in_merge_fixpoint(self):
        # MergeFilters and BreakupSelections must never share a
        # fixpoint: the pair ping-pongs forever
        merge_names = {rule.name for rule in DEFAULT_RULES}
        assert "breakup_selections" not in merge_names
        for phase in DEFAULT_PHASES:
            names = {rule.name for rule in phase}
            assert not ({"merge_filters", "breakup_selections"} <= names)

    def test_phases_end_in_filter_chain(self, scan_p, context):
        plan = FilterNode(scan_p, (col("p.price") > 2)
                          & (col("p.brand") == "acme"))
        ctx = RuleContext()
        rewritten = rewrite_phases(plan, ctx=ctx)
        assert ctx.converged
        assert isinstance(rewritten, FilterNode)
        assert isinstance(rewritten.child, FilterNode)
        assert _rows(plan, context) == _rows(rewritten, context)


class TestPartialProjectPushdown:
    def test_unmapped_alias_stays_residual(self, scan_p, context):
        project = ProjectNode(scan_p, [(col("p.price"), "p.price"),
                                       (col("p.brand"), "brand")])
        plan = FilterNode(project, (col("brand") == "acme")
                          & (col("price") > 3))
        rewritten = PushFilterThroughProject().apply(plan, RuleContext())
        # "brand" maps through the projection and sinks; "price" is not
        # a projection alias (only "p.price" is) and stays residual
        assert isinstance(rewritten, FilterNode)
        assert rewritten.predicate.columns() == {"price"}
        assert isinstance(rewritten.child, ProjectNode)
        assert isinstance(rewritten.child.child, FilterNode)
        assert rewritten.child.child.predicate.columns() == {"p.brand"}
        assert _rows(plan, context) == _rows(rewritten, context)


class TestNonConvergence:
    def test_pingpong_pair_flagged(self, scan_p):
        plan = FilterNode(scan_p, (col("p.price") > 2)
                          & (col("p.brand") == "acme"))
        ctx = RuleContext()
        rewrite_fixpoint(plan, [MergeFilters(), BreakupSelections()],
                         ctx, max_passes=6)
        assert ctx.converged is False
        assert ctx.passes == 6

    def test_convergent_suite_not_flagged(self, scan_p):
        plan = FilterNode(scan_p, (col("p.price") > 2)
                          & (col("p.brand") == "acme"))
        ctx = RuleContext()
        rewrite_phases(plan, ctx=ctx)
        assert ctx.converged is True
        assert ctx.passes >= 2

    def test_optimizer_reports_and_counts(self, catalog):
        from repro.optimizer.optimizer import Optimizer, OptimizerConfig

        config = OptimizerConfig(
            rules=[MergeFilters(), BreakupSelections()],
            enable_prune=False, enable_join_order=False,
            enable_dip=False, enable_physical=False,
            compiled_pipelines="off")
        optimizer = Optimizer(catalog, config=config)
        scan = ScanNode("products", catalog.get("products").schema,
                        qualifier="p")
        plan = FilterNode(scan, (col("p.price") > 2)
                          & (col("p.brand") == "acme"))
        optimizer.optimize(plan)
        report = optimizer.last_report
        assert report.rewrite_converged is False
        assert optimizer._nonconvergence.value >= 1
