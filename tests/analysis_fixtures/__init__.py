"""Seeded-violation fixtures for the static-analysis suite.

Each module here contains exactly one deliberate invariant violation
(plus, in ``lock_inversion``, pragma-suppression cases).  They are
parsed — never imported — by the analyzers, against the miniature
declaration models in :mod:`repro.analysis.fixtures`;
``tests/test_static_analysis.py`` asserts each violation is reported
with the right rule id and location.  Do not "fix" these.
"""
