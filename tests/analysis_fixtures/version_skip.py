"""Fixture: a cache mutator that forgets its version bump.

``MiniCatalog`` is declared (``repro.analysis.fixtures._cache_model``)
with ``register`` and ``drop`` as ``_version`` mutators; ``drop``
mutates the table map without bumping, so cached plans keyed on the
old version would survive the drop — rule CK001.
"""


class MiniCatalog:
    def __init__(self):
        self._tables = {}
        self._version = 0

    def register(self, name, table):
        self._tables[name] = table
        self._version += 1

    def drop(self, name):
        # seeded violation: no self._version bump after the mutation
        self._tables.pop(name, None)
