"""Seeded metric-name drift for the MN001 self-test.

``serve`` registers one declared metric and one undeclared one; the
metric-name lint must report exactly the second registration.
"""


class MiniRegistry:
    def counter(self, name, help=""):
        return object()


def serve(registry: MiniRegistry) -> None:
    registry.counter("fixture_requests_total", help="requests served")
    registry.counter("mystery_total", help="never declared")  # MN001 here
