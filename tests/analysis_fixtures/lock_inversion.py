"""Fixture: a lock-hierarchy inversion the checker must catch.

Declared hierarchy (see ``repro.analysis.fixtures._lock_model``):
Registry._lock = level 1, Store._lock = level 2, Counter._lock =
level 3.  ``Counter.record`` holds the level-3 lock while calling into
``Store.read`` (level 2) — an up-hierarchy edge, rule LH001.
"""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def lookup(self, key):
        with self._lock:
            return self.entries.get(key)


class Store:
    def __init__(self, registry):
        self._lock = threading.Lock()
        self.registry = registry
        self.rows = {}

    def read(self, key):
        with self._lock:
            return self.rows.get(key)


class Counter:
    def __init__(self, store):
        self._lock = threading.Lock()
        self.store = store
        self.count = 0

    def record(self, key):
        with self._lock:
            self.count += 1
            # seeded violation: level-3 leaf held across a level-2
            # acquisition inside Store.read -> LH001 on the next line
            return self.store.read(key)

    def record_suppressed(self, key):
        with self._lock:
            self.count += 1
            return self.store.read(key)  # analysis: ignore[LH001] fixture: demonstrates a justified suppression

    def record_bare_pragma(self, key):
        with self._lock:
            self.count += 1
            return self.store.read(key)  # analysis: ignore[LH001]
