"""Fixture: a dispatcher with a missing arm and a silent default.

``render`` is registered (``repro.analysis.fixtures._dispatch_model``)
as a rejecting dispatcher over the ``Node`` family, but it has no arm
for ``GammaNode`` (rule DX001) and its tail returns instead of raising
(rule DX002).
"""


class Node:
    pass


class AlphaNode(Node):
    pass


class BetaNode(Node):
    pass


class GammaNode(Node):
    pass


def render(node):
    if isinstance(node, AlphaNode):
        return "alpha"
    if isinstance(node, BetaNode):
        return "beta"
    return "?"  # seeded violation: GammaNode falls through silently
