"""Fixture: an ingest mutator that forgets its data_version bump.

``MiniIngestCatalog`` is declared
(``repro.analysis.fixtures._cache_model``) with ``append_rows`` and
``replace_rows`` as ``_data_versions`` mutators — the ingest
subsystem's per-table invalidation dimension.  ``replace_rows``
mutates the table map without bumping, so result-cache entries keyed
on the old ``(table, data_version)`` pair would keep serving the
replaced rows — rule CK001.
"""


class MiniIngestCatalog:
    def __init__(self):
        self._tables = {}
        self._data_versions = {}

    def append_rows(self, name, delta):
        self._tables[name] = self._tables[name] + delta
        versions = dict(self._data_versions)
        versions[name] = versions.get(name, 0) + 1
        self._data_versions = versions

    def replace_rows(self, name, table):
        # seeded violation: no self._data_versions bump after the
        # row mutation
        self._tables[name] = table
