"""Tests for table/column statistics and selectivity estimates."""

import numpy as np
import pytest

from repro.storage.statistics import (
    compute_column_stats,
    compute_table_stats,
)
from repro.storage.table import Table
from repro.storage.types import DataType


class TestColumnStats:
    def test_numeric_basics(self):
        values = np.arange(100, dtype=np.int64)
        stats = compute_column_stats("x", DataType.INT64, values)
        assert stats.count == 100
        assert stats.distinct == 100
        assert stats.min_value == 0.0
        assert stats.max_value == 99.0

    def test_string_ndv(self):
        values = np.asarray(["a", "b", "a", None], dtype=object)
        stats = compute_column_stats("s", DataType.STRING, values)
        assert stats.distinct == 2
        assert stats.null_count == 1

    def test_float_nan_counts_as_null(self):
        values = np.asarray([1.0, np.nan, 2.0])
        stats = compute_column_stats("f", DataType.FLOAT64, values)
        assert stats.null_count == 1

    def test_selectivity_eq_uniform(self):
        values = np.asarray([1, 2, 3, 4], dtype=np.int64)
        stats = compute_column_stats("x", DataType.INT64, values)
        assert stats.selectivity_eq() == pytest.approx(0.25)

    def test_selectivity_range_uniform(self):
        values = np.arange(1000, dtype=np.int64)
        stats = compute_column_stats("x", DataType.INT64, values)
        # top 10% of the domain
        fraction = stats.selectivity_range(900.0, None)
        assert fraction == pytest.approx(0.1, abs=0.02)

    def test_selectivity_range_skewed_histogram(self):
        # 90% of mass at small values: histogram should see the skew
        values = np.concatenate([np.zeros(900), np.linspace(1, 100, 100)])
        stats = compute_column_stats("x", DataType.FLOAT64, values)
        fraction = stats.selectivity_range(50.0, None)
        assert fraction < 0.2

    def test_selectivity_range_outside_domain(self):
        values = np.arange(10, dtype=np.int64)
        stats = compute_column_stats("x", DataType.INT64, values)
        assert stats.selectivity_range(100.0, None) == pytest.approx(
            0.0, abs=0.01)

    def test_selectivity_constant_column(self):
        values = np.full(10, 5, dtype=np.int64)
        stats = compute_column_stats("x", DataType.INT64, values)
        assert stats.selectivity_range(None, 10.0) == 1.0
        assert stats.selectivity_range(6.0, None) == 0.0

    def test_empty_column(self):
        stats = compute_column_stats("x", DataType.INT64,
                                     np.empty(0, dtype=np.int64))
        assert stats.selectivity_eq() == 0.0
        assert stats.selectivity_range(0, 1) == 0.0


class TestTableStats:
    def test_compute_all_columns(self, products_table):
        stats = compute_table_stats(products_table)
        assert stats.row_count == products_table.num_rows
        assert set(stats.columns) == set(products_table.schema.names)

    def test_column_suffix_lookup(self, products_table):
        stats = compute_table_stats(products_table.qualified("p"))
        assert stats.column("price") is not None
        assert stats.column("p.price") is not None
        assert stats.column("ghost") is None
