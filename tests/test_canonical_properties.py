"""Property-based tests of SQL canonicalization equivalence classes.

The plan and result caches both trust :mod:`repro.engine.sql.canonical`
to define statement identity, so its equivalence classes are
load-bearing: two spellings in one class **must** answer identically
(or the result cache serves the wrong rows), and anything that can
change an answer **must** leave the class (digest/parameters) or be
carried in the rest of the key (catalog version, generations).

Randomized here (hypothesis, derandomized for CI stability):

- *Spelling noise* — keyword casing, inter-token whitespace — must not
  change digest, parameters, or results; byte-different spellings of
  one statement must share a single plan-cache entry and hit the
  result cache.
- *Literal values* — any generated literal set parameterizes into the
  same family digest; different literals produce different parameter
  tuples (distinct result keys).
- *Select-list order* — a different column order is a different
  statement (different digest): canonicalization must never
  over-merge.
- *Catalog mutation* — after any register/replace/drop+register/stats
  refresh, a cached result is never served: the catalog version in
  the key changed, so equal digests now carry different keys.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.session import Session
from repro.engine.sql.canonical import canonicalize
from repro.engine.sql.parser import parse_sql
from repro.storage.table import Table

SETTINGS = settings(max_examples=30, deadline=None, derandomize=True,
                    suppress_health_check=[HealthCheck.function_scoped_fixture,
                                           HealthCheck.too_slow])

#: Keywords the spelling strategy may re-case.
_KEYWORDS = ("select", "from", "where", "and", "or", "order", "by",
             "limit", "asc", "desc")

_COLUMNS = ("a", "b", "price")

_ws = st.sampled_from([" ", "  ", "\t", "\n ", "   "])
_case = st.sampled_from(["lower", "upper", "title"])


@st.composite
def query_specs(draw):
    """An abstract query over t(a int, b str, price float)."""
    columns = draw(st.permutations(_COLUMNS))
    n_columns = draw(st.integers(1, len(_COLUMNS)))
    int_literal = draw(st.integers(-5, 15))
    # halves only: plain decimal spellings the SQL lexer accepts
    # (no scientific-notation reprs)
    float_literal = draw(st.integers(0, 200).map(lambda i: i / 2))
    comparison = draw(st.sampled_from([">", "<", ">=", "<=", "=", "!="]))
    use_where = draw(st.booleans())
    use_float_predicate = draw(st.booleans())
    order_column = draw(st.sampled_from(_COLUMNS))
    ascending = draw(st.booleans())
    use_order = draw(st.booleans())
    limit = draw(st.one_of(st.none(), st.integers(1, 10)))
    return {
        "columns": list(columns[:n_columns]),
        "where_column": ("price" if use_float_predicate else "a")
        if use_where else None,
        "comparison": comparison,
        "literal": (float_literal if use_float_predicate else int_literal)
        if use_where else None,
        "order": (f"{order_column} {'ASC' if ascending else 'DESC'}"
                  if use_order else None),
        "limit": limit,
    }


def bump_literals(spec) -> dict:
    """The same statement shape with every literal value changed."""
    bumped = dict(spec)
    if bumped["literal"] is not None:
        bumped["literal"] = bumped["literal"] + (
            0.125 if isinstance(bumped["literal"], float) else 23)
    if bumped["limit"] is not None:
        bumped["limit"] += 7
    return bumped


def render(spec) -> str:
    """Deterministic reference spelling of a query spec."""
    parts = ["select", ", ".join(spec["columns"]), "from", "t"]
    if spec["where_column"] is not None:
        parts += ["where", f"{spec['where_column']} {spec['comparison']} "
                           f"{spec['literal']!r}"]
    if spec["order"]:
        parts += ["order", "by", spec["order"]]
    if spec["limit"] is not None:
        parts += ["limit", str(spec["limit"])]
    return " ".join(parts)


@st.composite
def spellings(draw, spec):
    """A random spelling of ``spec``: noisy case and whitespace."""
    text = render(spec)
    tokens = text.split(" ")
    noisy = []
    for token in tokens:
        if token.rstrip(",") in _KEYWORDS:
            style = draw(_case)
            token = getattr(token, style)()
        noisy.append(token)
    separators = [draw(_ws) for _ in range(len(noisy) - 1)]
    out = noisy[0]
    for separator, token in zip(separators, noisy[1:]):
        out += separator + token
    return out


def make_session(model) -> Session:
    session = Session(load_default_model=False)
    session.register_model(model, default=True)
    session.register_table("t", Table.from_dict({
        "a": list(range(12)),
        "b": [f"w{i % 5}" for i in range(12)],
        "price": [float(i) * 3.5 for i in range(12)],
    }))
    return session


def rows(table: Table) -> list[tuple]:
    return sorted((tuple(row.items()) for row in table.to_rows()),
                  key=repr)


@pytest.fixture(scope="module")
def session(model):
    """One warmed session for every example: statistics settle once, so
    examples exercise the caches, not the lazy-stats version bump."""
    session = make_session(model)
    session.sql("SELECT a FROM t")
    session.sql("SELECT a FROM t")
    return session


class TestSpellingEquivalence:
    @SETTINGS
    @given(data=st.data())
    def test_spellings_share_digest_and_parameters(self, data):
        spec = data.draw(query_specs())
        one = data.draw(spellings(spec))
        two = data.draw(spellings(spec))
        a = canonicalize(parse_sql(one))
        b = canonicalize(parse_sql(two))
        assert a.digest == b.digest
        assert a.parameters == b.parameters
        assert a.template == b.template

    @SETTINGS
    @given(data=st.data())
    def test_equal_digests_imply_equal_results(self, data, session):
        """The property the result cache stakes correctness on."""
        spec = data.draw(query_specs())
        one = data.draw(spellings(spec))
        two = data.draw(spellings(spec))
        first = rows(session.sql(one))
        hit_expected = session.last_profile.result_cache_hit
        second = rows(session.sql(two))
        assert first == second
        # the second spelling canonicalizes onto the first's entry:
        # whatever path the first took, the repeat must be a hit
        if hit_expected is not None:
            assert session.last_profile.result_cache_hit is True

    @SETTINGS
    @given(data=st.data())
    def test_different_literals_same_family_different_keys(self, data):
        spec = data.draw(query_specs())
        if spec["limit"] is None and spec["literal"] is None:
            return                      # no literal to vary
        a = canonicalize(parse_sql(render(spec)))
        b = canonicalize(parse_sql(render(bump_literals(spec))))
        assert a.digest == b.digest     # one family
        assert a.parameters != b.parameters

    @SETTINGS
    @given(data=st.data())
    def test_column_order_is_a_different_statement(self, data):
        spec = data.draw(query_specs())
        if len(spec["columns"]) < 2:
            return
        reordered = dict(spec)
        reordered["columns"] = list(reversed(spec["columns"]))
        a = canonicalize(parse_sql(render(spec)))
        b = canonicalize(parse_sql(render(reordered)))
        assert a.digest != b.digest


class TestCatalogMutationInvalidates:
    """Any catalog mutation ⇒ stale entries never serve again."""

    MUTATIONS = ("replace", "drop_reregister", "refresh_stats",
                 "register_other")

    @SETTINGS
    @given(data=st.data())
    def test_mutation_always_yields_fresh_results(self, data, model):
        spec = data.draw(query_specs())
        mutation = data.draw(st.sampled_from(self.MUTATIONS))
        session = make_session(model)
        text = render(spec)
        session.sql(text)
        version_before = session.catalog.version
        reference = rows(session.sql(text))

        replacement = Table.from_dict({
            "a": [100 + i for i in range(3)],
            "b": ["zzz"] * 3,
            "price": [999.0, 998.0, 997.0],
        })
        if mutation == "replace":
            session.register_table("t", replacement, replace=True)
        elif mutation == "drop_reregister":
            session.catalog.drop("t")
            session.register_table("t", replacement)
        elif mutation == "refresh_stats":
            session.catalog.refresh_stats("t")
        else:
            session.register_table("other", replacement)
        assert session.catalog.version > version_before

        result = session.sql(text)
        # never served from cache across the mutation
        assert session.last_profile.result_cache_hit is False
        if mutation in ("replace", "drop_reregister"):
            expected = make_fresh_reference(model, replacement, text)
            assert rows(result) == expected
        else:
            # contents unchanged: same answer, freshly computed
            assert rows(result) == reference


def make_fresh_reference(model, table: Table, text: str) -> list[tuple]:
    """Ground truth from a brand-new session over ``table``."""
    fresh = Session(load_default_model=False)
    fresh.register_model(model, default=True)
    fresh.register_table("t", table)
    return rows(fresh.sql(text))
