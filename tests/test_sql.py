"""Tests for the SQL dialect: lexer, parser, binder, end-to-end."""

import pytest

from repro.engine.sql import ast
from repro.engine.sql.binder import Binder
from repro.engine.sql.lexer import Lexer, TokenType
from repro.engine.sql.parser import parse_sql
from repro.errors import BindError, ParseError
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    LimitNode,
    ProjectNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SortNode,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = Lexer("SELECT sElEcT select").tokens()
        assert all(t.is_keyword("select") for t in tokens[:3])

    def test_string_literal(self):
        tokens = Lexer("'hello world'").tokens()
        assert tokens[0].type == TokenType.STRING
        assert tokens[0].text == "hello world"

    def test_string_escape(self):
        tokens = Lexer("'it''s'").tokens()
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            Lexer("'oops").tokens()

    def test_numbers(self):
        tokens = Lexer("42 3.14").tokens()
        assert tokens[0].text == "42"
        assert tokens[1].text == "3.14"

    def test_operators(self):
        text = "<= >= != <> = < > ~"
        tokens = Lexer(text).tokens()
        assert [t.text for t in tokens[:-1]] == \
            ["<=", ">=", "!=", "!=", "=", "<", ">", "~"]

    def test_comments_skipped(self):
        tokens = Lexer("select -- a comment\n x").tokens()
        assert tokens[1].text == "x"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            Lexer("select @").tokens()

    def test_position_recorded(self):
        tokens = Lexer("select x").tokens()
        assert tokens[1].position == 7


class TestParser:
    def test_select_star(self):
        statement = parse_sql("SELECT * FROM t")
        assert statement.items == []
        assert statement.base.name == "t"

    def test_aliases(self):
        statement = parse_sql("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.base.alias == "u"

    def test_dotted_table_name(self):
        statement = parse_sql("SELECT * FROM kb.category AS k")
        assert statement.base.name == "kb.category"
        assert statement.base.alias == "k"

    def test_where_precedence(self):
        statement = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, ast.BoolOp)
        assert statement.where.op == "or"

    def test_between(self):
        statement = parse_sql("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(statement.where, ast.BoolOp)
        assert statement.where.op == "and"

    def test_in_list(self):
        statement = parse_sql("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(statement.where, ast.InListExpr)
        assert len(statement.where.values) == 3

    def test_date_literal(self):
        statement = parse_sql("SELECT * FROM t WHERE d > DATE '2022-06-01'")
        assert isinstance(statement.where.right, ast.DateLit)

    def test_semantic_predicate(self):
        statement = parse_sql(
            "SELECT * FROM t WHERE x ~ 'clothes' "
            "USING MODEL 'm' THRESHOLD 0.8")
        predicate = statement.where
        assert isinstance(predicate, ast.SemanticPredicate)
        assert predicate.probe == "clothes"
        assert predicate.model == "m"
        assert predicate.threshold == 0.8

    def test_semantic_predicate_defaults(self):
        statement = parse_sql("SELECT * FROM t WHERE x ~ 'y'")
        assert statement.where.model is None
        assert statement.where.threshold == 0.9

    def test_join(self):
        statement = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.y AND a.z = b.w")
        join = statement.joins[0]
        assert join.kind == "inner"
        assert len(join.left_keys) == 2

    def test_semantic_join(self):
        statement = parse_sql(
            "SELECT * FROM a SEMANTIC JOIN b ON a.x ~ b.y "
            "USING MODEL 'm' THRESHOLD 0.85")
        join = statement.joins[0]
        assert join.kind == "semantic"
        assert join.threshold == 0.85

    def test_semantic_group_by(self):
        statement = parse_sql(
            "SELECT cluster_rep, COUNT(*) AS n FROM t "
            "SEMANTIC GROUP BY msg THRESHOLD 0.75")
        assert statement.semantic_group_by.column.dotted == "msg"
        assert statement.semantic_group_by.threshold == 0.75

    def test_group_order_limit(self):
        statement = parse_sql(
            "SELECT brand, COUNT(*) AS n FROM t GROUP BY brand "
            "ORDER BY n DESC LIMIT 10")
        assert statement.group_by[0].dotted == "brand"
        assert statement.order_by[0].ascending is False
        assert statement.limit == 10

    def test_aggregates(self):
        statement = parse_sql(
            "SELECT COUNT(*), COUNT(DISTINCT x), SUM(y), AVG(z) FROM t")
        names = [item.expr.name for item in statement.items]
        assert names == ["count", "count", "sum", "avg"]
        assert statement.items[0].expr.star
        assert statement.items[1].expr.distinct

    def test_arithmetic(self):
        statement = parse_sql("SELECT price * 2 + 1 AS p FROM t")
        assert isinstance(statement.items[0].expr, ast.BinaryArith)

    def test_negative_number(self):
        statement = parse_sql("SELECT * FROM t WHERE x > -5")
        assert statement.where.right.value == -5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t garbage extra, tokens")

    def test_missing_from_keyword(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT FROM t")

    def test_cross_join(self):
        statement = parse_sql("SELECT * FROM a CROSS JOIN b")
        assert statement.joins[0].kind == "cross"


class TestBinder:
    def test_simple_plan_shape(self, catalog, registry):
        binder = Binder(catalog, "wiki-ft-100")
        plan = binder.bind(parse_sql(
            "SELECT p.pid FROM products AS p WHERE p.price > 10"))
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, FilterNode)

    def test_unknown_table(self, catalog):
        binder = Binder(catalog, "m")
        with pytest.raises(BindError, match="unknown table"):
            binder.bind(parse_sql("SELECT * FROM ghost"))

    def test_unknown_column(self, catalog):
        binder = Binder(catalog, "m")
        with pytest.raises(BindError):
            binder.bind(parse_sql(
                "SELECT * FROM products AS p WHERE p.ghost > 1"))

    def test_semantic_filter_bound(self, catalog):
        binder = Binder(catalog, "default-model")
        plan = binder.bind(parse_sql(
            "SELECT * FROM products AS p WHERE p.ptype ~ 'clothes'"))
        assert isinstance(plan, SemanticFilterNode)
        assert plan.model_name == "default-model"

    def test_semantic_join_bound(self, catalog):
        binder = Binder(catalog, "m")
        plan = binder.bind(parse_sql(
            "SELECT * FROM products AS p SEMANTIC JOIN kb AS k "
            "ON p.ptype ~ k.label THRESHOLD 0.9"))
        assert isinstance(plan, SemanticJoinNode)

    def test_join_keys_oriented(self, catalog):
        binder = Binder(catalog, "m")
        # keys written right-to-left on purpose
        plan = binder.bind(parse_sql(
            "SELECT * FROM products AS p JOIN kb AS k "
            "ON k.label = p.ptype"))
        assert plan.left_keys == ["p.ptype"]
        assert plan.right_keys == ["k.label"]

    def test_aggregate_bound(self, catalog):
        binder = Binder(catalog, "m")
        plan = binder.bind(parse_sql(
            "SELECT p.brand, COUNT(*) AS n FROM products AS p "
            "GROUP BY p.brand"))
        assert isinstance(plan, AggregateNode)

    def test_non_key_column_rejected(self, catalog):
        binder = Binder(catalog, "m")
        with pytest.raises(BindError, match="GROUP BY"):
            binder.bind(parse_sql(
                "SELECT p.price, COUNT(*) AS n FROM products AS p "
                "GROUP BY p.brand"))

    def test_semantic_group_by_bound(self, catalog):
        binder = Binder(catalog, "m")
        plan = binder.bind(parse_sql(
            "SELECT cluster_rep, COUNT(*) AS n FROM products "
            "SEMANTIC GROUP BY ptype THRESHOLD 0.8"))
        assert isinstance(plan, AggregateNode)
        assert isinstance(plan.child, SemanticGroupByNode)

    def test_order_limit_bound(self, catalog):
        binder = Binder(catalog, "m")
        plan = binder.bind(parse_sql(
            "SELECT p.pid FROM products AS p ORDER BY p.price DESC LIMIT 2"))
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, LimitNode)
        assert isinstance(plan.child.child, SortNode)

    def test_or_with_semantic_rejected(self, catalog):
        binder = Binder(catalog, "m")
        with pytest.raises(BindError):
            binder.bind(parse_sql(
                "SELECT * FROM products AS p "
                "WHERE p.price > 1 OR p.ptype ~ 'clothes'"))

    def test_select_star_no_project(self, catalog):
        binder = Binder(catalog, "m")
        plan = binder.bind(parse_sql("SELECT * FROM products"))
        assert not isinstance(plan, ProjectNode)
