"""Tests for the expression tree and its vectorized evaluation."""

import datetime

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arith,
    ColumnRef,
    Compare,
    Func,
    InList,
    Literal,
    Not,
    Or,
    col,
    combine_conjuncts,
    lit,
    split_conjuncts,
)
from repro.relational.logical import infer_dtype
from repro.storage.table import Table
from repro.storage.types import DataType, date_to_int


@pytest.fixture()
def batch():
    return Table.from_dict({
        "x": [1, 2, 3, 4],
        "y": [10.0, 20.0, 30.0, 40.0],
        "s": ["dog", "cat", "dog", "fox"],
        "d": [date_to_int("2022-01-01"), date_to_int("2022-06-01"),
              date_to_int("2023-01-01"), date_to_int("2023-06-01")],
    })


class TestEvaluation:
    def test_column_ref(self, batch):
        assert ColumnRef("x").evaluate(batch).tolist() == [1, 2, 3, 4]

    def test_literal_broadcast(self, batch):
        assert Literal(5).evaluate(batch).tolist() == [5, 5, 5, 5]

    def test_string_literal_broadcast(self, batch):
        values = Literal("z").evaluate(batch)
        assert values.dtype == object
        assert values.tolist() == ["z"] * 4

    def test_date_literal_coerced(self):
        literal = Literal(datetime.date(2022, 1, 1))
        assert literal.value == date_to_int("2022-01-01")

    def test_comparisons(self, batch):
        assert (col("x") > 2).evaluate(batch).tolist() == \
            [False, False, True, True]
        assert (col("x") <= 2).evaluate(batch).tolist() == \
            [True, True, False, False]
        assert (col("s") == "dog").evaluate(batch).tolist() == \
            [True, False, True, False]
        assert (col("s") != "dog").evaluate(batch).tolist() == \
            [False, True, False, True]

    def test_boolean_ops(self, batch):
        both = (col("x") > 1) & (col("x") < 4)
        assert both.evaluate(batch).tolist() == [False, True, True, False]
        either = (col("x") == 1) | (col("x") == 4)
        assert either.evaluate(batch).tolist() == [True, False, False, True]
        negated = ~(col("x") > 2)
        assert negated.evaluate(batch).tolist() == [True, True, False, False]

    def test_arithmetic(self, batch):
        assert (col("x") + 1).evaluate(batch).tolist() == [2, 3, 4, 5]
        assert (col("x") * 2).evaluate(batch).tolist() == [2, 4, 6, 8]
        assert (col("y") / 10).evaluate(batch).tolist() == \
            [1.0, 2.0, 3.0, 4.0]
        assert (col("y") - col("x")).evaluate(batch).tolist() == \
            [9.0, 18.0, 27.0, 36.0]

    def test_in_list(self, batch):
        expr = col("s").isin(["dog", "fox"])
        assert expr.evaluate(batch).tolist() == [True, False, True, True]

    def test_date_comparison(self, batch):
        expr = col("d") > date_to_int("2022-12-01")
        assert expr.evaluate(batch).tolist() == [False, False, True, True]

    def test_functions(self, batch):
        assert Func("upper", (col("s"),)).evaluate(batch)[0] == "DOG"
        assert Func("length", (col("s"),)).evaluate(batch).tolist() == \
            [3, 3, 3, 3]
        assert Func("year", (col("d"),)).evaluate(batch).tolist() == \
            [2022, 2022, 2023, 2023]
        assert Func("abs", (col("x") - 3,)).evaluate(batch).tolist() == \
            [2, 1, 0, 1]

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            Func("bogus", (col("x"),))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Compare("~=", col("x"), lit(1))
        with pytest.raises(ExpressionError):
            Arith("%", col("x"), lit(2))


class TestStructure:
    def test_columns_collects_references(self):
        expr = (col("a") > 1) & (Func("lower", (col("b"),)) == "x")
        assert expr.columns() == {"a", "b"}

    def test_split_conjuncts(self):
        expr = And(And(col("a") > 1, col("b") > 2), col("c") > 3)
        parts = split_conjuncts(expr)
        assert len(parts) == 3

    def test_split_single(self):
        parts = split_conjuncts(col("a") > 1)
        assert len(parts) == 1

    def test_combine_round_trip(self, batch):
        parts = [col("x") > 1, col("x") < 4]
        combined = combine_conjuncts(parts)
        assert combined.evaluate(batch).tolist() == [False, True, True,
                                                     False]

    def test_combine_empty_raises(self):
        with pytest.raises(ExpressionError):
            combine_conjuncts([])

    def test_same_as(self):
        assert (col("a") > 1).same_as(col("a") > 1)
        assert not (col("a") > 1).same_as(col("a") > 2)

    def test_repr_readable(self):
        assert "price" in repr(col("price") > 20)


class TestDtypeInference:
    def test_infer(self, batch):
        schema = batch.schema
        assert infer_dtype(col("x"), schema) == DataType.INT64
        assert infer_dtype(col("y"), schema) == DataType.FLOAT64
        assert infer_dtype(col("x") > 1, schema) == DataType.BOOL
        assert infer_dtype(col("x") + col("x"), schema) == DataType.INT64
        assert infer_dtype(col("x") + col("y"), schema) == DataType.FLOAT64
        assert infer_dtype(col("x") / lit(2), schema) == DataType.FLOAT64
        assert infer_dtype(Func("lower", (col("s"),)), schema) == \
            DataType.STRING
        assert infer_dtype(Func("year", (col("d"),)), schema) == \
            DataType.INT64

    def test_agg_result_dtypes(self):
        assert AggExpr(AggFunc.COUNT, None, "n").result_dtype(None) == \
            DataType.INT64
        assert AggExpr(AggFunc.AVG, col("x"), "a").result_dtype(
            DataType.INT64) == DataType.FLOAT64
        assert AggExpr(AggFunc.SUM, col("x"), "s").result_dtype(
            DataType.INT64) == DataType.INT64
        with pytest.raises(ExpressionError):
            AggExpr(AggFunc.SUM, None, "s").result_dtype(None)
