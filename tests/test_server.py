"""Serving-layer tests: shared state, scheduler, and real thread races.

The race tests (marked ``concurrency``) drive genuinely concurrent
threads through the shared arenas, index cache, plan cache, and
scheduler, asserting the invariants the serving PR promises:

- concurrent misses on one model create ONE arena and embed each
  distinct string once (no lost updates, no duplicate embeds);
- concurrent misses on one index key build ONE index (single-flight);
- arena growth is publish-safe: readers gathering during growth see
  exact, fully-written vectors, never torn rows;
- a duplicate-statement storm is answered from one plan-cache entry
  with identical results;
- registering tables while queries run never corrupts results — every
  query sees a consistent before-or-after table.

CI runs them in a dedicated deterministic lane:
``pytest -m concurrency -p no:randomly -p no:cacheprovider``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import AdmissionError, ServerError
from repro.semantic import index_cache as index_cache_module
from repro.semantic.cache import EmbeddingCache
from repro.semantic.index_cache import IndexCache
from repro.server import EngineServer, Scheduler, SchedulerConfig
from repro.server.server import plan_models
from repro.storage.table import Table
from repro.utils.parallel import WorkerBudget

N_THREADS = 8


def run_threads(n, target):
    """Run ``target(index)`` on ``n`` threads; re-raise any failure."""
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture()
def server(model):
    with EngineServer(load_default_model=False, parallelism=4) as server:
        server.register_model(model, default=True)
        server.register_table("t", Table.from_dict({
            "a": list(range(40)),
            "b": [f"item{i % 5}" for i in range(40)],
        }))
        yield server


# ---------------------------------------------------------------------------
# Shared-state basics (no races)
# ---------------------------------------------------------------------------
class TestSharedState:
    def test_client_sessions_share_catalog_and_caches(self, server):
        one, two = server.session("a"), server.session("b")
        assert one.catalog is two.catalog
        assert one.context.embedding_cache is two.context.embedding_cache
        assert one.context.index_cache is two.context.index_cache

    def test_client_session_is_cheap(self, server):
        # no model load: the registry is shared, not rebuilt
        before = len(server.state.models)
        client = server.session()
        assert len(client.models) == before

    def test_register_through_client_visible_to_all(self, server):
        one, two = server.session(), server.session()
        one.register_table("u", Table.from_dict({"x": [1, 2]}))
        assert "u" in two.catalog
        assert two.sql("SELECT x FROM u ORDER BY x").num_rows == 2

    def test_server_sql_convenience(self, server):
        result = server.sql("SELECT a FROM t WHERE a < 3 ORDER BY a")
        assert result.column("a").tolist() == [0, 1, 2]

    def test_closed_server_refuses(self, model):
        server = EngineServer(load_default_model=False)
        server.register_model(model, default=True)
        server.close()
        with pytest.raises(ServerError):
            server.session()

    def test_metrics_snapshot_shape(self, server):
        server.sql("SELECT a FROM t WHERE a < 3 ORDER BY a")
        metrics = server.metrics()
        assert {"plan_cache", "scheduler", "embedding_arenas",
                "vector_index_cache", "catalog_version"} <= metrics.keys()
        assert metrics["scheduler"]["admitted"] >= 1

    def test_profile_carries_serving_fields(self, server):
        client = server.session("tenant-x")
        client.sql("SELECT a FROM t WHERE a < 3 ORDER BY a")
        profile = client.last_profile
        assert profile.lane in ("interactive", "heavy")
        assert profile.tenant == "tenant-x"
        assert profile.plan_cache_hit in (True, False)
        assert profile.queue_wait_seconds >= 0.0

    def test_plan_models_walks_semantic_nodes(self, server):
        client = server.session()
        plan = client.sql_plan("SELECT * FROM t WHERE b ~ 'shoes'")
        assert plan_models(plan) == {client.default_model_name}

    def test_late_default_model_reaches_existing_sessions(self, model):
        """register_model(default=True) after sessions exist must still
        change what unqualified semantic operators bind to."""
        with EngineServer(load_default_model=False) as server:
            client = server.session()        # created BEFORE the model
            server.register_table("p", Table.from_dict({
                "name": ["shoes", "car"]}))
            server.register_model(model, default=True)
            assert client.default_model_name == model.name
            result = server.sql(
                "SELECT name FROM p WHERE name ~ 'shoes' "
                "THRESHOLD 0.99 ORDER BY name")
            assert result.column("name").tolist() == ["shoes"]

    def test_session_local_default_model_override(self, server, model):
        client = server.session()
        client.default_model_name = "my-override"
        assert client.default_model_name == "my-override"
        # other sessions keep tracking the shared default
        assert server.session().default_model_name == model.name


# ---------------------------------------------------------------------------
# Scheduler semantics (driven directly, no engine)
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_lane_classification(self):
        with Scheduler(SchedulerConfig(workers=1)) as scheduler:
            assert scheduler.classify(10.0) == "interactive"
            threshold = scheduler.config.interactive_cost_threshold
            assert scheduler.classify(threshold * 2) == "heavy"

    def test_admission_error_when_queue_full(self):
        release = threading.Event()
        started = threading.Event()

        def blocker(ticket, workers):
            started.set()
            release.wait(timeout=10)

        config = SchedulerConfig(workers=1, max_queue_depth=1)
        scheduler = Scheduler(config)
        try:
            scheduler.submit(blocker, estimated_cost=1.0)
            assert started.wait(timeout=5)
            scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            with pytest.raises(AdmissionError):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            assert scheduler.stats()["rejected"] == 1
        finally:
            release.set()
            scheduler.close()

    def test_heavy_lane_not_starved(self):
        done: list[str] = []
        gate = threading.Event()

        def job(name):
            def run(ticket, workers):
                gate.wait(timeout=10)
                done.append(name)
            return run

        config = SchedulerConfig(workers=1, heavy_pick_every=4)
        scheduler = Scheduler(config)
        try:
            heavy_cost = config.interactive_cost_threshold * 10
            tickets = [scheduler.submit(job(f"i{i}"), estimated_cost=1.0)
                       for i in range(6)]
            heavy = scheduler.submit(job("heavy"),
                                     estimated_cost=heavy_cost)
            assert heavy.lane == "heavy"
            gate.set()
            heavy.result(timeout=10)
            for ticket in tickets:
                ticket.result(timeout=10)
            # heavy overtook at least the tail of the interactive queue
            assert done.index("heavy") < len(done) - 1
        finally:
            scheduler.close()

    def test_failure_propagates_and_is_counted(self):
        def boom(ticket, workers):
            raise ValueError("deliberate")

        with Scheduler(SchedulerConfig(workers=1)) as scheduler:
            ticket = scheduler.submit(boom, estimated_cost=1.0,
                                      tenant="faulty")
            with pytest.raises(ValueError, match="deliberate"):
                ticket.result(timeout=10)
            scheduler.drain(timeout=5)
            assert scheduler.stats()["tenants"]["faulty"]["failures"] == 1

    def test_ticket_telemetry(self):
        with Scheduler(SchedulerConfig(workers=1)) as scheduler:
            ticket = scheduler.submit(lambda t, w: "ok", estimated_cost=1.0)
            assert ticket.result(timeout=10) == "ok"
            assert ticket.queue_wait_seconds >= 0.0
            assert ticket.run_seconds >= 0.0
            assert ticket.kernel_workers >= 1


class TestLockPrimitives:
    def test_stripes_for_dedupes_colliding_keys(self):
        from repro.utils.locks import StripedRWLock

        locks = StripedRWLock(stripes=1)   # force every key to collide
        stripes = locks.stripes_for(["model-a", "model-b", "model-c"])
        # the non-reentrant stripe must be acquired once, never twice
        assert len(stripes) == 1
        with stripes[0].read():
            pass

    def test_stripes_for_bank_order_is_stable(self):
        from repro.utils.locks import StripedRWLock

        locks = StripedRWLock(stripes=8)
        keys = [f"model-{i}" for i in range(6)]
        forward = locks.stripes_for(keys)
        backward = locks.stripes_for(list(reversed(keys)))
        assert [id(s) for s in forward] == [id(s) for s in backward]

    def test_clear_rebinds_fresh_arena_buffer(self, model):
        """Post-clear embeds must never rewrite a buffer a pre-clear
        snapshot still aliases (publish-safety across clear())."""
        cache = EmbeddingCache(model)
        cache.row_ids(["alpha", "beta"])
        snapshot = cache.arena
        frozen = snapshot.copy()
        buffer_before = cache._arena
        cache.clear()
        assert cache._arena is not buffer_before
        cache.row_ids(["gamma", "delta"])   # re-interns from row 0
        assert np.array_equal(snapshot, frozen)


class TestWorkerBudget:
    def test_shares_divide_by_active_queries(self):
        budget = WorkerBudget(8)
        assert budget.acquire() == 8
        assert budget.acquire() == 4
        assert budget.acquire() == 2
        for _ in range(3):
            budget.release()
        assert budget.active == 0

    def test_share_never_below_one(self):
        budget = WorkerBudget(2)
        shares = [budget.acquire() for _ in range(5)]
        assert min(shares) == 1

    def test_release_underflow_raises(self):
        with pytest.raises(RuntimeError):
            WorkerBudget(2).release()


# ---------------------------------------------------------------------------
# Races (the acceptance-criteria stress tests)
# ---------------------------------------------------------------------------
@pytest.mark.concurrency
class TestRaces:
    def test_concurrent_misses_one_model_one_arena(self, server):
        """N clients embedding through one model must share ONE arena and
        embed each distinct string exactly once (no lost updates)."""
        barrier = threading.Barrier(N_THREADS)
        clients = [server.session(f"c{i}") for i in range(N_THREADS)]
        texts = [f"word{i}" for i in range(64)]

        def work(index):
            barrier.wait(timeout=10)
            cache = clients[index].embedding_cache()
            ids = cache.row_ids(texts)
            assert len(np.unique(ids)) == len(texts)

        run_threads(N_THREADS, work)
        caches = server.state.embedding_caches
        assert len(caches) == 1          # one arena, not one per client
        cache = next(iter(caches.values()))
        assert cache.rows == len(texts)  # each string interned once
        assert cache.misses == len(texts)
        assert cache.hits == (N_THREADS - 1) * len(texts)

    def test_index_single_flight_under_concurrent_misses(self, model,
                                                         monkeypatch):
        """8 threads missing on one index key must build exactly once."""
        real_factory = index_cache_module._FACTORIES["brute"]

        def slow_factory(seed):
            index = real_factory(seed)
            real_build = index.build

            def slow_build(matrix):
                time.sleep(0.2)      # hold the build window open
                return real_build(matrix)

            index.build = slow_build
            return index

        monkeypatch.setitem(index_cache_module._FACTORIES, "brute",
                            slow_factory)
        cache = EmbeddingCache(model)
        index_cache = IndexCache()
        values = [f"value{i}" for i in range(32)]
        cache.prefetch(values)       # isolate the index race from embeds
        barrier = threading.Barrier(N_THREADS)
        results = []

        def work(index):
            barrier.wait(timeout=10)
            built, positions = index_cache.get_for_values(
                "brute", values, cache)
            results.append((built, positions))

        run_threads(N_THREADS, work)
        assert index_cache.builds == 1                   # single flight
        assert index_cache.single_flight_waits >= 1
        assert len(index_cache) == 1
        first = results[0][0]
        assert all(built is first for built, _ in results)
        reference = results[0][1]
        assert all(np.array_equal(positions, reference)
                   for _, positions in results)

    def test_arena_growth_publish_safe_under_readers(self, model):
        """Readers gathering while the arena doubles must always see
        exact fully-written vectors — never a torn or stale row."""
        cache = EmbeddingCache(model, initial_capacity=4)
        seed_texts = [f"base{i}" for i in range(4)]
        seed_ids = cache.row_ids(seed_texts)
        expected = cache.rows_for(seed_ids).copy()
        stop = threading.Event()
        torn = []

        def reader(index):
            while not stop.is_set():
                got = cache.rows_for(seed_ids)
                if not np.array_equal(got, expected):
                    torn.append(got)
                    return

        readers = [threading.Thread(target=reader, args=(i,))
                   for i in range(4)]
        for thread in readers:
            thread.start()
        try:
            # force many doublings while the readers hammer the gather
            for round_number in range(8):
                cache.row_ids([f"grow{round_number}_{i}"
                               for i in range(64)])
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not torn
        # snapshot semantics: an old snapshot stays valid and read-only
        snapshot = cache.arena
        assert snapshot.flags.writeable is False
        assert np.array_equal(snapshot[:4], expected)

    def test_duplicate_statement_storm(self, server):
        """8 threads x 12 identical statements: identical results, one
        plan-cache entry, hit rate ~1 after warmup."""
        statement = ("SELECT b, SUM(a) AS total FROM t "
                     "GROUP BY b ORDER BY b")
        reference = server.sql(statement).to_rows()
        server.sql(statement)            # settle stats-bump re-plan
        clients = [server.session(f"storm{i}") for i in range(N_THREADS)]
        barrier = threading.Barrier(N_THREADS)

        def work(index):
            barrier.wait(timeout=10)
            for _ in range(12):
                assert clients[index].sql(statement).to_rows() == reference

        run_threads(N_THREADS, work)
        stats = server.state.plan_cache.stats()
        assert stats.entries == 1
        assert stats.hit_rate >= 0.9

    def test_register_while_query(self, server):
        """Queries racing a register(replace=True) must each see a
        consistent table version — old count or new count, nothing else."""
        tables = {
            rows: Table.from_dict({"a": list(range(rows)),
                                   "b": ["x"] * rows})
            for rows in (10, 20, 30)
        }
        valid_counts = {40} | set(tables)   # fixture table has 40 rows
        stop = threading.Event()

        def querier(index):
            client = server.session(f"q{index}")
            while not stop.is_set():
                result = client.sql("SELECT COUNT(*) AS n FROM t")
                assert int(result.column("n")[0]) in valid_counts

        threads = [threading.Thread(target=querier, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                for rows, table in tables.items():
                    server.register_table("t", table, replace=True)
                    time.sleep(0.005)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        server.drain(timeout=10)
        # after the dust settles: fresh plan, current contents
        final = server.sql("SELECT COUNT(*) AS n FROM t")
        assert int(final.column("n")[0]) == 30

    def test_mixed_register_query_semantic_stress(self, server):
        """The acceptance stress: >= 8 threads, shared model, mixed
        register/query with semantic predicates. No lost updates, no
        duplicate index builds, no torn arena reads, sane results."""
        semantic = ("SELECT b FROM t WHERE b ~ 'item1' "
                    "THRESHOLD 0.95 ORDER BY b")
        relational = "SELECT b, COUNT(*) AS n FROM t GROUP BY b ORDER BY b"
        barrier = threading.Barrier(N_THREADS)

        def work(index):
            client = server.session(f"mix{index}")
            barrier.wait(timeout=10)
            for round_number in range(6):
                if index % 4 == 0 and round_number % 3 == 2:
                    client.register_table(
                        f"scratch_{index}_{round_number}",
                        Table.from_dict({"x": [index, round_number]}))
                else:
                    result = client.sql(
                        semantic if round_number % 2 else relational)
                    assert result.num_rows > 0

        run_threads(N_THREADS, work)
        server.drain(timeout=10)
        caches = server.state.embedding_caches
        assert len(caches) == 1
        index_stats = server.state.index_cache.stats()
        # single-flight: every build corresponds to a distinct key
        assert index_stats["builds"] == index_stats["entries"]
        metrics = server.metrics()
        # repeated statements may be served as result-cache no-ops that
        # never occupy a worker; every query is one or the other
        served = (metrics["scheduler"]["admitted"]
                  + metrics["scheduler"]["result_cache_noops"])
        assert served >= N_THREADS * 4
        assert not metrics["scheduler"]["queued"]["interactive"]
        assert not metrics["scheduler"]["queued"]["heavy"]

    def test_parallel_submit_nonblocking(self, server):
        """submit() tickets resolve independently across clients."""
        client = server.session("async")
        tickets = [client.submit("SELECT a FROM t WHERE a < 5 ORDER BY a")
                   for _ in range(16)]
        results = [ticket.result(timeout=30) for ticket in tickets]
        expected = results[0].column("a").tolist()
        assert all(r.column("a").tolist() == expected for r in results)
