"""Deterministic scheduler coverage: lane policy, admission, telemetry.

``test_server.py`` exercises the scheduler incidentally, through whole
servers and thread storms.  These tests pin down the paths on their
own terms:

- the **anti-starvation policy** is a pure function
  (:meth:`Scheduler.pick_lane`), driven here dispatch-by-dispatch with
  no threads at all, plus one end-to-end ordering test where a single
  blocked worker makes the dispatch sequence fully deterministic;
- every **AdmissionError** path: per-lane bounds (one full lane does
  not poison the other), the rejected counter, admitted count
  unchanged, the error message, and submit-after-close;
- **ticket telemetry** with stubbed clock values — no sleeps, no
  wall-clock flakiness.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import pytest

from repro.errors import AdmissionError, ServerError
from repro.server import Scheduler, SchedulerConfig
from repro.server.scheduler import QueryTicket


def make_scheduler(**overrides) -> Scheduler:
    defaults = dict(workers=1, max_queue_depth=2,
                    interactive_cost_threshold=100.0, heavy_pick_every=3)
    defaults.update(overrides)
    return Scheduler(SchedulerConfig(**defaults))


def blocked_worker(scheduler: Scheduler):
    """Occupy every worker; returns (release_event, started_event)."""
    release, started = threading.Event(), threading.Event()

    def block(ticket, workers):
        started.set()
        assert release.wait(timeout=10)
        return "blocked-done"

    tickets = [scheduler.submit(block, estimated_cost=1.0)
               for _ in range(scheduler.budget.total)]
    assert started.wait(timeout=10)
    return release, tickets


# ---------------------------------------------------------------------------
# Lane policy as a pure function (no threads)
# ---------------------------------------------------------------------------
class TestPickLanePolicy:
    def test_both_empty_is_none(self):
        assert Scheduler.pick_lane(1, False, False, 4) is None

    def test_only_interactive(self):
        assert Scheduler.pick_lane(4, True, False, 4) == "interactive"

    def test_only_heavy(self):
        assert Scheduler.pick_lane(1, False, True, 4) == "heavy"

    def test_interactive_preferred_off_period(self):
        for dispatch in (1, 2, 3, 5, 6, 7):
            assert Scheduler.pick_lane(dispatch, True, True, 4) \
                == "interactive"

    def test_heavy_forced_every_period(self):
        for dispatch in (4, 8, 12, 400):
            assert Scheduler.pick_lane(dispatch, True, True, 4) == "heavy"

    def test_policy_over_a_simulated_burst(self):
        """Across any window of heavy_pick_every dispatches with both
        lanes waiting, exactly one heavy pick happens — the starvation
        bound the docs promise."""
        every = 5
        picks = [Scheduler.pick_lane(d, True, True, every)
                 for d in range(1, 51)]
        for start in range(0, 50, every):
            window = picks[start:start + every]
            assert window.count("heavy") == 1


# ---------------------------------------------------------------------------
# Anti-starvation end to end (single worker ⇒ deterministic order)
# ---------------------------------------------------------------------------
class TestAntiStarvation:
    def test_dispatch_order_interleaves_heavy(self):
        """One worker, a blocked head, 6 interactive + 2 heavy queued.

        The blocked head consumed dispatch 1, so the drain issues
        dispatches 2..9 with heavy_pick_every=3: heavy at dispatches 3
        and 6, interactive everywhere else."""
        scheduler = make_scheduler(max_queue_depth=16)
        order: list[str] = []

        def record(tag):
            def run(ticket, workers):
                order.append(tag)
                return tag
            return run

        release, head = blocked_worker(scheduler)
        for i in range(6):
            scheduler.submit(record(f"i{i}"), estimated_cost=1.0)
        for i in range(2):
            scheduler.submit(record(f"h{i}"), estimated_cost=1e9)
        release.set()
        assert scheduler.drain(timeout=10)
        assert order == ["i0", "h0", "i1", "i2", "h1", "i3", "i4", "i5"]
        scheduler.close()

    def test_heavy_only_backlog_drains_in_order(self):
        scheduler = make_scheduler(max_queue_depth=16)
        order: list[int] = []
        release, _ = blocked_worker(scheduler)
        for i in range(4):
            scheduler.submit(
                lambda ticket, workers, i=i: order.append(i),
                estimated_cost=1e9)
        release.set()
        assert scheduler.drain(timeout=10)
        assert order == [0, 1, 2, 3]
        scheduler.close()


# ---------------------------------------------------------------------------
# Admission errors
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_classify_boundary_is_inclusive(self):
        scheduler = make_scheduler()
        try:
            assert scheduler.classify(100.0) == "interactive"
            assert scheduler.classify(100.0001) == "heavy"
        finally:
            scheduler.close()

    def test_full_interactive_lane_rejects_with_message(self):
        scheduler = make_scheduler()
        release, _ = blocked_worker(scheduler)
        try:
            scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            with pytest.raises(AdmissionError, match="interactive lane"):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            assert scheduler.stats()["rejected"] == 1
        finally:
            release.set()
            scheduler.close()

    def test_full_lane_does_not_poison_the_other(self):
        scheduler = make_scheduler()
        release, _ = blocked_worker(scheduler)
        try:
            for _ in range(2):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            with pytest.raises(AdmissionError):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            # the heavy lane still admits
            ticket = scheduler.submit(lambda t, w: "heavy-ok",
                                      estimated_cost=1e9)
            assert ticket.lane == "heavy"
            with pytest.raises(AdmissionError, match="heavy lane"):
                for _ in range(3):
                    scheduler.submit(lambda t, w: None, estimated_cost=1e9)
        finally:
            release.set()
            scheduler.close()

    def test_rejected_submission_is_not_counted_admitted(self):
        scheduler = make_scheduler()
        release, _ = blocked_worker(scheduler)
        try:
            for _ in range(2):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            admitted = scheduler.stats()["admitted"]
            tenants = scheduler.stats()["tenants"]["default"]["queries"]
            with pytest.raises(AdmissionError):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0)
            assert scheduler.stats()["admitted"] == admitted
            assert scheduler.stats()["tenants"]["default"]["queries"] \
                == tenants
        finally:
            release.set()
            scheduler.close()

    def test_rejection_leaves_queues_drainable(self):
        scheduler = make_scheduler()
        release, _ = blocked_worker(scheduler)
        for _ in range(2):
            scheduler.submit(lambda t, w: "ok", estimated_cost=1.0)
        with pytest.raises(AdmissionError):
            scheduler.submit(lambda t, w: None, estimated_cost=1.0)
        release.set()
        assert scheduler.drain(timeout=10)
        scheduler.close()

    def test_submit_after_close_raises_server_error(self):
        scheduler = make_scheduler()
        scheduler.close()
        with pytest.raises(ServerError):
            scheduler.submit(lambda t, w: None, estimated_cost=1.0)

    def test_complete_cached_after_close_raises(self):
        scheduler = make_scheduler()
        scheduler.close()
        with pytest.raises(ServerError):
            scheduler.complete_cached("x")

    def test_drain_times_out_while_blocked_then_succeeds(self):
        scheduler = make_scheduler()
        release, tickets = blocked_worker(scheduler)
        try:
            assert scheduler.drain(timeout=0.05) is False
            release.set()
            assert scheduler.drain(timeout=10) is True
            assert tickets[0].result(timeout=10) == "blocked-done"
        finally:
            scheduler.close()


# ---------------------------------------------------------------------------
# Per-tenant in-flight cap (ROADMAP (d), minimal form)
# ---------------------------------------------------------------------------
class TestTenantInflightCap:
    """``max_inflight_per_tenant`` refuses one tenant's excess without
    touching the others — driven deterministically with blocked workers,
    no sleeps."""

    def test_tenant_at_cap_rejected_others_admitted(self):
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=1)
        release, _ = blocked_worker(scheduler)   # occupies "default"
        try:
            scheduler.submit(lambda t, w: "a", estimated_cost=1.0,
                             tenant="alice")
            with pytest.raises(AdmissionError,
                               match="tenant 'alice' at max in-flight"):
                scheduler.submit(lambda t, w: "b", estimated_cost=1.0,
                                 tenant="alice")
            assert scheduler.stats()["rejected"] == 1
            # a different tenant is unaffected by alice's cap
            ticket = scheduler.submit(lambda t, w: "c",
                                      estimated_cost=1.0, tenant="bob")
            assert ticket.tenant == "bob"
        finally:
            release.set()
            scheduler.close()

    def test_cap_counts_queued_and_running(self):
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=2)
        release, _ = blocked_worker(scheduler)
        try:
            for _ in range(2):     # both queued: inflight = 2
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice")
            assert scheduler.stats()["tenant_inflight"]["alice"] == 2
            with pytest.raises(AdmissionError):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice")
        finally:
            release.set()
            scheduler.close()

    def test_cap_releases_after_completion(self):
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=1)
        release, _ = blocked_worker(scheduler)
        ticket = scheduler.submit(lambda t, w: "done", estimated_cost=1.0,
                                  tenant="alice")
        release.set()
        assert ticket.result(timeout=10) == "done"
        assert scheduler.drain(timeout=10)
        # the slot freed: alice admits again, and the gauge is empty
        assert "alice" not in scheduler.stats()["tenant_inflight"]
        again = scheduler.submit(lambda t, w: "again", estimated_cost=1.0,
                                 tenant="alice")
        assert again.result(timeout=10) == "again"
        scheduler.close()

    def test_cache_noops_exempt_from_cap(self):
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=1)
        release, _ = blocked_worker(scheduler)
        try:
            scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                             tenant="alice")    # alice at cap
            for kind in ("result", "reuse"):
                ticket = scheduler.complete_cached(
                    "cached", tenant="alice", kind=kind)
                assert ticket.result(timeout=1) == "cached"
            stats = scheduler.stats()
            assert stats["tenant_inflight"]["alice"] == 1
            assert stats["tenants"]["alice"]["result_cache_hits"] == 1
            assert stats["tenants"]["alice"]["reuse_hits"] == 1
        finally:
            release.set()
            scheduler.close()

    def test_ingest_weight_charges_more_than_a_query(self):
        """A weighted submit displaces ``weight`` units of the tenant's
        cap: with cap 3 and ingest weight 2, one ingest plus one query
        fill it, and either a second ingest or a second-plus-one query
        is refused."""
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=3)
        release, _ = blocked_worker(scheduler)
        try:
            scheduler.submit(lambda t, w: "ingest", estimated_cost=1.0,
                             tenant="alice", weight=2.0)
            scheduler.submit(lambda t, w: "query", estimated_cost=1.0,
                             tenant="alice")
            assert scheduler.stats()["tenant_inflight"]["alice"] == 3.0
            with pytest.raises(AdmissionError,
                               match="requested weight 2"):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice", weight=2.0)
            with pytest.raises(AdmissionError,
                               match="requested weight 1"):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice")
            # another tenant's budget is untouched by alice's ingest
            scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                             tenant="bob", weight=2.0)
        finally:
            release.set()
            scheduler.close()

    def test_weighted_release_returns_the_full_charge(self):
        """Completion releases exactly the admitted weight — the tenant
        map empties (no float dust pinning idle tenants)."""
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=2)
        ticket = scheduler.submit(lambda t, w: "done", estimated_cost=1.0,
                                  tenant="alice", weight=2.0)
        assert ticket.result(timeout=10) == "done"
        assert scheduler.drain(timeout=10)
        assert "alice" not in scheduler.stats()["tenant_inflight"]
        # the full cap is available again for a fresh weighted submit
        again = scheduler.submit(lambda t, w: "again", estimated_cost=1.0,
                                 tenant="alice", weight=2.0)
        assert again.result(timeout=10) == "again"
        scheduler.close()

    def test_fractional_weights_admit_to_the_exact_boundary(self):
        """Weights are floats: three 0.5-weight submits fit a cap of
        1.5, the fourth is refused at the same boundary an integer cap
        enforces for weight-1 queries."""
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=1.5)
        release, _ = blocked_worker(scheduler)
        try:
            for _ in range(3):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice", weight=0.5)
            with pytest.raises(AdmissionError):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice", weight=0.5)
        finally:
            release.set()
            scheduler.close()

    def test_failed_query_releases_the_slot(self):
        scheduler = make_scheduler(max_queue_depth=16,
                                   max_inflight_per_tenant=1)

        def boom(ticket, workers):
            raise RuntimeError("query failed")

        ticket = scheduler.submit(boom, estimated_cost=1.0,
                                  tenant="alice")
        with pytest.raises(RuntimeError):
            ticket.result(timeout=10)
        assert scheduler.drain(timeout=10)
        assert "alice" not in scheduler.stats()["tenant_inflight"]
        ok = scheduler.submit(lambda t, w: "ok", estimated_cost=1.0,
                              tenant="alice")
        assert ok.result(timeout=10) == "ok"
        scheduler.close()

    def test_cap_disabled_by_default(self):
        scheduler = make_scheduler(max_queue_depth=16)
        release, _ = blocked_worker(scheduler)
        try:
            for _ in range(10):
                scheduler.submit(lambda t, w: None, estimated_cost=1.0,
                                 tenant="alice")
        finally:
            release.set()
            scheduler.close()


# ---------------------------------------------------------------------------
# Ticket telemetry with a stub clock (no sleeps)
# ---------------------------------------------------------------------------
class TestTicketTelemetry:
    def make_ticket(self, queued_at, started_at, finished_at):
        return QueryTicket(future=Future(), lane="interactive",
                           tenant="t", estimated_cost=1.0,
                           queued_at=queued_at, started_at=started_at,
                           finished_at=finished_at)

    def test_queue_wait_and_run_seconds(self):
        ticket = self.make_ticket(10.0, 12.5, 20.0)
        assert ticket.queue_wait_seconds == pytest.approx(2.5)
        assert ticket.run_seconds == pytest.approx(7.5)

    def test_unstarted_ticket_reports_zero(self):
        ticket = self.make_ticket(10.0, None, None)
        assert ticket.queue_wait_seconds == 0.0
        assert ticket.run_seconds == 0.0

    def test_started_unfinished_reports_zero_run(self):
        ticket = self.make_ticket(10.0, 11.0, None)
        assert ticket.queue_wait_seconds == pytest.approx(1.0)
        assert ticket.run_seconds == 0.0

    def test_cached_noop_ticket_has_zero_waits(self):
        scheduler = make_scheduler()
        try:
            ticket = scheduler.complete_cached(
                "result", tenant="acme", estimated_cost=5.0,
                plan_cache_hit=True)
            assert ticket.result(timeout=1) == "result"
            assert ticket.lane == "interactive"
            assert ticket.queue_wait_seconds == 0.0
            assert ticket.run_seconds == 0.0
            stats = scheduler.stats()
            assert stats["result_cache_noops"] == 1
            acme = stats["tenants"]["acme"]
            assert acme["queries"] == 1
            assert acme["result_cache_hits"] == 1
            assert acme["plan_cache_hits"] == 1
            assert acme["by_lane"]["interactive"] == 1
            # no-ops never occupy a worker or a queue slot
            assert stats["admitted"] == 0
        finally:
            scheduler.close()

    def test_failure_counted_per_tenant(self):
        scheduler = make_scheduler()
        try:
            def boom(ticket, workers):
                raise RuntimeError("kaput")

            ticket = scheduler.submit(boom, estimated_cost=1.0,
                                      tenant="acme")
            with pytest.raises(RuntimeError, match="kaput"):
                ticket.result(timeout=10)
            assert scheduler.drain(timeout=10)
            assert scheduler.stats()["tenants"]["acme"]["failures"] == 1
        finally:
            scheduler.close()
