"""Tests for the hardware layer: devices, topology, placement, simulator,
JIT specialization."""

import numpy as np
import pytest

from repro.errors import ExpressionError, HardwareError
from repro.hardware.devices import (
    DeviceKind,
    a100_gpu,
    infiniband,
    pcie4,
    tpu_v4,
    xeon_cpu,
)
from repro.hardware.jit import compile_predicate
from repro.hardware.placement import (
    PlacementOptimizer,
    estimate_row_bytes,
)
from repro.hardware.simulator import ExecutionSimulator
from repro.hardware.topology import HardwareTopology, standard_topologies
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.relational.expressions import col
from repro.relational.logical import (
    FilterNode,
    ScanNode,
    SemanticJoinNode,
)
from repro.storage.table import Table


@pytest.fixture()
def topology():
    return standard_topologies()["cpu+2gpu+tpu"]


@pytest.fixture()
def model_heavy_plan(catalog):
    products = ScanNode("products", catalog.get("products").schema,
                        qualifier="p")
    kb = ScanNode("kb", catalog.get("kb").schema, qualifier="k")
    return SemanticJoinNode(products, kb, "p.ptype", "k.label",
                            "wiki-ft-100", 0.9)


@pytest.fixture()
def cost_model(catalog, registry):
    return CostModel(CardinalityEstimator(catalog, registry))


class TestDevices:
    def test_execution_seconds(self):
        cpu = xeon_cpu()
        assert cpu.execution_seconds(2.0e8, 0.0) == pytest.approx(1.0)

    def test_gpu_faster_on_model_work(self):
        cpu = xeon_cpu()
        gpu = a100_gpu()
        model_cost = 1.0e9
        assert gpu.execution_seconds(0, model_cost) < \
            cpu.execution_seconds(0, model_cost)

    def test_tpu_slow_relational(self):
        tpu = tpu_v4()
        cpu = xeon_cpu()
        assert tpu.execution_seconds(1e9, 0) > cpu.execution_seconds(1e9, 0)

    def test_storage_cannot_run_models(self):
        from repro.hardware.devices import nvme

        assert nvme().execution_seconds(0, 100.0) == float("inf")

    def test_link_transfer(self):
        link = pcie4("a", "b")
        one_gb = 1024**3
        seconds = link.transfer_seconds(one_gb)
        assert 0.02 < seconds < 0.1

    def test_device_kinds(self):
        assert xeon_cpu().kind == DeviceKind.CPU
        assert tpu_v4().kind == DeviceKind.TPU


class TestTopology:
    def test_standard_topologies_exist(self):
        topologies = standard_topologies()
        assert set(topologies) == {"cpu-only", "cpu+gpu", "cpu+2gpu+tpu"}

    def test_transfer_same_device_free(self, topology):
        assert topology.transfer_seconds("cpu0", "cpu0", 1e9) == 0.0

    def test_transfer_multi_hop(self, topology):
        direct = topology.transfer_seconds("cpu0", "gpu0", 1e9)
        two_hop = topology.transfer_seconds("cpu1", "gpu0", 1e9)
        assert two_hop > 0
        assert direct < two_hop or direct > 0

    def test_disconnected_rejected(self):
        with pytest.raises(HardwareError):
            HardwareTopology([xeon_cpu("a"), xeon_cpu("b")], [])

    def test_duplicate_device_rejected(self):
        with pytest.raises(HardwareError):
            HardwareTopology([xeon_cpu("a"), xeon_cpu("a")], [])

    def test_unknown_link_endpoint(self):
        with pytest.raises(HardwareError):
            HardwareTopology([xeon_cpu("a")], [infiniband("a", "ghost")])

    def test_unknown_device_lookup(self, topology):
        with pytest.raises(HardwareError):
            topology.device("quantum0")


class TestPlacement:
    def test_row_bytes(self, products_table):
        width = estimate_row_bytes(products_table.schema)
        assert width == 8 + 24 + 8 + 24

    def test_optimized_beats_cpu_only(self, topology, model_heavy_plan,
                                      cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        best = optimizer.place(model_heavy_plan)
        cpu_only = optimizer.place_all_on(model_heavy_plan, "cpu0")
        best_time = simulator.simulate(model_heavy_plan, best).makespan
        cpu_time = simulator.simulate(model_heavy_plan, cpu_only).makespan
        assert best_time <= cpu_time * 1.05

    def test_placement_covers_every_node(self, topology, model_heavy_plan,
                                         cost_model):
        placement = PlacementOptimizer(topology, cost_model).place(
            model_heavy_plan)
        for node in model_heavy_plan.walk():
            assert id(node) in placement.assignment

    def test_model_ops_policy(self, topology, model_heavy_plan, cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        placement = optimizer.place_model_ops_on(model_heavy_plan, "gpu0")
        assert placement.device_of(model_heavy_plan) == "gpu0"
        for child in model_heavy_plan.children:
            assert placement.device_of(child) == "cpu0"

    def test_describe_renders(self, topology, model_heavy_plan, cost_model):
        placement = PlacementOptimizer(topology, cost_model).place(
            model_heavy_plan)
        text = placement.describe(model_heavy_plan)
        assert "@" in text


class TestSimulator:
    def test_makespan_at_least_busy_time(self, topology, model_heavy_plan,
                                         cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        placement = optimizer.place(model_heavy_plan)
        result = simulator.simulate(model_heavy_plan, placement)
        assert result.makespan > 0
        for device, busy in result.device_busy.items():
            assert busy <= result.makespan + 1e-9

    def test_timelines_cover_all_operators(self, topology, model_heavy_plan,
                                           cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        placement = optimizer.place_all_on(model_heavy_plan, "cpu0")
        result = simulator.simulate(model_heavy_plan, placement)
        assert len(result.timelines) == len(list(model_heavy_plan.walk()))

    def test_children_finish_before_parent_starts(self, topology,
                                                  model_heavy_plan,
                                                  cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        placement = optimizer.place(model_heavy_plan)
        result = simulator.simulate(model_heavy_plan, placement)
        by_label = {}
        for timeline in result.timelines:
            by_label.setdefault(timeline.node_label, timeline)
        root = by_label[model_heavy_plan.label()]
        for child in model_heavy_plan.children:
            assert by_label[child.label()].finish <= root.start + 1e-9

    def test_utilization_fractions(self, topology, model_heavy_plan,
                                   cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        placement = optimizer.place(model_heavy_plan)
        result = simulator.simulate(model_heavy_plan, placement)
        for fraction in result.utilization().values():
            assert 0.0 <= fraction <= 1.0

    def test_accelerator_pays_model_shipping(self, topology,
                                             model_heavy_plan, cost_model):
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        on_gpu = optimizer.place_model_ops_on(model_heavy_plan, "gpu0")
        result = simulator.simulate(model_heavy_plan, on_gpu)
        assert result.bytes_transferred > 0


class TestJit:
    def test_compiled_predicate_matches_interpreter(self, products_table):
        expr = (col("price") > 20) & (col("brand") == "acme")
        kernel = compile_predicate(expr)
        expected = expr.evaluate(products_table)
        assert np.array_equal(kernel(products_table), expected)

    def test_compile_cost_recorded(self):
        kernel = compile_predicate(col("price") > 20)
        assert kernel.compile_seconds > 0
        assert "_kernel" in kernel.source

    def test_in_list_compiles(self, products_table):
        expr = col("ptype").isin(["sneakers", "parka"])
        kernel = compile_predicate(expr)
        expected = expr.evaluate(products_table)
        assert np.array_equal(kernel(products_table), expected)

    def test_arithmetic_and_not(self, products_table):
        expr = ~((col("price") * 2) > 100)
        kernel = compile_predicate(expr)
        assert np.array_equal(kernel(products_table),
                              expr.evaluate(products_table))

    def test_functions_unsupported(self):
        from repro.relational.expressions import Func

        with pytest.raises(ExpressionError):
            compile_predicate(Func("lower", (col("s"),)) == "x")
