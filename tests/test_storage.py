"""Tests for storage: types, schema, table, catalog."""

import datetime

import numpy as np
import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import (
    DataType,
    coerce_array,
    date_to_int,
    int_to_date,
    parse_date,
)


class TestTypes:
    def test_date_round_trip(self):
        day = date_to_int("2022-06-15")
        assert int_to_date(day) == datetime.date(2022, 6, 15)

    def test_epoch_is_zero(self):
        assert date_to_int("1970-01-01") == 0

    def test_parse_date(self):
        assert parse_date("2022-01-02") == date_to_int("2022-01-02")

    def test_infer(self):
        assert DataType.infer(True) == DataType.BOOL
        assert DataType.infer(3) == DataType.INT64
        assert DataType.infer(3.5) == DataType.FLOAT64
        assert DataType.infer("x") == DataType.STRING
        assert DataType.infer(datetime.date(2020, 1, 1)) == DataType.DATE

    def test_infer_rejects_unknown(self):
        with pytest.raises(SchemaError):
            DataType.infer(object())

    def test_coerce_date_strings(self):
        array = coerce_array(["2020-01-01", "2020-01-02"], DataType.DATE)
        assert array.dtype == np.int64
        assert array[1] - array[0] == 1

    def test_coerce_string_none_preserved(self):
        array = coerce_array(["a", None], DataType.STRING)
        assert array[1] is None

    def test_numeric_flag(self):
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", DataType.INT64), Field("a", DataType.INT64)])

    def test_index_of_exact(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        assert schema.index_of("b") == 1

    def test_index_of_suffix(self):
        schema = Schema([Field("p.price", DataType.FLOAT64),
                         Field("k.label", DataType.STRING)])
        assert schema.index_of("price") == 0

    def test_index_of_ambiguous_suffix(self):
        schema = Schema([Field("p.price", DataType.FLOAT64),
                         Field("q.price", DataType.FLOAT64)])
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.index_of("price")

    def test_index_of_unknown(self):
        schema = Schema([Field("a", DataType.INT64)])
        with pytest.raises(SchemaError, match="unknown column"):
            schema.index_of("z")

    def test_concat(self):
        left = Schema([Field("a", DataType.INT64)])
        right = Schema([Field("b", DataType.STRING)])
        assert left.concat(right).names == ["a", "b"]

    def test_qualified(self):
        schema = Schema([Field("a", DataType.INT64)]).qualified("t")
        assert schema.names == ["t.a"]

    def test_qualified_idempotent(self):
        schema = Schema([Field("t.a", DataType.INT64)]).qualified("t")
        assert schema.names == ["t.a"]

    def test_renamed(self):
        schema = Schema([Field("a", DataType.INT64)]).renamed({"a": "x"})
        assert schema.names == ["x"]

    def test_select_preserves_dtype(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        assert schema.select(["b"]).fields[0].dtype == DataType.STRING

    def test_equality_and_hash(self):
        a = Schema([Field("a", DataType.INT64)])
        b = Schema([Field("a", DataType.INT64)])
        assert a == b
        assert hash(a) == hash(b)


class TestTable:
    def test_from_dict_infers_types(self):
        table = Table.from_dict({"x": [1, 2], "s": ["a", "b"]})
        assert table.schema.dtype_of("x") == DataType.INT64
        assert table.schema.dtype_of("s") == DataType.STRING

    def test_from_dict_empty_column_needs_schema(self):
        with pytest.raises(SchemaError):
            Table.from_dict({"x": []})

    def test_ragged_columns_rejected(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {"a": np.zeros(2, dtype=np.int64),
                           "b": np.zeros(3, dtype=np.int64)})

    def test_from_rows(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        table = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}],
                                schema)
        assert table.num_rows == 2
        assert table.column("b")[1] == "y"

    def test_filter(self, products_table):
        filtered = products_table.filter(
            products_table.column("price") > 100)
        assert filtered.num_rows == 3  # parka, sedan, kitten

    def test_take(self, products_table):
        taken = products_table.take(np.array([2, 0]))
        assert taken.column("pid").tolist() == [3, 1]

    def test_slice(self, products_table):
        assert products_table.slice(1, 3).num_rows == 2

    def test_select(self, products_table):
        selected = products_table.select(["price", "pid"])
        assert selected.schema.names == ["price", "pid"]

    def test_with_column(self, products_table):
        extended = products_table.with_column(
            Field("flag", DataType.BOOL),
            np.ones(products_table.num_rows, dtype=bool))
        assert "flag" in extended.schema

    def test_with_column_length_mismatch(self, products_table):
        with pytest.raises(SchemaError):
            products_table.with_column(Field("f", DataType.BOOL),
                                       np.ones(2, dtype=bool))

    def test_concat(self, products_table):
        double = Table.concat([products_table, products_table])
        assert double.num_rows == 2 * products_table.num_rows

    def test_concat_mismatched(self, products_table, kb_table):
        with pytest.raises(SchemaError):
            Table.concat([products_table, kb_table])

    def test_batches_cover_all_rows(self, products_table):
        batches = list(products_table.batches(4))
        assert sum(b.num_rows for b in batches) == products_table.num_rows
        assert batches[0].num_rows == 4

    def test_batches_empty_table(self):
        table = Table.empty(Schema([Field("a", DataType.INT64)]))
        assert list(table.batches(10)) == []

    def test_batches_invalid_size(self, products_table):
        with pytest.raises(SchemaError):
            list(products_table.batches(0))

    def test_sort_by_single(self, products_table):
        ordered = products_table.sort_by([("price", True)])
        prices = ordered.column("price")
        assert np.all(np.diff(prices) >= 0)

    def test_sort_by_descending(self, products_table):
        ordered = products_table.sort_by([("price", False)])
        prices = ordered.column("price")
        assert np.all(np.diff(prices) <= 0)

    def test_sort_by_multi_stable(self):
        table = Table.from_dict({
            "g": ["b", "a", "b", "a"],
            "v": [1, 2, 3, 4],
        })
        ordered = table.sort_by([("g", True), ("v", False)])
        assert ordered.column("v").tolist() == [4, 2, 3, 1]

    def test_qualified(self, products_table):
        qualified = products_table.qualified("p")
        assert "p.pid" in qualified.schema
        assert qualified.column("p.pid").tolist() == \
            products_table.column("pid").tolist()

    def test_row_and_to_rows(self, products_table):
        row = products_table.row(0)
        assert row["pid"] == 1
        rows = products_table.to_rows()
        assert isinstance(rows[0]["pid"], int)

    def test_renamed(self, products_table):
        renamed = products_table.renamed({"pid": "id"})
        assert "id" in renamed.schema


class TestCatalog:
    def test_register_get(self, products_table):
        catalog = Catalog()
        catalog.register("t", products_table)
        assert catalog.get("t") is products_table

    def test_duplicate_register(self, products_table):
        catalog = Catalog()
        catalog.register("t", products_table)
        with pytest.raises(CatalogError):
            catalog.register("t", products_table)

    def test_replace(self, products_table, kb_table):
        catalog = Catalog()
        catalog.register("t", products_table)
        catalog.register("t", kb_table, replace=True)
        assert catalog.get("t") is kb_table

    def test_unknown_get(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().get("ghost")

    def test_drop(self, products_table):
        catalog = Catalog()
        catalog.register("t", products_table)
        catalog.drop("t")
        assert "t" not in catalog

    def test_drop_unknown(self):
        with pytest.raises(CatalogError):
            Catalog().drop("ghost")

    def test_stats_cached_and_invalidated(self, products_table, kb_table):
        catalog = Catalog()
        catalog.register("t", products_table)
        stats = catalog.stats("t")
        assert stats.row_count == products_table.num_rows
        assert catalog.stats("t") is stats
        catalog.register("t", kb_table, replace=True)
        assert catalog.stats("t").row_count == kb_table.num_rows
