"""Shared fixtures: one pretrained model per session, small catalogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.registry import ModelRegistry
from repro.embeddings.thesaurus import default_thesaurus
from repro.relational.physical import ExecutionContext
from repro.semantic.cache import EmbeddingCache
from repro.storage.catalog import Catalog
from repro.storage.table import Table


@pytest.fixture(scope="session")
def thesaurus():
    return default_thesaurus()


@pytest.fixture(scope="session")
def model(thesaurus):
    """The synthetic pretrained model (built once per test session)."""
    return build_pretrained_model(thesaurus=thesaurus, seed=7)


@pytest.fixture(scope="session")
def registry(model):
    registry = ModelRegistry()
    registry.register(model)
    return registry


@pytest.fixture()
def cache(model):
    return EmbeddingCache(model)


@pytest.fixture(scope="session")
def model_cache(model):
    """Session-scoped cache for hypothesis tests (avoids per-example
    fixture teardown health checks)."""
    return EmbeddingCache(model)


@pytest.fixture()
def products_table():
    return Table.from_dict({
        "pid": [1, 2, 3, 4, 5, 6],
        "ptype": ["sneakers", "parka", "sedan", "kitten", "blazer", "apple"],
        "price": [25.0, 120.0, 9000.0, 300.0, 15.0, 2.0],
        "brand": ["acme", "acme", "globex", "acme", "initech", "globex"],
    })


@pytest.fixture()
def kb_table():
    return Table.from_dict({
        "label": ["shoes", "jacket", "clothes", "dog", "car", "fruit"],
        "category": ["clothes", "clothes", "clothes", "animal", "vehicle",
                     "food"],
    })


@pytest.fixture()
def catalog(products_table, kb_table):
    catalog = Catalog()
    catalog.register("products", products_table)
    catalog.register("kb", kb_table)
    return catalog


@pytest.fixture()
def context(catalog, registry):
    return ExecutionContext(catalog=catalog, models=registry, batch_size=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
