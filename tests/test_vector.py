"""Tests for vector metrics, top-k helpers, and k-means."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.vector.kmeans import KMeans
from repro.vector.metrics import (
    cosine_matrix,
    cosine_pairs,
    cosine_similarity,
    l2_distance,
    normalize_rows,
)
from repro.vector.topk import threshold_pairs, top_k_indices


class TestMetrics:
    def test_normalize_rows_unit(self, rng):
        matrix = rng.standard_normal((10, 5))
        normalized = normalize_rows(matrix)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0,
                           atol=1e-6)

    def test_normalize_zero_row_stays_zero(self):
        matrix = np.zeros((2, 3))
        matrix[1] = [1.0, 0.0, 0.0]
        normalized = normalize_rows(matrix)
        assert np.allclose(normalized[0], 0.0)

    def test_normalize_rejects_1d(self):
        with pytest.raises(IndexError_):
            normalize_rows(np.ones(3))

    def test_normalize_copy_semantics(self):
        matrix = np.ones((2, 2), dtype=np.float32) * 2
        normalize_rows(matrix, copy=True)
        assert matrix[0, 0] == 2.0

    def test_cosine_similarity_known(self):
        assert cosine_similarity(np.array([1.0, 0.0]),
                                 np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert cosine_similarity(np.array([1.0, 0.0]),
                                 np.array([0.0, 1.0])) == pytest.approx(0.0)
        assert cosine_similarity(np.array([1.0, 0.0]),
                                 np.array([-1.0, 0.0])) == pytest.approx(-1.0)

    def test_cosine_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_cosine_matrix_matches_manual(self, rng):
        left = rng.standard_normal((4, 8))
        right = rng.standard_normal((6, 8))
        matrix = cosine_matrix(left, right)
        for i in range(4):
            for j in range(6):
                assert matrix[i, j] == pytest.approx(
                    cosine_similarity(left[i], right[j]), abs=1e-5)

    def test_cosine_pairs(self, rng):
        left = rng.standard_normal((5, 8))
        right = rng.standard_normal((5, 8))
        pairs = cosine_pairs(left, right)
        for i in range(5):
            assert pairs[i] == pytest.approx(
                cosine_similarity(left[i], right[i]), abs=1e-5)

    def test_cosine_pairs_shape_mismatch(self, rng):
        with pytest.raises(IndexError_):
            cosine_pairs(rng.standard_normal((2, 3)),
                         rng.standard_normal((3, 3)))

    def test_l2_distance(self, rng):
        left = rng.standard_normal((3, 4))
        right = rng.standard_normal((5, 4))
        distances = l2_distance(left, right)
        for i in range(3):
            for j in range(5):
                expected = np.linalg.norm(left[i] - right[j])
                assert distances[i, j] == pytest.approx(expected, abs=1e-4)

    def test_l2_self_distance_zero(self, rng):
        points = rng.standard_normal((4, 4))
        distances = l2_distance(points, points)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-4)


class TestTopK:
    def test_matches_full_sort(self, rng):
        scores = rng.standard_normal(100)
        top = top_k_indices(scores, 10)
        expected = np.argsort(-scores)[:10]
        assert np.array_equal(np.sort(top), np.sort(expected))

    def test_sorted_best_first(self, rng):
        scores = rng.standard_normal(50)
        top = top_k_indices(scores, 5)
        values = scores[top]
        assert np.all(values[:-1] >= values[1:])

    def test_k_zero(self):
        assert top_k_indices(np.array([1.0, 2.0]), 0).shape == (0,)

    def test_k_exceeds_n(self):
        scores = np.array([3.0, 1.0, 2.0])
        top = top_k_indices(scores, 10)
        assert np.array_equal(top, np.array([0, 2, 1]))

    def test_threshold_pairs(self):
        similarity = np.array([[0.95, 0.2], [0.5, 0.91]])
        rows, cols, scores = threshold_pairs(similarity, 0.9)
        assert set(zip(rows.tolist(), cols.tolist())) == {(0, 0), (1, 1)}
        assert np.all(scores >= 0.9)

    def test_threshold_pairs_none_match(self):
        rows, cols, scores = threshold_pairs(np.zeros((3, 3)), 0.5)
        assert rows.shape == (0,)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((30, 2)) * 0.05 + np.array([5.0, 5.0])
        b = rng.standard_normal((30, 2)) * 0.05 + np.array([-5.0, -5.0])
        points = np.vstack([a, b])
        kmeans = KMeans(n_clusters=2, seed=3).fit(points)
        labels = kmeans.labels
        assert len(set(labels[:30].tolist())) == 1
        assert len(set(labels[30:].tolist())) == 1
        assert labels[0] != labels[30]

    def test_predict_matches_fit_labels(self):
        rng = np.random.default_rng(4)
        points = rng.standard_normal((40, 3))
        kmeans = KMeans(n_clusters=4, seed=5).fit(points)
        assert np.array_equal(kmeans.predict(points), kmeans.labels)

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        points = rng.standard_normal((50, 4)).astype(np.float32)
        a = KMeans(n_clusters=5, seed=9).fit(points)
        b = KMeans(n_clusters=5, seed=9).fit(points)
        assert np.array_equal(a.labels, b.labels)

    def test_k_larger_than_n(self):
        points = np.eye(3, dtype=np.float32)
        kmeans = KMeans(n_clusters=10, seed=0).fit(points)
        assert kmeans.centroids.shape[0] == 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(IndexError_):
            KMeans(n_clusters=2).predict(np.ones((2, 2)))

    def test_empty_input_raises(self):
        with pytest.raises(IndexError_):
            KMeans(n_clusters=2).fit(np.empty((0, 3)))

    def test_inertia_finite(self, rng):
        points = rng.standard_normal((30, 2)).astype(np.float32)
        kmeans = KMeans(n_clusters=3, seed=1).fit(points)
        assert np.isfinite(kmeans.inertia)
