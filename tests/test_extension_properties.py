"""Property-based tests for the extension modules (quantization, top-k,
transfer planning, AQP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hardware.devices import ethernet_10g, xeon_cpu
from repro.hardware.topology import HardwareTopology
from repro.hardware.transfer import TransferPlanner
from repro.semantic.topk import join_topk
from repro.vector.metrics import normalize_rows
from repro.vector.quantization import quantize_rows, quantized_similarity

_MATRIX = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 10), st.integers(2, 16)),
    elements=st.floats(-3, 3, width=32, allow_nan=False),
)


class TestQuantizationProperties:
    @given(_MATRIX)
    def test_codes_in_int8_range(self, matrix):
        quantized = quantize_rows(matrix)
        assert quantized.codes.dtype == np.int8
        assert int(quantized.codes.max(initial=0)) <= 127
        assert int(quantized.codes.min(initial=0)) >= -127

    @given(_MATRIX)
    @settings(max_examples=40)
    def test_similarity_error_bounded(self, matrix):
        unit = normalize_rows(matrix)
        quantized = quantize_rows(unit, assume_normalized=True)
        exact = unit @ unit.T
        approx = quantized_similarity(quantized, quantized)
        # worst case per element: dim * (scale/2) per factor; empirically
        # far tighter — assert the engineering bound used by the guard band
        assert float(np.abs(exact - approx).max()) < 0.05

    @given(_MATRIX)
    def test_dequantize_shape(self, matrix):
        quantized = quantize_rows(matrix)
        assert quantized.dequantize().shape == matrix.shape


class TestTopKProperties:
    @given(_MATRIX, st.integers(1, 5))
    @settings(max_examples=40)
    def test_at_most_k_matches_per_row(self, matrix, k):
        unit = normalize_rows(matrix)
        li, ri, scores = join_topk(unit, unit, k)
        counts = np.bincount(li, minlength=unit.shape[0])
        assert counts.max(initial=0) <= k

    @given(_MATRIX, st.integers(1, 5))
    @settings(max_examples=40)
    def test_selected_are_the_best(self, matrix, k):
        unit = normalize_rows(matrix)
        similarity = unit @ unit.T
        li, ri, scores = join_topk(unit, unit, k)
        for row in set(li.tolist()):
            picked = {int(j) for i, j in zip(li, ri) if i == row}
            row_scores = similarity[row]
            worst_picked = min(float(row_scores[j]) for j in picked)
            not_picked = [float(s) for j, s in enumerate(row_scores)
                          if j not in picked]
            if not_picked:
                assert worst_picked >= max(not_picked) - 1e-5

    @given(_MATRIX)
    def test_min_score_respected(self, matrix):
        unit = normalize_rows(matrix)
        _, _, scores = join_topk(unit, unit, 3, min_score=0.5)
        if scores.shape[0]:
            assert float(scores.min()) >= 0.5


class TestTransferProperties:
    @pytest.fixture(scope="class")
    def planner(self):
        topology = HardwareTopology(
            [xeon_cpu("a"), xeon_cpu("b")], [ethernet_10g("a", "b")])
        return TransferPlanner(topology)

    @given(st.floats(1.0, 1e12))
    @settings(max_examples=50)
    def test_plan_never_worse_than_raw(self, n_bytes):
        topology = HardwareTopology(
            [xeon_cpu("a"), xeon_cpu("b")], [ethernet_10g("a", "b")])
        planner = TransferPlanner(topology)
        plan = planner.plan("a", "b", n_bytes)
        raw_seconds = topology.transfer_seconds("a", "b", n_bytes)
        assert plan.seconds <= raw_seconds * 1.0001

    @given(st.floats(1.0, 1e11), st.floats(1.0, 1e11))
    @settings(max_examples=30)
    def test_time_monotone_in_bytes(self, bytes_a, bytes_b):
        topology = HardwareTopology(
            [xeon_cpu("a"), xeon_cpu("b")], [ethernet_10g("a", "b")])
        planner = TransferPlanner(topology)
        small, large = sorted((bytes_a, bytes_b))
        assert planner.plan("a", "b", small).seconds <= \
            planner.plan("a", "b", large).seconds + 1e-9


class TestAqpProperties:
    @given(st.integers(0, 2**31), st.floats(0.05, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_estimate_inside_own_ci(self, seed, fraction):
        from repro.relational.aqp import ApproximateAggregator
        from repro.storage.table import Table

        rng = np.random.default_rng(seed % (2**31))
        table = Table.from_dict({
            "v": rng.uniform(0, 10, 500).tolist(),
        })
        result = ApproximateAggregator(table, sample_fraction=fraction,
                                       seed=seed % 997).sum("v")
        assert result.ci_low <= result.estimate <= result.ci_high
        assert result.sample_rows <= 500
