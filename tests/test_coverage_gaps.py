"""Tests for less-travelled branches: greedy join ordering, union column
renaming, explain/profiler rendering, multi-key DIP skip, and misc error
paths."""

import numpy as np
import pytest

from repro.engine.explain import explain_plan
from repro.engine.profiler import QueryProfile
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.dip import DataInducedPredicates
from repro.optimizer.join_order import JoinOrderOptimizer
from repro.relational.expressions import col
from repro.relational.logical import (
    FilterNode,
    JoinNode,
    JoinType,
    ProjectNode,
    ScanNode,
    UnionNode,
)
from repro.relational.physical import build_physical, execute_plan
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class TestGreedyJoinOrder:
    def test_greedy_handles_many_relations(self, registry):
        """Beyond dp_relation_limit the greedy path must kick in and
        still produce a connected, correct plan."""
        catalog = Catalog()
        n_relations = 6
        tables = []
        for index in range(n_relations):
            table = Table.from_dict({
                f"k{index}": list(range(10)),
                f"k{index + 1}": list(range(10)),
            })
            name = f"t{index}"
            catalog.register(name, table)
            tables.append(ScanNode(name, table.schema, qualifier=name))
        # chain joins t0-t1-...-t5
        plan = tables[0]
        for index in range(1, n_relations):
            plan = JoinNode(plan, tables[index], JoinType.INNER,
                            [f"t{index - 1}.k{index}"],
                            [f"t{index}.k{index}"])
        estimator = CardinalityEstimator(catalog, registry)
        cost_model = CostModel(estimator)
        optimizer = JoinOrderOptimizer(estimator, cost_model,
                                       dp_relation_limit=3)
        reordered = optimizer.run(plan)
        context = __import__(
            "repro.relational.physical", fromlist=["ExecutionContext"]
        ).ExecutionContext(catalog=catalog, models=registry)
        assert execute_plan(reordered, context).num_rows == \
            execute_plan(plan, context).num_rows == 10

    def test_dp_equals_greedy_results(self, registry):
        catalog = Catalog()
        a = Table.from_dict({"x": [1, 2, 3], "y": [1, 1, 2]})
        b = Table.from_dict({"y": [1, 2], "z": [10, 20]})
        c = Table.from_dict({"z": [10, 20, 30], "w": [0, 1, 2]})
        for name, table in [("a", a), ("b", b), ("c", c)]:
            catalog.register(name, table)
        scan_a = ScanNode("a", a.schema, qualifier="a")
        scan_b = ScanNode("b", b.schema, qualifier="b")
        scan_c = ScanNode("c", c.schema, qualifier="c")
        plan = JoinNode(JoinNode(scan_a, scan_b, JoinType.INNER,
                                 ["a.y"], ["b.y"]),
                        scan_c, JoinType.INNER, ["b.z"], ["c.z"])
        estimator = CardinalityEstimator(catalog, registry)
        cost_model = CostModel(estimator)
        context = __import__(
            "repro.relational.physical", fromlist=["ExecutionContext"]
        ).ExecutionContext(catalog=catalog, models=registry)
        dp_plan = JoinOrderOptimizer(estimator, cost_model,
                                     dp_relation_limit=10).run(plan)
        greedy_plan = JoinOrderOptimizer(estimator, cost_model,
                                         dp_relation_limit=2).run(plan)
        # join reordering may permute column order; compare row contents
        rows = lambda p: sorted(
            str(sorted(r.items()))
            for r in execute_plan(p, context).to_rows())
        assert rows(dp_plan) == rows(greedy_plan) == rows(plan)


class TestUnionRenaming:
    def test_union_renames_mismatched_batches(self, context, catalog,
                                              products_table):
        renamed = products_table.renamed({"pid": "id"})
        catalog.register("renamed_products", renamed)
        left = ScanNode("products", products_table.schema)
        right_raw = ScanNode("renamed_products", renamed.schema)
        right = ProjectNode(right_raw, [
            (col(c), c) for c in renamed.schema.names])
        # align column names through projection aliasing
        right = ProjectNode(right_raw, [
            (col("id"), "pid"), (col("ptype"), "ptype"),
            (col("price"), "price"), (col("brand"), "brand")])
        plan = UnionNode([left, right])
        result = execute_plan(plan, context)
        assert result.num_rows == 2 * products_table.num_rows


class TestExplainAndProfile:
    def test_explain_without_estimator(self, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        text = explain_plan(FilterNode(scan, col("p.price") > 1))
        assert "Filter" in text
        assert "rows~" not in text

    def test_explain_with_cost(self, catalog, registry, products_table):
        estimator = CardinalityEstimator(catalog, registry)
        cost_model = CostModel(estimator)
        scan = ScanNode("products", products_table.schema, qualifier="p")
        text = explain_plan(FilterNode(scan, col("p.price") > 1),
                            estimator, cost_model)
        assert "rows~" in text and "cost~" in text

    def test_profile_pretty_renders_tree(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = FilterNode(scan, col("p.price") > 1)
        root = build_physical(plan, context)
        root.execute()
        profile = QueryProfile.from_tree(root, 0.001)
        text = profile.pretty()
        assert "FilterOp" in text and "ScanOp" in text
        assert "ms" in text

    def test_profile_depth_tracks_nesting(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = FilterNode(FilterNode(scan, col("p.price") > 1),
                          col("p.price") < 1000)
        root = build_physical(plan, context)
        root.execute()
        profile = QueryProfile.from_tree(root, 0.001)
        depths = [op.depth for op in profile.operators]
        assert depths == [0, 1, 2]


class TestDipEdgeCases:
    def test_multi_key_join_skipped(self, registry, context, catalog):
        left = Table.from_dict({"a": [1, 2], "b": ["x", "y"],
                                "v": [1, 2]})
        right = Table.from_dict({"a": [1], "b": ["x"], "w": [10]})
        catalog.register("dip_l", left)
        catalog.register("dip_r", right)
        plan = JoinNode(ScanNode("dip_l", left.schema, qualifier="l"),
                        ScanNode("dip_r", right.schema, qualifier="r"),
                        JoinType.INNER, ["l.a", "l.b"], ["r.a", "r.b"])
        estimator = CardinalityEstimator(catalog, registry)
        dip = DataInducedPredicates(estimator, context, row_limit=64,
                                    min_probe_build_ratio=1.0)
        rewritten = dip.run(plan)
        assert dip.applied == 0  # multi-key equi joins are not rewritten
        assert execute_plan(rewritten, context).num_rows == 1

    def test_left_join_not_rewritten(self, registry, context, catalog,
                                     products_table, kb_table):
        plan = JoinNode(ScanNode("products", products_table.schema,
                                 qualifier="p"),
                        ScanNode("kb", kb_table.schema, qualifier="k"),
                        JoinType.LEFT, ["p.ptype"], ["k.label"])
        estimator = CardinalityEstimator(catalog, registry)
        dip = DataInducedPredicates(estimator, context, row_limit=64)
        dip.run(plan)
        assert dip.applied == 0


class TestMiscErrorPaths:
    def test_error_hierarchy(self):
        from repro import errors

        for name in ["SchemaError", "CatalogError", "ExpressionError",
                     "PlanError", "OptimizerError", "ExecutionError",
                     "ModelError", "ParseError", "BindError",
                     "IntegrationError", "HardwareError", "SourceError"]:
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_parse_error_carries_position(self):
        from repro.errors import ParseError

        error = ParseError("boom", position=17)
        assert error.position == 17

    def test_table_row_accessor(self, products_table):
        row = products_table.row(2)
        assert row["ptype"] == "sedan"

    def test_schema_repr_readable(self, products_table):
        assert "ptype:string" in repr(products_table.schema)

    def test_physical_walk(self, context, products_table):
        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = FilterNode(scan, col("p.price") > 1)
        root = build_physical(plan, context)
        labels = [op.label() for op in root.walk()]
        assert labels == ["FilterOp", "ScanOp"]

    def test_batch_boundary_semantics(self, context, products_table):
        """batch_size=1 must agree with batch_size=big for every op."""
        from dataclasses import replace

        scan = ScanNode("products", products_table.schema, qualifier="p")
        plan = FilterNode(scan, col("p.price") > 10)
        tiny = replace(context, batch_size=1)
        big = replace(context, batch_size=10_000)
        assert execute_plan(plan, tiny).num_rows == \
            execute_plan(plan, big).num_rows
