"""Tests for adaptive mid-query re-optimization."""

import pytest

from repro.engine.adaptive import AdaptiveExecutor
from repro.engine.session import Session
from repro.relational.expressions import col
from repro.storage.table import Table
from repro.utils.rng import make_rng


@pytest.fixture()
def session():
    rng = make_rng(13)
    n = 2_000
    # heavily skewed ptype: uniform-NDV estimates will be wrong for the
    # common value and for rare values
    types = (["sneakers"] * 90 + ["parka"] * 5 + ["sedan"] * 2
             + ["kitten", "blazer", "apple"])
    session = Session(seed=7)
    session.register_table("products", Table.from_dict({
        "pid": list(range(n)),
        "ptype": [types[int(i)] for i in rng.integers(0, len(types), n)],
        "price": rng.uniform(1, 100, n).tolist(),
    }))
    session.register_table("kb", Table.from_dict({
        "label": ["shoes", "jacket", "car", "fruit"],
        "category": ["clothes", "clothes", "vehicle", "food"],
    }))
    return session


def _query_plan(session, ptype: str):
    products = session.table("products", alias="p")
    kb = session.table("kb", alias="k")
    return (products
            .filter(col("p.ptype") == ptype)
            .semantic_join(kb, "p.ptype", "k.label", threshold=0.9)
            .plan)


class TestAdaptiveExecution:
    def test_results_match_standard_execution(self, session):
        plan = _query_plan(session, "sneakers")
        adaptive = AdaptiveExecutor(session)
        result, report = adaptive.execute(plan)
        standard = session.execute(_query_plan(session, "sneakers"))
        assert result.num_rows == standard.num_rows

    def test_detects_underestimate_on_skew(self, session):
        """'ptype = sneakers' matches ~90% of rows but the uniform-NDV
        estimate says ~1/6 — a big deviation the checkpoint must catch."""
        plan = _query_plan(session, "sneakers")
        adaptive = AdaptiveExecutor(session, deviation_factor=3.0)
        _, report = adaptive.execute(plan)
        assert report.actual_inputs is not None
        assert report.deviation > 3.0
        assert report.reoptimized

    def test_no_reoptimization_when_estimates_good(self, session):
        """A predicate whose selectivity matches the uniform assumption
        should not trigger re-planning."""
        products = session.table("products", alias="p")
        kb = session.table("kb", alias="k")
        plan = (products
                .filter(col("p.price") > 50)  # histogram gets this right
                .semantic_join(kb, "p.ptype", "k.label", threshold=0.9)
                .plan)
        adaptive = AdaptiveExecutor(session, deviation_factor=4.0)
        _, report = adaptive.execute(plan)
        assert report.deviation <= 4.0
        assert not report.reoptimized

    def test_temp_tables_cleaned_up(self, session):
        plan = _query_plan(session, "sneakers")
        adaptive = AdaptiveExecutor(session)
        adaptive.execute(plan)
        assert not [name for name in session.catalog.names()
                    if name.startswith("__adaptive")]

    def test_plans_without_semantic_join_pass_through(self, session):
        plan = (session.table("products", alias="p")
                .filter(col("p.price") > 50)
                .plan)
        adaptive = AdaptiveExecutor(session)
        result, report = adaptive.execute(plan)
        assert report.checked_node is None
        assert result.num_rows > 0

    def test_report_records_methods(self, session):
        plan = _query_plan(session, "sneakers")
        adaptive = AdaptiveExecutor(session, deviation_factor=3.0)
        _, report = adaptive.execute(plan)
        assert report.method_before is not None
        assert report.method_after is not None
