"""Row-id plumbing tests: index-cache identity on arena row-id sets, the
explicit index-id -> value-position mapping, and the parallel subword
kernels' parity with the serial path."""

import numpy as np
import pytest

from repro.embeddings.subword import subword_ids, subword_ids_batch
from repro.relational.logical import ScanNode, SemanticJoinNode
from repro.relational.physical import ExecutionContext, execute_plan
from repro.semantic.index_cache import IndexCache
from repro.semantic.join import (
    expand_index_matches,
    join_blocked,
    join_parallel,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.parallel import chunk_bounds, kernel_workers, \
    resolve_workers


class TestIndexCacheIdentity:
    """Fingerprints key on sorted arena row-id sets: multiplicity- and
    order-insensitive, collision-resistant, no value re-hashing."""

    def test_duplicate_multiplicity_hits(self, cache):
        index_cache = IndexCache()
        first = index_cache.get("brute", ["shoes", "shoes", "jacket"],
                                cache)
        second = index_cache.get(
            "brute", ["jacket", "shoes", "jacket", "jacket"], cache)
        assert first is second
        assert index_cache.hits == 1
        assert index_cache.misses == 1
        assert len(index_cache) == 1

    def test_no_xor_pair_cancellation_collision(self, cache):
        # the old XOR fingerprint cancelled values appearing an even
        # number of times: ["alpha", "alpha"] and ["beta", "beta"] both
        # XOR-digested to 0 with equal unique counts, colliding
        index_cache = IndexCache()
        first = index_cache.get("brute", ["alpha", "alpha"], cache)
        second = index_cache.get("brute", ["beta", "beta"], cache)
        assert first is not second
        assert index_cache.misses == 2
        assert index_cache.hits == 0

    def test_no_collision_on_cancelled_quads(self, cache):
        # {x, y} each twice vs {p, q} each twice: both XOR to 0 with two
        # unique values — the crafted 4-element collision of the old
        # scheme
        index_cache = IndexCache()
        first = index_cache.get("brute", ["x", "y", "x", "y"], cache)
        second = index_cache.get("brute", ["p", "q", "p", "q"], cache)
        assert first is not second
        assert index_cache.misses == 2

    def test_order_insensitive(self, cache):
        index_cache = IndexCache()
        first = index_cache.get("brute", ["a", "b", "c"], cache)
        second = index_cache.get("brute", ["c", "a", "b"], cache)
        assert first is second

    def test_normalization_collapse_shares_entry(self, cache):
        # distinct raw strings with equal normalized tokens occupy one
        # arena row, so they fingerprint identically
        index_cache = IndexCache()
        first = index_cache.get("brute", ["Dog", "cat"], cache)
        second = index_cache.get("brute", ["dog", "  CAT  "], cache)
        assert first is second
        assert index_cache.hits == 1

    def test_arena_clear_invalidates_entries(self, cache):
        index_cache = IndexCache()
        first = index_cache.get("brute", ["dog"], cache)
        cache.clear()
        # "bird" now interns to row id 0, the id "dog" used to hold; the
        # generation in the fingerprint keeps the stale index unreachable
        second = index_cache.get("brute", ["bird"], cache)
        assert first is not second
        assert index_cache.misses == 2

    def test_distinct_cache_instances_never_alias(self, model):
        from repro.semantic.cache import EmbeddingCache

        # two fresh arenas for one model both number their strings from
        # row id 0; the globally unique generation token keeps their
        # (identical-looking) id sets from colliding in the key
        index_cache = IndexCache()
        cache_a = EmbeddingCache(model)
        cache_b = EmbeddingCache(model)
        first, _ = index_cache.get_for_values(
            "brute", ["apple", "banana"], cache_a)
        second, _ = index_cache.get_for_values(
            "brute", ["car", "train"], cache_b)
        assert first is not second
        assert index_cache.misses == 2
        assert index_cache.hits == 0

    def test_arena_clear_evicts_stale_entries(self, cache):
        index_cache = IndexCache()
        index_cache.get("brute", ["dog"], cache)
        index_cache.get("lsh", ["dog", "cat"], cache)
        cache.clear()
        # stale-generation entries can never hit again; the next build
        # for this model drops them instead of leaking index copies
        index_cache.get("brute", ["bird"], cache)
        assert len(index_cache) == 1

    def test_live_sibling_caches_do_not_thrash(self, model):
        from repro.semantic.cache import EmbeddingCache

        # two live arenas of one model sharing an IndexCache: eviction
        # only targets retired generations, so the siblings' entries
        # coexist and both keep hitting
        index_cache = IndexCache()
        cache_a = EmbeddingCache(model)
        cache_b = EmbeddingCache(model)
        first_a, _ = index_cache.get_for_values("brute", ["apple"], cache_a)
        first_b, _ = index_cache.get_for_values("brute", ["pear"], cache_b)
        again_a, _ = index_cache.get_for_values("brute", ["apple"], cache_a)
        again_b, _ = index_cache.get_for_values("brute", ["pear"], cache_b)
        assert first_a is again_a and first_b is again_b
        assert index_cache.hits == 2
        assert index_cache.misses == 2
        assert len(index_cache) == 2

    def test_index_rows_follow_sorted_id_order(self, cache):
        index_cache = IndexCache()
        # interned out of order: "b" gets a lower row id than "a"
        cache.row_ids(["b", "a"])
        index, unique_ids = index_cache.get_for_ids(
            "brute", cache.row_ids(["a", "b"]), cache)
        assert unique_ids.tolist() == sorted(unique_ids.tolist())
        assert np.allclose(index.vectors, cache.rows_for(unique_ids),
                           atol=1e-6)

    def test_unknown_kind(self, cache):
        with pytest.raises(Exception):
            IndexCache().get("btree", ["a"], cache)


class TestIndexIdMapping:
    """Probe ids map back to caller value positions explicitly — the
    duplicate-input contract the old first-appearance scheme silently
    violated."""

    def test_get_for_values_positions(self, cache):
        index_cache = IndexCache()
        values = ["shoes", "jacket", "shoes", "Jacket"]
        index, positions = index_cache.get_for_values("brute", values,
                                                      cache)
        assert positions.shape == (4,)
        assert positions[0] == positions[2]      # duplicate value
        assert positions[1] == positions[3]      # normalization collapse
        assert index.size == 2
        for value, q in zip(values, positions):
            expected = cache.rows_for(cache.row_ids([value]))[0]
            assert np.allclose(index.vectors[int(q)], expected, atol=1e-6)

    def test_expand_matches_one_to_one_gather(self):
        positions = np.asarray([2, 0, 1], dtype=np.int64)  # a permutation
        li = np.asarray([0, 0, 1], dtype=np.int64)
        qi = np.asarray([0, 2, 1], dtype=np.int64)
        scores = np.asarray([0.9, 0.8, 0.7], dtype=np.float32)
        el, er, es = expand_index_matches(li, qi, scores, positions, 3)
        assert el.tolist() == [0, 0, 1]
        assert er.tolist() == [1, 0, 2]
        assert np.allclose(es, scores)

    def test_expand_matches_duplicates(self):
        # value positions 0 and 2 share index id 0; position 1 owns id 1
        positions = np.asarray([0, 1, 0], dtype=np.int64)
        li = np.asarray([5, 6], dtype=np.int64)
        qi = np.asarray([0, 1], dtype=np.int64)
        scores = np.asarray([0.9, 0.8], dtype=np.float32)
        el, er, es = expand_index_matches(li, qi, scores, positions, 2)
        assert el.tolist() == [5, 5, 6]
        assert er.tolist() == [0, 2, 1]
        assert np.allclose(es, [0.9, 0.9, 0.8])

    def test_expand_matches_empty(self):
        el, er, es = expand_index_matches(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float32), np.asarray([0, 0], np.int64), 1)
        assert el.shape == (0,) and er.shape == (0,) and es.shape == (0,)

    def test_expand_matches_random_against_loop(self, rng):
        for _ in range(25):
            n_values = int(rng.integers(1, 12))
            n_index = int(rng.integers(1, n_values + 1))
            positions = rng.integers(0, n_index, n_values).astype(np.int64)
            # ensure every index id owns at least one value position
            positions[:n_index] = np.arange(n_index)
            n_matches = int(rng.integers(0, 8))
            li = rng.integers(0, 5, n_matches).astype(np.int64)
            qi = rng.integers(0, n_index, n_matches).astype(np.int64)
            scores = rng.random(n_matches).astype(np.float32)
            el, er, es = expand_index_matches(li, qi, scores, positions,
                                              n_index)
            expected = []
            for m in range(n_matches):
                for v in range(n_values):
                    if positions[v] == qi[m]:
                        expected.append((int(li[m]), v, float(scores[m])))
            got = list(zip(el.tolist(), er.tolist(),
                           [round(s, 6) for s in es.tolist()]))
            expected = [(left, v, round(s, 6)) for left, v, s in expected]
            assert sorted(got) == sorted(expected)

    def test_operator_index_join_duplicates_match_blocked(self, registry):
        # right side carries duplicated and normalization-collapsed
        # values; the index path must produce exactly the blocked
        # kernel's row-level pairs
        catalog = Catalog()
        left = Table.from_dict({
            "pid": [1, 2, 3],
            "ptype": ["sneakers", "parka", "sedan"],
        })
        right = Table.from_dict({
            "kid": [10, 11, 12, 13, 14],
            "label": ["shoes", "jacket", "shoes", "Jacket", "car"],
        })
        catalog.register("products", left)
        catalog.register("kb", right)
        context = ExecutionContext(catalog=catalog, models=registry)

        def run(method):
            plan = SemanticJoinNode(
                ScanNode("products", left.schema, qualifier="p"),
                ScanNode("kb", right.schema, qualifier="k"),
                "p.ptype", "k.label", "wiki-ft-100", 0.9)
            plan.hints["method"] = method
            rows = execute_plan(plan, context).to_rows()
            return sorted((r["p.pid"], r["k.kid"],
                           round(r["similarity"], 5)) for r in rows)

        reference = run("blocked")
        assert len(reference) >= 4   # sneakers~shoes x2, parka~jacket x2
        assert run("index:brute") == reference

    def test_operator_topk_index_duplicates(self, registry):
        catalog = Catalog()
        left = Table.from_dict({"pid": [1], "ptype": ["sneakers"]})
        right = Table.from_dict({
            "kid": [10, 11, 12],
            "label": ["shoes", "shoes", "sedan"],
        })
        catalog.register("products", left)
        catalog.register("kb", right)
        context = ExecutionContext(catalog=catalog, models=registry)
        plan = SemanticJoinNode(
            ScanNode("products", left.schema, qualifier="p"),
            ScanNode("kb", right.schema, qualifier="k"),
            "p.ptype", "k.label", "wiki-ft-100", 0.9, top_k=1)
        plan.hints["method"] = "index:brute"
        rows = execute_plan(plan, context).to_rows()
        # top-1 in distinct-embedding space expands to both duplicate rows
        assert sorted(r["k.kid"] for r in rows) == [10, 11]

    def test_topk_method_consistent_under_collapse(self, registry):
        # "Shoes" and "shoes" are raw-distinct but embedding-identical;
        # top-k must not depend on which access path the optimizer picks
        catalog = Catalog()
        left = Table.from_dict({"pid": [1], "ptype": ["sneakers"]})
        right = Table.from_dict({
            "kid": [10, 11, 12],
            "label": ["shoes", "Shoes", "boots"],
        })
        catalog.register("products", left)
        catalog.register("kb", right)
        context = ExecutionContext(catalog=catalog, models=registry)

        def run(method):
            plan = SemanticJoinNode(
                ScanNode("products", left.schema, qualifier="p"),
                ScanNode("kb", right.schema, qualifier="k"),
                "p.ptype", "k.label", "wiki-ft-100", 0.0, top_k=2)
            plan.hints["method"] = method
            rows = execute_plan(plan, context).to_rows()
            return sorted((r["p.pid"], r["k.kid"],
                           round(r["similarity"], 5)) for r in rows)

        assert run("blocked") == run("index:brute")


class TestCacheFailureSafety:
    def test_transient_embed_failure_does_not_poison_cache(self, model):
        from repro.semantic.cache import EmbeddingCache

        cache = EmbeddingCache(model)
        original = model.embed_batch
        calls = {"n": 0}

        def flaky(texts, workers=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise MemoryError("transient")
            return original(texts)

        cache.model = type(model)(
            name=model.name, vocab=model.vocab,
            word_vectors=model.word_vectors,
            bucket_vectors=model.bucket_vectors)
        cache.model.embed_batch = flaky
        with pytest.raises(MemoryError):
            cache.matrix(["hello", "world"])
        assert len(cache) == 0   # nothing interned by the failed call
        retried = cache.matrix(["hello", "world"])
        assert np.allclose(retried, model.embed_batch(["hello", "world"]),
                           atol=1e-6)


class TestParallelSubwordKernels:
    def test_subword_ids_batch_worker_parity(self):
        # 1280 words: above the shared min-items gate, so workers > 1
        # genuinely exercises the pooled owner-aligned chunking
        words = ["sneakers", "golden retriever", "", "a", "café latte",
                 "xyzzy12", "q1z9", "dog dog dog"] * 160
        serial_ids, serial_owners = subword_ids_batch(words)
        for workers in (0, 1, 2, 4):
            ids, owners = subword_ids_batch(words, workers=workers)
            assert (np.diff(owners) >= 0).all()
            assert np.array_equal(np.sort(owners), np.sort(serial_owners))
            for index in range(16):   # spot-check the first two cycles
                mine = np.sort(ids[owners == index])
                assert np.array_equal(mine, np.sort(
                    serial_ids[serial_owners == index])), (workers, index)
                assert np.array_equal(
                    mine, np.sort(subword_ids(words[index])))
            # full-array multiset parity across the batch
            assert np.array_equal(
                np.sort(ids + owners * 1_000_003),
                np.sort(serial_ids + serial_owners * 1_000_003))

    def test_embed_batch_parallel_parity(self, model, monkeypatch):
        import repro.embeddings.model as model_module

        vocab = sorted(model.vocab)
        texts = ([f"{a} {b}" for a, b in zip(vocab[:40], vocab[5:45])]
                 + [w[1:] + w[:1] for w in vocab[:30]]   # misspellings
                 + [f"{w} q{i}z" for i, w in enumerate(vocab[:30])])
        serial = model.embed_batch(texts)
        monkeypatch.setattr(model_module, "PARALLEL_MIN_TOKENS", 1)
        monkeypatch.setattr(model, "parallelism", 3)
        parallel = model.embed_batch(texts)
        assert np.allclose(serial, parallel, atol=1e-6)

    def test_embed_batch_zero_and_one_worker_edge(self, model,
                                                  monkeypatch):
        import repro.embeddings.model as model_module

        texts = ["sneakers", "golden retriever", "sneekers", ""]
        reference = model.embed_batch(texts)
        monkeypatch.setattr(model_module, "PARALLEL_MIN_TOKENS", 1)
        for workers in (0, 1):
            monkeypatch.setattr(model, "parallelism", workers)
            assert np.allclose(model.embed_batch(texts), reference,
                               atol=1e-6)

    def test_kernel_workers_thresholds(self):
        assert kernel_workers(4, 10, min_items=100) == 1   # too small
        assert kernel_workers(1, 10_000) == 1              # serial config
        assert kernel_workers(0, 10_000) == 1
        assert kernel_workers(4, 10_000) == 4
        assert kernel_workers(8, 4, min_items=1) == 4      # capped by n

    def test_chunk_bounds_partition(self):
        assert chunk_bounds(0, 4) == []
        assert chunk_bounds(5, 2) == [(0, 3), (3, 5)]
        bounds = chunk_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(stop > start for start, stop in bounds)
        assert all(bounds[i][1] == bounds[i + 1][0]
                   for i in range(len(bounds) - 1))


class TestSessionParallelism:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        assert resolve_workers(-2) >= 1

    def test_session_resolves_and_threads_parallelism(self):
        from repro.engine.session import Session

        session = Session(parallelism=3)
        assert session.context.parallelism == 3
        # cost model sees the real worker count (not the hardcoded 4)
        assert session.optimizer_config.cost_params.workers == 3
        # the session-owned cache threads it into every batch embed,
        # without mutating the (possibly shared) model object
        assert session.embedding_cache().parallelism == 3
        model = session.models.get(session.default_model_name)
        assert model.parallelism == 1

    def test_session_default_is_cpu_derived(self):
        from repro.engine.session import Session
        from repro.utils.parallel import default_parallelism

        session = Session(load_default_model=False)
        assert session.context.parallelism == default_parallelism()
        assert (session.optimizer_config.cost_params.workers
                == default_parallelism())

    def test_explicit_config_without_workers_still_synced(self):
        from repro.engine.session import Session
        from repro.optimizer.optimizer import OptimizerConfig

        # a config passed to toggle rules must not silently keep the
        # standalone modeling default worker count
        config = OptimizerConfig(enable_dip=False)
        session = Session(load_default_model=False,
                          optimizer_config=config, parallelism=2)
        assert session.optimizer_config.cost_params.workers == 2

    def test_shared_config_not_mutated_across_sessions(self):
        from repro.engine.session import Session
        from repro.optimizer.optimizer import OptimizerConfig

        shared = OptimizerConfig()
        first = Session(load_default_model=False,
                        optimizer_config=shared, parallelism=2)
        second = Session(load_default_model=False,
                         optimizer_config=shared, parallelism=5)
        assert shared.cost_params.workers is None   # caller's object intact
        assert first.optimizer_config.cost_params.workers == 2
        assert second.optimizer_config.cost_params.workers == 5

    def test_cache_accepts_generators(self, cache):
        cache.prefetch(t for t in ["dog", "cat"])
        assert cache.rows == 2
        matrix = cache.matrix(t for t in ["dog", "cat"])
        assert matrix.shape == (2, cache.model.dim)

    def test_explicitly_tuned_workers_honored(self):
        from repro.engine.session import Session
        from repro.optimizer.cost import CostParams
        from repro.optimizer.optimizer import OptimizerConfig

        config = OptimizerConfig(cost_params=CostParams(workers=7))
        session = Session(load_default_model=False,
                          optimizer_config=config, parallelism=2)
        assert session.optimizer_config.cost_params.workers == 7

    def test_bare_cost_params_use_modeled_default(self):
        from repro.optimizer.cost import (
            CostParams,
            DEFAULT_MODELED_WORKERS,
            semantic_join_method_cost,
        )

        # standalone cost studies (workers unspecified) keep the modeled
        # default instead of degrading to this machine's core count
        params = CostParams()
        explicit = CostParams(workers=DEFAULT_MODELED_WORKERS)
        assert (semantic_join_method_cost(params, 50_000, 50_000,
                                          "parallel").total
                == semantic_join_method_cost(explicit, 50_000, 50_000,
                                             "parallel").total)

    def test_join_parallel_default_workers(self, model):
        left = model.embed_batch(["sneakers", "parka"])
        right = model.embed_batch(["shoes", "jacket", "car"])
        reference = join_blocked(left, right, 0.9)
        for workers in (None, 0, 1, 2):
            li, ri, scores = join_parallel(left, right, 0.9, block=1,
                                           workers=workers)
            assert np.array_equal(li, reference[0])
            assert np.array_equal(ri, reference[1])
            assert np.allclose(scores, reference[2], atol=1e-6)
