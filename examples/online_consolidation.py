"""On-the-fly result consolidation and online cleaning (Figure 3, §IV).

Three tasks that normally need a domain expert, done automatically:

1. consolidating a dirty label column (synonyms, misspellings, casing),
2. deduplicating records whose names are context-equivalent,
3. repairing functional-dependency violations where the "conflict" is
   just synonymy (query-driven repair, ref [12]).

Run:  python examples/online_consolidation.py
"""

from repro.embeddings.pretrained import build_pretrained_model
from repro.integration.consolidation import ResultConsolidator, pairwise_f1
from repro.integration.entity_resolution import EntityResolver
from repro.integration.fd_repair import (
    FunctionalDependency,
    repair_fd_violations,
)
from repro.semantic.cache import EmbeddingCache
from repro.storage.table import Table
from repro.workloads.labels import DirtyLabelWorkload


def main() -> None:
    model = build_pretrained_model(seed=7)
    cache = EmbeddingCache(model)

    # --- 1. consolidate dirty labels -------------------------------------
    labels, truth = DirtyLabelWorkload(n=300, seed=59).generate()
    consolidator = ResultConsolidator(cache, threshold=0.85)
    report = consolidator.consolidate(labels)
    precision, recall, f1 = pairwise_f1(report.mapping, truth)
    print(f"consolidated {len(set(labels))} distinct dirty labels into "
          f"{report.n_clusters} groups (pairwise F1 {f1:.2f})")
    shown = 0
    for representative, members in report.clusters.items():
        if len(members) >= 4:
            print(f"  {representative!r:14s} <- {members[:5]}")
            shown += 1
        if shown == 4:
            break

    # --- 2. embedding-based deduplication --------------------------------
    listings = Table.from_dict({
        "listing": ["nike sneakers", "nike trainers", "leather couch",
                    "leather sofa", "mountain bicycle", "mountain bike"],
        "price": [89.0, 91.0, 450.0, 440.0, 900.0, 880.0],
    })
    resolver = EntityResolver(cache, threshold=0.75)
    entity_ids = resolver.deduplicate(listings, "listing")
    print("\ndeduplicated listings (entity ids):")
    for row, entity in zip(listings.to_rows(), entity_ids):
        print(f"  entity {entity}:  {row['listing']:18s} {row['price']}")

    # --- 3. query-driven FD repair ----------------------------------------
    catalog_rows = Table.from_dict({
        "sku": [100, 100, 100, 200, 200],
        "category": ["boots", "sneakers", "boots", "sedan", "windbreaker"],
        "stock": [5, 8, 2, 1, 3],
    })
    fd = FunctionalDependency(("sku",), "category")
    repaired, repair_report = repair_fd_violations(catalog_rows, fd, cache,
                                                   semantic_threshold=0.9)
    print(f"\nFD {fd}: {repair_report.violating_groups} violating groups, "
          f"{repair_report.semantic_consolidations} resolved as synonymy, "
          f"{repair_report.majority_repairs} by majority vote")
    for row in repaired.to_rows():
        print(f"  sku {row['sku']}: category={row['category']}")


if __name__ == "__main__":
    main()
