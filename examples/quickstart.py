"""Quickstart: a context-rich query in a dozen lines.

Registers a product table and a knowledge base whose vocabularies don't
exactly match (synonyms!), then joins them *semantically* — the thing a
plain equi-join cannot do.  Shows both the SQL dialect and the
dataframe-style builder, plus EXPLAIN and the execution profile.

Run:  python examples/quickstart.py
"""

from repro.core import ContextRichEngine
from repro.relational.expressions import col
from repro.storage.table import Table


def main() -> None:
    engine = ContextRichEngine(seed=7)

    # --- 1. register data with mismatched vocabularies -----------------
    engine.register_table("products", Table.from_dict({
        "pid": [1, 2, 3, 4, 5],
        "ptype": ["sneakers", "parka", "sedan", "kitten", "blazer"],
        "price": [49.0, 120.0, 19_000.0, 300.0, 75.0],
    }))
    engine.register_table("kb", Table.from_dict({
        "label": ["shoes", "jacket", "car", "cat"],
        "category": ["clothes", "clothes", "vehicle", "animal"],
    }))

    # --- 2. exact join finds NOTHING (the paper's motivation) ----------
    exact = engine.sql("""
        SELECT p.ptype, k.label FROM products AS p
        JOIN kb AS k ON p.ptype = k.label
    """)
    print(f"exact join matches: {exact.num_rows}  (vocabulary mismatch!)")

    # --- 3. semantic join resolves synonyms automatically --------------
    semantic = engine.sql("""
        SELECT p.ptype, k.label, k.category, similarity
        FROM products AS p
        SEMANTIC JOIN kb AS k
            ON p.ptype ~ k.label USING MODEL 'wiki-ft-100' THRESHOLD 0.9
        WHERE p.price > 20
        ORDER BY similarity DESC
    """)
    print(f"semantic join matches: {semantic.num_rows}")
    for row in semantic.to_rows():
        print(f"  {row['p.ptype']:10s} ~ {row['k.label']:8s} "
              f"({row['k.category']}, cosine={row['similarity']:.3f})")

    # --- 4. the same query through the builder API ----------------------
    products = engine.table("products", alias="p")
    kb = engine.table("kb", alias="k")
    result = (products
              .filter(col("p.price") > 20)
              .semantic_join(kb, "p.ptype", "k.label", threshold=0.9)
              .select("p.ptype", "k.category")
              .execute())
    print(f"\nbuilder API returned {result.num_rows} rows "
          "(same plan IR underneath)")

    # --- 5. look inside: optimized plan + profile -----------------------
    print("\nEXPLAIN (optimized):")
    print(engine.explain("""
        SELECT p.ptype FROM products AS p
        SEMANTIC JOIN kb AS k ON p.ptype ~ k.label THRESHOLD 0.9
        WHERE p.price > 20
    """))
    print("\nlast profile:")
    print(engine.last_profile.pretty())


if __name__ == "__main__":
    main()
