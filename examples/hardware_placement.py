"""Hardware-conscious placement of a context-rich plan (Figure 5, §VI).

Builds an inference-heavy semantic query, places it on three simulated
topologies under different policies, and prints the per-operator device
assignment and simulated timelines chosen by the cost-based optimizer.

Run:  python examples/hardware_placement.py
"""

from repro.embeddings.registry import default_registry
from repro.hardware.placement import PlacementOptimizer
from repro.hardware.simulator import ExecutionSimulator
from repro.hardware.topology import standard_topologies
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParams
from repro.relational.expressions import AggExpr, AggFunc, col
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    ScanNode,
    SemanticJoinNode,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.wiki_strings import WikiStringWorkload


def build_plan(catalog: Catalog):
    reviews = WikiStringWorkload(n=20_000, seed=29,
                                 unique_texts=True).side("left")
    labels = Table.from_dict({
        "label": ["shoes", "jacket", "dog", "car", "fruit"],
        "category": ["clothes", "clothes", "animal", "vehicle", "food"],
    })
    catalog.register("reviews", reviews)
    catalog.register("labels", labels)
    scan_reviews = ScanNode("reviews", reviews.schema, qualifier="r")
    scan_labels = ScanNode("labels", labels.schema, qualifier="l")
    filtered = FilterNode(scan_reviews, col("r.views") >= 500_000)
    join = SemanticJoinNode(filtered, scan_labels, "r.text", "l.label",
                            "wiki-ft-100", 0.7)
    return AggregateNode(join, ["l.category"],
                         [AggExpr(AggFunc.COUNT, None, "mentions")])


def main() -> None:
    catalog = Catalog()
    plan = build_plan(catalog)
    estimator = CardinalityEstimator(catalog, default_registry())
    # encoder-class model: ~100x fastText per-token cost (§VI scenario)
    cost_model = CostModel(estimator, CostParams(embed_token=20_000.0))

    for name, topology in standard_topologies().items():
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        placement = optimizer.place(plan)
        result = simulator.simulate(plan, placement)
        print(f"== topology {name} ==")
        print(placement.describe(plan))
        print(f"simulated makespan: {result.makespan * 1e3:.2f} ms; "
              f"bytes moved: {result.bytes_transferred / 1e6:.1f} MB")
        utilization = ", ".join(
            f"{device}={fraction:.0%}"
            for device, fraction in sorted(result.utilization().items()))
        print(f"utilization: {utilization}\n")


if __name__ == "__main__":
    main()
