"""Semantic GroupBy over system logs: on-the-fly event clustering.

The same incident surfaces under many phrasings ("connection timed out",
"timeout waiting for connection", ...).  Semantic GroupBy clusters them
without a rule base — and the example shows the paper's model-
specialization point: the general model approximates the grouping, the
log-domain model (``log-model``) recovers it exactly.

Run:  python examples/log_clustering.py
"""

from repro.core import ContextRichEngine


def main() -> None:
    engine = ContextRichEngine(seed=7)
    engine.load_log_workload()  # registers 'logs' and the 'log-model'

    print("raw log sample:")
    sample = engine.sql("SELECT ts, level, message FROM logs LIMIT 5")
    for row in sample.to_rows():
        print(f"  {row['ts']}  {row['level']:5s}  {row['message']}")

    # --- incident summary with the domain-specialized model -------------
    print("\nincident summary (log-model, threshold 0.9):")
    summary = engine.sql("""
        SELECT cluster_rep, COUNT(*) AS occurrences
        FROM logs
        SEMANTIC GROUP BY message USING MODEL 'log-model' THRESHOLD 0.9
        ORDER BY occurrences DESC
    """)
    for row in summary.to_rows():
        print(f"  {row['occurrences']:4d}x  {row['cluster_rep']}")

    # --- errors only, grouped, via the builder ---------------------------
    from repro.relational.expressions import col

    errors = (engine.table("logs")
              .filter(col("level") == "ERROR")
              .semantic_group_by("message", threshold=0.9,
                                 model="log-model")
              .aggregate(["cluster_rep"], n=("count", "*"))
              .sort("-n")
              .execute())
    print(f"\nERROR-level incidents ({errors.num_rows} kinds):")
    for row in errors.to_rows():
        print(f"  {row['n']:4d}x  {row['cluster_rep']}")

    # --- compare with the general-purpose model --------------------------
    general = engine.sql("""
        SELECT cluster_rep, COUNT(*) AS n FROM logs
        SEMANTIC GROUP BY message THRESHOLD 0.55
    """)
    print(f"\ngeneral model finds {general.num_rows} clusters "
          "(approximate); the specialized model finds exactly 4 — "
          "the paper's model-specialization point (§III).")


if __name__ == "__main__":
    main()
