"""Minimal serving-layer demo: one server, two concurrent clients.

Spins up an :class:`~repro.server.EngineServer` over the retail
workload, drives it from two client threads issuing the same repeated
statements (dashboard style), and prints the aggregate serving metrics:
plan-cache hits (repeated SQL skips the whole frontend), per-tenant
queue waits, and the shared embedding-arena hit rates.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server import EngineServer
from repro.workloads.retail import RetailWorkload

STATEMENTS = [
    "SELECT brand, COUNT(*) AS n FROM products GROUP BY brand "
    "ORDER BY brand",
    "SELECT name FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.8 "
    "ORDER BY name",
    "SELECT p.name, k.object FROM products AS p "
    "SEMANTIC JOIN kb.category AS k ON p.ptype ~ k.subject "
    "THRESHOLD 0.9 ORDER BY p.name, k.object",
]


def client_loop(server: EngineServer, tenant: str, rounds: int) -> None:
    client = server.session(tenant)
    for _ in range(rounds):
        for statement in STATEMENTS:
            client.sql(statement)
    profile = client.last_profile
    print(f"  {tenant}: last query lane={profile.lane} "
          f"plan-cache-hit={profile.plan_cache_hit} "
          f"result-cache-hit={profile.result_cache_hit} "
          f"queue-wait={profile.queue_wait_seconds * 1e3:.2f} ms")


def main() -> None:
    workload = RetailWorkload(n_products=300, n_users=100,
                              n_transactions=1_000, n_images=100, seed=7)
    with EngineServer() as server:
        workload.register_into(server.state.catalog, detect=False)

        # warm in two full passes: the first computes statistics (each
        # computation retires cached plans), the second re-caches every
        # statement under the stable catalog version
        warmup = server.session("warmup")
        for _ in range(2):
            for statement in STATEMENTS:
                warmup.sql(statement)

        print("two clients, concurrent repeated workload:")
        threads = [
            threading.Thread(target=client_loop,
                             args=(server, tenant, 5))
            for tenant in ("dashboard-a", "dashboard-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # interactive refinement: tightening a warmed semantic filter is
        # answered residually from the cached super-result (subsumption),
        # not by re-running the embedding kernels
        analyst = server.session("analyst")
        analyst.sql("SELECT name FROM products WHERE ptype ~ 'shoes' "
                    "THRESHOLD 0.85 ORDER BY name")
        print(f"\n  analyst: refined threshold 0.8 -> 0.85, "
              f"reuse-hit={analyst.last_profile.reuse_hit}")

        metrics = server.metrics()
        plan = metrics["plan_cache"]
        sched = metrics["scheduler"]
        print("\nserver metrics:")
        print(f"  plan cache: {plan['hits']} hits / {plan['misses']} "
              f"misses (hit rate {plan['hit_rate']:.1%}, "
              f"{plan['entries']} entries, {plan['families']} families)")
        results = metrics["result_cache"]
        print(f"  result cache: {results['hits']} hits / "
              f"{results['misses']} misses "
              f"(hit rate {results['hit_rate']:.1%}, "
              f"{results['entries']} entries, {results['bytes']} bytes, "
              f"{results['stale_evictions']} stale-swept); "
              f"{sched['result_cache_noops']} executions skipped")
        reuse = metrics["reuse"]
        print(f"  semantic reuse: {reuse['hits']} residual answers / "
              f"{reuse['probes']} probes ({reuse['entries']} entries "
              f"in {reuse['families']} families, "
              f"{reuse['fallbacks']} fallbacks)")
        print(f"  scheduler: {sched['admitted']} admitted on "
              f"{sched['workers']} worker(s), mean queue wait "
              f"{sched['queue_wait_seconds_mean'] * 1e3:.2f} ms")
        for tenant, stats in sched["tenants"].items():
            lanes = stats["by_lane"]
            print(f"    {tenant}: {stats['queries']} queries "
                  f"(interactive {lanes['interactive']}, "
                  f"heavy {lanes['heavy']}), "
                  f"{stats['plan_cache_hits']} plan-cache hits")
        for model_name, arena in metrics["embedding_arenas"].items():
            print(f"  arena[{model_name}]: {arena['rows']} rows, "
                  f"hit rate {arena['hit_rate']:.1%}")
        index = metrics["vector_index_cache"]
        print(f"  vector indexes: {index['entries']} cached, "
              f"{index['builds']} built, {index['hits']} hits "
              f"({index['single_flight_waits']} coalesced)")


if __name__ == "__main__":
    main()
