"""Adaptive re-optimization and approximate query processing (§VI).

Two of the paper's "just-in-time" mechanisms:

1. **Adaptive execution** — the engine checkpoints at a pipeline breaker,
   compares actual vs estimated cardinalities (here a skewed predicate
   fools the uniform-NDV estimate), and re-optimizes the rest of the plan
   against materialized reality.
2. **Sampling-based AQP** — aggregate answers with confidence intervals
   from a fraction of the data (ref [28]).

Run:  python examples/adaptive_and_approximate.py
"""

from repro.engine.adaptive import AdaptiveExecutor
from repro.engine.session import Session
from repro.relational.aqp import ApproximateAggregator
from repro.relational.expressions import col
from repro.storage.table import Table
from repro.utils.rng import make_rng


def build_session() -> Session:
    rng = make_rng(13)
    n = 5_000
    # 90% of products are sneakers: a uniform-NDV estimator will be wrong
    skewed = ["sneakers"] * 90 + ["parka", "sedan", "kitten", "blazer",
                                  "apple"] * 2
    session = Session(seed=7)
    session.register_table("products", Table.from_dict({
        "pid": list(range(n)),
        "ptype": [skewed[int(i)] for i in rng.integers(0, len(skewed), n)],
        "price": rng.uniform(1, 100, n).tolist(),
    }))
    session.register_table("kb", Table.from_dict({
        "label": ["shoes", "jacket", "car", "fruit"],
        "category": ["clothes", "clothes", "vehicle", "food"],
    }))
    return session


def main() -> None:
    session = build_session()

    # --- 1. adaptive execution -------------------------------------------
    plan = (session.table("products", alias="p")
            .filter(col("p.ptype") == "sneakers")   # actually ~90% of rows!
            .semantic_join(session.table("kb", alias="k"),
                           "p.ptype", "k.label", threshold=0.9)
            .plan)
    adaptive = AdaptiveExecutor(session, deviation_factor=3.0)
    result, report = adaptive.execute(plan)
    print("adaptive checkpoint at:", report.checked_node)
    print(f"  estimated inputs: {report.estimated_inputs[0]:,.0f} x "
          f"{report.estimated_inputs[1]:,.0f}")
    print(f"  actual inputs:    {report.actual_inputs[0]:,} x "
          f"{report.actual_inputs[1]:,}")
    print(f"  deviation {report.deviation:.1f}x -> "
          f"{'re-optimized' if report.reoptimized else 'kept plan'} "
          f"(method {report.method_before} -> {report.method_after}); "
          f"{result.num_rows} result rows")

    # --- 2. approximate aggregation ---------------------------------------
    products = session.catalog.get("products")
    aggregator = ApproximateAggregator(products, sample_fraction=0.05,
                                       seed=11)
    exact_revenue = float(products.column("price").sum())
    approx_revenue = aggregator.sum("price")
    print(f"\nexact SUM(price):  {exact_revenue:,.2f}  (full scan)")
    print(f"approx SUM(price): {approx_revenue}  "
          f"(truth inside CI: {approx_revenue.contains(exact_revenue)})")

    count = aggregator.count(col("price") > 50)
    exact_count = int((products.column("price") > 50).sum())
    print(f"approx COUNT(price>50): {count}  "
          f"(exact {exact_count:,}, inside CI: "
          f"{count.contains(exact_count)})")


if __name__ == "__main__":
    main()
