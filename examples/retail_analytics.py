"""The paper's motivating example (Figure 2), end to end.

An online shopping platform with three sources — RDBMS, knowledge base,
customer images behind an object detector — answering:

    "Which clothing products priced above 20 appear in customer images
     taken after 2022-06-01 where more than two objects appear?"

Shows the declarative query, what the optimizer does to it (pushdowns +
data-induced predicates + access-path choice), and the price of getting
the orchestration wrong (detection on the full corpus).

Run:  python examples/retail_analytics.py
"""

from repro.core import ContextRichEngine
from repro.polystore.image_store import ObjectDetectionModel
from repro.storage.types import date_to_int
from repro.workloads.retail import RetailWorkload

QUERY = """
SELECT p.name, p.price, d.image_id, d.label, d.object_count
FROM products AS p
SEMANTIC JOIN kb.category AS k
    ON p.ptype ~ k.subject USING MODEL 'wiki-ft-100' THRESHOLD 0.9
SEMANTIC JOIN images.detections AS d
    ON p.ptype ~ d.label USING MODEL 'wiki-ft-100' THRESHOLD 0.8
WHERE p.price > 20
  AND k.object = 'clothes'
  AND d.date_taken > DATE '2022-06-01'
  AND d.object_count > 2
ORDER BY p.price DESC
LIMIT 10
"""


def main() -> None:
    workload = RetailWorkload(n_products=400, n_users=150,
                              n_transactions=1_500, n_images=200, seed=7)
    engine = ContextRichEngine(seed=7)
    engine.load_retail_workload(workload)

    print("Sources:", ", ".join(engine.catalog.names()), "\n")

    # --- the declarative query ------------------------------------------
    result = engine.sql(QUERY)
    print(f"top matches ({result.num_rows} rows shown):")
    for row in result.to_rows():
        print(f"  {row['p.name']:28s} {row['p.price']:8.2f}  "
              f"image #{row['d.image_id']:<4d} detected "
              f"{row['d.label']!r} among {row['d.object_count']} objects")

    # --- what the optimizer did ------------------------------------------
    print("\noptimized plan:")
    print(engine.explain(QUERY))

    # --- the cost of bad orchestration: detection before the date filter --
    store = workload.image_store()
    cutoff = date_to_int("2022-06-01")
    eager = ObjectDetectionModel(thesaurus=workload.thesaurus, seed=5)
    store.detect_table(eager)
    lazy = ObjectDetectionModel(thesaurus=workload.thesaurus, seed=5)
    store.detect_table(lazy, after_date=cutoff)
    print(f"\nobject-detection inference: {eager.images_processed} images "
          f"without pushdown vs {lazy.images_processed} with the date "
          f"filter pushed below the model "
          f"({eager.simulated_seconds - lazy.simulated_seconds:.1f}s of "
          "simulated model time saved)")


if __name__ == "__main__":
    main()
