"""Model-assisted semantic operators (paper §IV).

Three operator extensions, each a first-class plan node executed like any
relational operator:

- **Semantic Select** — context-based filtering
  (``word = "Clothes" USING MODEL "M" WITH COSINE THRESHOLD >= 0.9``),
- **Semantic Join** — joining relations on join-key *context* (latent-space
  distance between key embeddings),
- **Semantic GroupBy** — on-the-fly clustering of a column by similarity
  threshold.

The join ships the full physical ladder of the paper's Figure 4 — from the
deliberately naive per-pair Python loop to prefetched, row-kernel, blocked
(BLAS), parallel, and index-accelerated variants — plus syntactic
baselines (edit distance, Jaccard) for the Figure 3 comparison.
"""

from repro.semantic.cache import EmbeddingCache
from repro.semantic.index_cache import IndexCache
from repro.semantic.join import (
    expand_index_matches,
    join_blocked,
    join_index,
    join_nested_loop,
    join_parallel,
    join_prefetched,
    join_python_eager,
    join_quantized_reranked,
    join_rowkernel,
    SEMANTIC_JOIN_METHODS,
)
from repro.semantic.select import semantic_any_mask, semantic_select_mask
from repro.semantic.groupby import cluster_strings
from repro.semantic.topk import join_topk, join_topk_index
from repro.semantic.baselines import (
    edit_similarity_join,
    jaccard_similarity,
    jaccard_similarity_join,
    levenshtein,
    normalized_edit_similarity,
)

__all__ = [
    "EmbeddingCache",
    "IndexCache",
    "expand_index_matches",
    "join_blocked",
    "join_index",
    "join_nested_loop",
    "join_parallel",
    "join_prefetched",
    "join_python_eager",
    "join_quantized_reranked",
    "join_rowkernel",
    "SEMANTIC_JOIN_METHODS",
    "semantic_any_mask",
    "semantic_select_mask",
    "cluster_strings",
    "join_topk",
    "join_topk_index",
    "edit_similarity_join",
    "jaccard_similarity",
    "jaccard_similarity_join",
    "levenshtein",
    "normalized_edit_similarity",
]
