"""Top-k semantic join: each probe row matches its k most similar keys.

The threshold join (Figure 4) answers "all pairs above tau"; many
context-rich pipelines instead want "the best k matches per row" (the §V
"top-k searches" the paper says must join the optimization process).
Backed by either a full GEMM or any :class:`~repro.vector.index.VectorIndex`.
"""

from __future__ import annotations

import numpy as np

from repro.vector.index import VectorIndex
from repro.vector.topk import top_k_indices

JoinPairs = tuple[np.ndarray, np.ndarray, np.ndarray]


def join_topk(left_matrix: np.ndarray, right_matrix: np.ndarray, k: int,
              min_score: float = -1.0) -> JoinPairs:
    """Exact top-k join via one GEMM; optional score floor.

    The top-k selection runs batched over all probe rows at once
    (``np.argpartition(axis=1)`` + ``take_along_axis``), not row by row.
    """
    similarity = left_matrix @ right_matrix.T
    n_left, n_right = similarity.shape
    k = min(int(k), n_right)
    if k <= 0 or n_left == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.float32))
    if k == n_right:
        top = np.argsort(-similarity, axis=1, kind="stable")
    else:
        candidates = np.argpartition(-similarity, k - 1, axis=1)[:, :k]
        candidate_scores = np.take_along_axis(similarity, candidates,
                                              axis=1)
        order = np.argsort(-candidate_scores, axis=1, kind="stable")
        top = np.take_along_axis(candidates, order, axis=1)
    top_scores = np.take_along_axis(similarity, top, axis=1)
    keep = (top_scores >= min_score).ravel()
    left_idx = np.repeat(np.arange(n_left, dtype=np.int64), k)[keep]
    right_idx = top.ravel()[keep].astype(np.int64)
    scores = top_scores.ravel()[keep].astype(np.float32)
    return left_idx, right_idx, scores


def join_topk_index(left_matrix: np.ndarray, index: VectorIndex, k: int,
                    min_score: float = -1.0) -> JoinPairs:
    """Top-k join probing a prebuilt index (ANN or brute)."""
    left_idx: list[np.ndarray] = []
    right_idx: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    for row in range(left_matrix.shape[0]):
        result = index.search(left_matrix[row], k)
        keep = result.scores >= min_score
        ids, row_scores = result.ids[keep], result.scores[keep]
        if ids.shape[0]:
            left_idx.append(np.full(ids.shape[0], row, dtype=np.int64))
            right_idx.append(ids.astype(np.int64))
            scores.append(row_scores.astype(np.float32))
    if not left_idx:
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.float32))
    return (np.concatenate(left_idx), np.concatenate(right_idx),
            np.concatenate(scores))
