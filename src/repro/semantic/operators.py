"""Physical operators for the semantic plan nodes.

These subclass the same :class:`~repro.relational.physical.PhysicalOperator`
as relational operators — a semantic join *is* a join to the executor, the
paper's central integration requirement.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import ExecutionError
from repro.relational.physical import PhysicalOperator, _combine
from repro.semantic.cache import EmbeddingCache
from repro.semantic.groupby import cluster_strings
from repro.semantic.join import (
    SEMANTIC_JOIN_METHODS,
    join_nested_loop,
    join_parallel,
    join_prefetched,
)
from repro.semantic.select import semantic_any_mask, semantic_select_mask
from repro.storage.schema import Schema
from repro.storage.table import Table


class SemanticSemiFilterOp(PhysicalOperator):
    """Streaming disjunctive semantic filter (any-probe match)."""

    def __init__(self, child: PhysicalOperator, column: str,
                 probes: list[str], cache: EmbeddingCache, threshold: float,
                 schema: Schema):
        super().__init__(schema, (child,))
        self.column = column
        self.probes = probes
        self.cache = cache
        self.threshold = threshold

    def _batches(self) -> Iterator[Table]:
        for batch in self.children[0].batches():
            values = batch.column(self.column)
            mask, _ = semantic_any_mask(values, self.probes, self.cache,
                                        self.threshold)
            if mask.any():
                yield batch.filter(mask)


class SemanticFilterOp(PhysicalOperator):
    """Streaming semantic select: per-batch probe-similarity mask."""

    def __init__(self, child: PhysicalOperator, column: str, probe: str,
                 cache: EmbeddingCache, threshold: float,
                 score_alias: str | None, schema: Schema,
                 mode: str = "value"):
        super().__init__(schema, (child,))
        self.column = column
        self.probe = probe
        self.cache = cache
        self.threshold = threshold
        self.score_alias = score_alias
        self.mode = mode

    def _batches(self) -> Iterator[Table]:
        from repro.semantic.select import semantic_contains_mask

        kernel = (semantic_contains_mask if self.mode == "contains"
                  else semantic_select_mask)
        for batch in self.children[0].batches():
            values = batch.column(self.column)
            mask, scores = kernel(values, self.probe,
                                  self.cache, self.threshold)
            if not mask.any():
                continue
            filtered = batch.filter(mask)
            if self.score_alias:
                columns = dict(filtered.columns)
                columns[self.score_alias] = scores[mask].astype(np.float64)
                filtered = Table(self.schema, columns)
            yield filtered


class SemanticJoinOp(PhysicalOperator):
    """Semantic join: dedup key values, run a similarity kernel, expand.

    ``method`` picks the physical strategy (see
    :mod:`repro.semantic.join`); the optimizer sets it via plan hints.
    """

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_column: str, right_column: str, cache: EmbeddingCache,
                 threshold: float, score_alias: str, schema: Schema,
                 method: str = "blocked", parallelism: int | None = None,
                 top_k: int | None = None, index_cache=None,
                 aux_alias: str | None = None):
        super().__init__(schema, (left, right))
        self.left_column = left_column
        self.right_column = right_column
        self.cache = cache
        self.threshold = threshold
        self.score_alias = score_alias
        self.method = method
        self.parallelism = parallelism
        self.top_k = top_k
        self.index_cache = index_cache
        self.aux_alias = aux_alias

    def _batches(self) -> Iterator[Table]:
        left = self.children[0].execute()
        right = self.children[1].execute()
        if left.num_rows == 0 or right.num_rows == 0:
            return
        left_unique, left_groups = _group_rows(left.column(self.left_column))
        right_unique, right_groups = _group_rows(
            right.column(self.right_column))
        if not left_unique or not right_unique:
            return

        ranks = None
        if self.top_k is not None:
            ul, ur, scores, ranks = self._match_topk(left_unique,
                                                     right_unique)
        else:
            ul, ur, scores = self._match(left_unique, right_unique)
        if ul.shape[0] == 0:
            return

        left_idx, right_idx, all_scores, pair_index = _expand_pairs(
            ul, ur, scores, left_groups, right_groups,
            return_pair_index=True)

        n_aux = 2 if self.aux_alias is not None else 0
        combined_schema = Schema(
            list(self.schema.fields)[:len(self.schema.fields) - 1 - n_aux])
        combined = _combine(left.take(left_idx), right.take(right_idx),
                            combined_schema)
        columns = dict(combined.columns)
        columns[self.score_alias] = all_scores
        if self.aux_alias is not None:
            # group = left-distinct id, rank = pair position within the
            # group's descending-score top-k selection; expanded rows of
            # one pair share both (the reuse residual's truncation keys)
            columns[f"{self.aux_alias}_group"] = \
                ul[pair_index].astype(np.int64)
            group_ranks = (ranks if ranks is not None
                           else np.zeros(ul.shape[0], dtype=np.int64))
            columns[f"{self.aux_alias}_rank"] = \
                group_ranks[pair_index].astype(np.int64)
        yield Table(self.schema, columns)

    def _match(self, left_unique: list[str], right_unique: list[str]):
        if self.method == "nested_loop":
            return join_nested_loop(left_unique, right_unique,
                                    self.cache.model, self.threshold)
        if self.method == "prefetched":
            return join_prefetched(left_unique, right_unique,
                                   self.cache.model, self.threshold)
        left_matrix = self.cache.matrix(left_unique)
        if self.method.startswith("index:") and self.index_cache is not None:
            # session-level index reuse: built once per (model, row-id
            # set), fingerprinted on ids — no value re-hashing
            from repro.semantic.join import expand_index_matches, join_index

            kind = self.method.split(":", 1)[1]
            index, positions = self.index_cache.get_for_values(
                kind, right_unique, self.cache)
            li, qi, scores = join_index(left_matrix, None, self.threshold,
                                        index=index)
            return expand_index_matches(li, qi, scores, positions,
                                        index.size)
        right_matrix = self.cache.matrix(right_unique)
        if self.method == "parallel":
            return join_parallel(left_matrix, right_matrix, self.threshold,
                                 workers=self.parallelism)
        kernel: Callable | None = SEMANTIC_JOIN_METHODS.get(self.method)
        if kernel is None:
            raise ExecutionError(
                f"unknown semantic join method {self.method!r}; available: "
                f"nested_loop, prefetched, "
                f"{', '.join(sorted(SEMANTIC_JOIN_METHODS))}"
            )
        return kernel(left_matrix, right_matrix, self.threshold)

    def _match_topk(self, left_unique: list[str], right_unique: list[str]):
        from repro.semantic.join import expand_index_matches
        from repro.semantic.topk import join_topk, join_topk_index

        # both access paths select top-k in *distinct-embedding* space
        # and expand to all value positions sharing an arena row, so the
        # optimizer's method choice cannot change the result: values that
        # collapse to one embedding all join (may exceed k matches)
        cache = self.cache
        left_matrix = cache.matrix(left_unique)
        if self.method.startswith("index:") and self.index_cache is not None:
            kind = self.method.split(":", 1)[1]
            index, positions = self.index_cache.get_for_values(
                kind, right_unique, cache)
            li, qi, scores = join_topk_index(left_matrix, index, self.top_k,
                                             min_score=self.threshold)
            n_index = index.size
        else:
            unique_ids, positions = np.unique(cache.row_ids(right_unique),
                                              return_inverse=True)
            li, qi, scores = join_topk(left_matrix,
                                       cache.rows_for(unique_ids),
                                       self.top_k,
                                       min_score=self.threshold)
            n_index = unique_ids.shape[0]
        # pair rank inside each left row's selection: both kernels emit
        # left-major with per-row scores descending and the min_score
        # mask cutting a per-row *suffix*, so ranks are dense from 0
        ranks = _ranks_within_runs(li)
        expanded_li, value_idx, expanded_scores, pair_index = \
            expand_index_matches(li, qi, scores, positions, n_index,
                                 return_pair_index=True)
        return (expanded_li, value_idx, expanded_scores,
                ranks[pair_index] if ranks.shape[0] else ranks)


class SemanticGroupByOp(PhysicalOperator):
    """Semantic group-by: cluster the column, append id + representative."""

    def __init__(self, child: PhysicalOperator, column: str,
                 cache: EmbeddingCache, threshold: float, cluster_alias: str,
                 representative_alias: str, schema: Schema):
        super().__init__(schema, (child,))
        self.column = column
        self.cache = cache
        self.threshold = threshold
        self.cluster_alias = cluster_alias
        self.representative_alias = representative_alias

    def _batches(self) -> Iterator[Table]:
        table = self.children[0].execute()
        if table.num_rows == 0:
            return
        values = [v if v is not None else "" for v in
                  table.column(self.column)]
        clustering = cluster_strings(values, self.cache, self.threshold)
        representatives = np.asarray(
            [clustering.representatives[int(label)]
             for label in clustering.labels],
            dtype=object)
        columns = dict(table.columns)
        columns[self.cluster_alias] = clustering.labels
        columns[self.representative_alias] = representatives
        yield Table(self.schema, columns)


def _group_rows(values: np.ndarray) -> tuple[list[str], list[np.ndarray]]:
    """Unique non-null values and, aligned with them, the row indices
    holding each — computed with one ``np.unique(return_inverse=True)``
    pass instead of a Python dict-of-lists loop."""
    values = np.asarray(values, dtype=object)
    present = np.not_equal(values, None)
    row_indices = np.nonzero(present)[0].astype(np.int64)
    if row_indices.size == 0:
        return [], []
    unique, inverse = np.unique(values[present], return_inverse=True)
    counts = np.bincount(inverse, minlength=unique.shape[0])
    order = np.argsort(inverse, kind="stable")
    groups = np.split(row_indices[order], np.cumsum(counts)[:-1])
    return [str(value) for value in unique], groups


def _ranks_within_runs(run_ids: np.ndarray) -> np.ndarray:
    """Position of each element inside its run of equal ``run_ids``.

    ``run_ids`` must be run-contiguous (the left-major pair emission
    order); ranks restart at 0 on every run boundary.
    """
    n = run_ids.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    index = np.arange(n, dtype=np.int64)
    new_run = np.concatenate(([True], run_ids[1:] != run_ids[:-1]))
    run_starts = np.maximum.accumulate(np.where(new_run, index, 0))
    return index - run_starts


def _expand_pairs(ul: np.ndarray, ur: np.ndarray, scores: np.ndarray,
                  left_groups: list[np.ndarray],
                  right_groups: list[np.ndarray],
                  return_pair_index: bool = False):
    """Expand matched unique-value pairs to row-level join output.

    Counts-based ``np.repeat``/``np.concatenate`` expansion (no per-pair
    Python loop): for pair ``p`` every left row repeats ``|right group|``
    times against the right group cycled ``|left group|`` times —
    the same (left-major, right-minor) order the join has always emitted.
    The all-distinct case (every group a single row) is a pure gather.

    With ``return_pair_index`` a fourth array maps each output row back
    to the input-pair position it expanded from (for per-pair metadata
    like the reuse ranks).
    """
    left_counts = np.fromiter((g.shape[0] for g in left_groups),
                              dtype=np.int64, count=len(left_groups))
    right_counts = np.fromiter((g.shape[0] for g in right_groups),
                               dtype=np.int64, count=len(right_groups))
    pair_left = left_counts[ul]
    pair_right = right_counts[ur]
    if (pair_left == 1).all() and (pair_right == 1).all():
        left_firsts = np.fromiter((g[0] for g in left_groups),
                                  dtype=np.int64, count=len(left_groups))
        right_firsts = np.fromiter((g[0] for g in right_groups),
                                   dtype=np.int64, count=len(right_groups))
        result = (left_firsts[ul], right_firsts[ur],
                  scores.astype(np.float64))
        if return_pair_index:
            return (*result, np.arange(ul.shape[0], dtype=np.int64))
        return result

    sizes = pair_left * pair_right
    left_cat = np.concatenate([left_groups[int(i)] for i in ul])
    left_idx = np.repeat(left_cat, np.repeat(pair_right, pair_left))
    right_cat = np.concatenate([right_groups[int(j)] for j in ur])
    total = int(sizes.sum())
    block_starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    offset_in_block = (np.arange(total, dtype=np.int64)
                       - np.repeat(block_starts, sizes))
    right_starts = np.concatenate(([0], np.cumsum(pair_right)[:-1]))
    right_idx = right_cat[np.repeat(right_starts, sizes)
                          + offset_in_block % np.repeat(pair_right, sizes)]
    all_scores = np.repeat(scores.astype(np.float64), sizes)
    if return_pair_index:
        pair_index = np.repeat(np.arange(ul.shape[0], dtype=np.int64),
                               sizes)
        return left_idx, right_idx, all_scores, pair_index
    return left_idx, right_idx, all_scores
