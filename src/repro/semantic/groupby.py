"""Semantic GroupBy kernel: on-the-fly threshold clustering.

Greedy leader clustering over unit embeddings: scan values (most frequent
first, then lexicographic — deterministic), assign each to the best
existing leader above the threshold or open a new cluster with itself as
leader.  The leader string doubles as the cluster *representative*, which
is what on-the-fly result consolidation (Figure 3) surfaces to the user.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.semantic.cache import EmbeddingCache


@dataclass
class Clustering:
    """Result of clustering a value list."""

    labels: np.ndarray          # cluster id per input value
    representatives: list[str]  # cluster id -> representative string
    n_clusters: int

    def representative_of(self, value_index: int) -> str:
        return self.representatives[int(self.labels[value_index])]


def cluster_strings(values, cache: EmbeddingCache,
                    threshold: float) -> Clustering:
    """Cluster strings by embedding similarity >= ``threshold``."""
    values = list(values)
    if not values:
        return Clustering(np.empty(0, dtype=np.int64), [], 0)

    frequency = Counter(values)
    unique = sorted(frequency, key=lambda v: (-frequency[v], v))
    matrix = cache.matrix(unique)

    leader_rows: list[int] = []
    unique_labels = np.full(len(unique), -1, dtype=np.int64)
    for row in range(len(unique)):
        if leader_rows:
            sims = matrix[leader_rows] @ matrix[row]
            best = int(np.argmax(sims))
            if float(sims[best]) >= threshold:
                unique_labels[row] = best
                continue
        unique_labels[row] = len(leader_rows)
        leader_rows.append(row)

    representatives = [unique[row] for row in leader_rows]
    # broadcast unique-value labels back to every row in one vectorized
    # inverse-gather instead of a per-row dict lookup loop
    sorted_unique, inverse = np.unique(np.asarray(values, dtype=object),
                                       return_inverse=True)
    label_for_sorted = np.empty(sorted_unique.shape[0], dtype=np.int64)
    positions = np.searchsorted(sorted_unique, np.asarray(unique,
                                                          dtype=object))
    label_for_sorted[positions] = unique_labels
    labels = label_for_sorted[inverse]
    return Clustering(labels, representatives, len(representatives))
