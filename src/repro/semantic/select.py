"""Semantic Select kernel: context-based filtering.

``semantic_select_mask`` is the vectorized heart: embed the probe phrase
once, embed the column (through the cache), and keep rows whose cosine
clears the threshold.
"""

from __future__ import annotations

import numpy as np

from repro.semantic.cache import EmbeddingCache


def _present(values) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized null mask: (object array of values, present bool mask)."""
    array = np.asarray(values, dtype=object)
    return array, np.not_equal(array, None)


def semantic_select_mask(values, probe: str, cache: EmbeddingCache,
                         threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """Boolean mask and scores for ``cosine(values[i], probe) >= threshold``.

    ``None`` values never match.
    """
    probe_vector = cache.vector(probe)
    array, present = _present(values)
    scores = np.zeros(len(array), dtype=np.float32)
    if present.any():
        matrix = cache.matrix(array[present])
        scores[present] = matrix @ probe_vector
    mask = scores >= threshold
    return mask, scores


def semantic_contains_mask(values, probe: str, cache: EmbeddingCache,
                           threshold: float) -> tuple[np.ndarray,
                                                      np.ndarray]:
    """Mask/scores for free text: does ANY token of ``values[i]`` clear
    ``cosine(token, probe) >= threshold``?

    The free-text variant of Semantic Select — "review mentions clothes"
    — where whole-string embedding would wash the signal out across
    filler tokens.  Token embeddings are fetched once per distinct token.
    """
    from repro.utils.text import tokenize

    probe_vector = cache.vector(probe)
    tokenized = [tokenize(value) if value is not None else []
                 for value in values]
    # flatten to (row, token-id) pairs so the per-row max runs as one
    # segmented ``np.maximum.at`` instead of a Python loop over rows
    token_of: dict[str, int] = {}
    flat_rows: list[int] = []
    flat_ids: list[int] = []
    for position, tokens in enumerate(tokenized):
        for token in tokens:
            token_id = token_of.setdefault(token, len(token_of))
            flat_rows.append(position)
            flat_ids.append(token_id)
    scores = np.zeros(len(tokenized), dtype=np.float32)
    if token_of:
        token_matrix = cache.matrix(list(token_of))
        token_scores = (token_matrix @ probe_vector).astype(np.float32)
        flat_scores = token_scores[np.asarray(flat_ids, dtype=np.int64)]
        # flat_rows is nondecreasing (built in row order), so the per-row
        # max is a buffered reduceat over contiguous segments — not the
        # much slower unbuffered np.maximum.at
        counts = np.bincount(np.asarray(flat_rows, dtype=np.int64),
                             minlength=len(tokenized))
        has_tokens = counts > 0
        starts = np.concatenate(
            ([0], np.cumsum(counts[has_tokens])))[:-1].astype(np.intp)
        scores[has_tokens] = np.maximum.reduceat(flat_scores, starts)
    mask = scores >= threshold
    return mask, scores


def semantic_any_mask(values, probes: list[str], cache: EmbeddingCache,
                      threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """Mask/scores for ``max_p cosine(values[i], p) >= threshold``.

    The disjunctive (semi-join reduction) variant used by data-induced
    predicates: one GEMM against the probe matrix, max over probes.
    """
    probe_matrix = cache.matrix(probes)
    array, present = _present(values)
    scores = np.zeros(len(array), dtype=np.float32)
    if present.any():
        matrix = cache.matrix(array[present])
        scores[present] = (matrix @ probe_matrix.T).max(axis=1)
    mask = scores >= threshold
    return mask, scores
