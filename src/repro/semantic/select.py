"""Semantic Select kernel: context-based filtering.

``semantic_select_mask`` is the vectorized heart: embed the probe phrase
once, embed the column (through the cache), and keep rows whose cosine
clears the threshold.
"""

from __future__ import annotations

import numpy as np

from repro.semantic.cache import EmbeddingCache


def semantic_select_mask(values, probe: str, cache: EmbeddingCache,
                         threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """Boolean mask and scores for ``cosine(values[i], probe) >= threshold``.

    ``None`` values never match.
    """
    probe_vector = cache.vector(probe)
    present = np.asarray([value is not None for value in values], dtype=bool)
    scores = np.zeros(len(values), dtype=np.float32)
    present_values = [value for value in values if value is not None]
    if present_values:
        matrix = cache.matrix(present_values)
        scores[present] = matrix @ probe_vector
    mask = scores >= threshold
    return mask, scores


def semantic_contains_mask(values, probe: str, cache: EmbeddingCache,
                           threshold: float) -> tuple[np.ndarray,
                                                      np.ndarray]:
    """Mask/scores for free text: does ANY token of ``values[i]`` clear
    ``cosine(token, probe) >= threshold``?

    The free-text variant of Semantic Select — "review mentions clothes"
    — where whole-string embedding would wash the signal out across
    filler tokens.  Token embeddings are fetched once per distinct token.
    """
    from repro.utils.text import tokenize

    probe_vector = cache.vector(probe)
    tokenized = [tokenize(value) if value is not None else []
                 for value in values]
    unique_tokens = sorted({token for tokens in tokenized
                            for token in tokens})
    scores = np.zeros(len(values), dtype=np.float32)
    if unique_tokens:
        token_matrix = cache.matrix(unique_tokens)
        token_scores = dict(zip(unique_tokens,
                                (token_matrix @ probe_vector).tolist()))
        for position, tokens in enumerate(tokenized):
            if tokens:
                scores[position] = max(token_scores[t] for t in tokens)
    mask = scores >= threshold
    return mask, scores


def semantic_any_mask(values, probes: list[str], cache: EmbeddingCache,
                      threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """Mask/scores for ``max_p cosine(values[i], p) >= threshold``.

    The disjunctive (semi-join reduction) variant used by data-induced
    predicates: one GEMM against the probe matrix, max over probes.
    """
    probe_matrix = cache.matrix(probes)
    present = np.asarray([value is not None for value in values], dtype=bool)
    scores = np.zeros(len(values), dtype=np.float32)
    present_values = [value for value in values if value is not None]
    if present_values:
        matrix = cache.matrix(present_values)
        scores[present] = (matrix @ probe_matrix.T).max(axis=1)
    mask = scores >= threshold
    return mask, scores
