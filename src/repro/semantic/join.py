"""Semantic similarity join kernels — the full Figure-4 ladder.

All kernels answer the same question: which pairs ``(i, j)`` of
``left[i]``/``right[j]`` have cosine similarity >= ``threshold`` in the
model's latent space.  They differ *only* in implementation strategy, which
is the entire point of the paper's Figure 4:

===================  ====================================================
kernel               paper rung it reproduces
===================  ====================================================
``join_nested_loop`` naive Python: embeds per pair, pure-Python dot
``join_prefetched``  + data-access optimization (embeddings prefetched
                     into a contiguous matrix; still a Python double loop)
``join_rowkernel``   + "tight code, fewer function calls" (one vectorized
                     kernel call per left row)
``join_blocked``     + "CPU-specific instructions" (float32 BLAS GEMM over
                     blocks — SIMD fused multiply-add inside the kernel)
``join_parallel``    + scale-up (blocks dispatched to a thread pool; BLAS
                     releases the GIL)
``join_index``       index-based access path (LSH / IVF / HNSW / brute),
                     the §V cost-based alternative for selective joins
===================  ====================================================

Matrix-based kernels take pre-normalized embedding matrices (see
:class:`~repro.semantic.cache.EmbeddingCache`); ``join_nested_loop`` and
``join_prefetched`` take raw strings because *how embeddings are fetched*
is part of what they measure.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.embeddings.model import EmbeddingModel
from repro.errors import ExecutionError
from repro.utils.parallel import resolve_workers
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.index import VectorIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.lsh import LSHIndex
from repro.vector.topk import threshold_pairs

JoinPairs = tuple[np.ndarray, np.ndarray, np.ndarray]

DEFAULT_BLOCK = 1024


def _empty_pairs() -> JoinPairs:
    return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float32))


def join_nested_loop(left_values, right_values, model: EmbeddingModel,
                     threshold: float) -> JoinPairs:
    """Naive per-pair join: re-embeds on every access, pure-Python dot.

    This is the paper's left-most Figure-4 bar — the code a data analyst
    writes first.  Complexity O(|L| * |R| * dim) in interpreted Python with
    a model invocation per pair operand.  Intentionally unoptimized.
    """
    left_idx: list[int] = []
    right_idx: list[int] = []
    scores: list[float] = []
    for i, left_value in enumerate(left_values):
        for j, right_value in enumerate(right_values):
            a = model.embed(left_value)
            b = model.embed(right_value)
            total = 0.0
            for k in range(a.shape[0]):  # per-element Python loop, on purpose
                total += float(a[k]) * float(b[k])
            if total >= threshold:
                left_idx.append(i)
                right_idx.append(j)
                scores.append(total)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            np.asarray(scores, dtype=np.float32))


def join_python_eager(left_values, right_values, model: EmbeddingModel,
                      threshold: float) -> JoinPairs:
    """The analyst's first Python program (Figure 4's baseline rungs).

    Embeddings are loaded eagerly into plain Python lists (one model call
    per *distinct* string — "they load the data eagerly"), then matching
    runs as two nested Python loops with a per-dimension Python dot
    product.  Applying or not applying the 1% filter before calling this
    is exactly the pushdown rung of the ladder.
    """
    lookup: dict[str, list[float]] = {}
    for value in list(left_values) + list(right_values):
        if value not in lookup:
            lookup[value] = model.embed(value).tolist()
    left_idx: list[int] = []
    right_idx: list[int] = []
    scores: list[float] = []
    for i, left_value in enumerate(left_values):
        a = lookup[left_value]
        for j, right_value in enumerate(right_values):
            b = lookup[right_value]
            total = 0.0
            for k in range(len(a)):
                total += a[k] * b[k]
            if total >= threshold:
                left_idx.append(i)
                right_idx.append(j)
                scores.append(total)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            np.asarray(scores, dtype=np.float32))


def join_prefetched(left_values, right_values, model: EmbeddingModel,
                    threshold: float) -> JoinPairs:
    """Prefetched join: embeddings fetched once into contiguous matrices.

    Still a Python double loop, but each pair is one ``np.dot`` over rows
    already resident in cache-friendly storage — the "prefetch" rung.
    """
    left_matrix = model.embed_batch(list(left_values))
    right_matrix = model.embed_batch(list(right_values))
    left_idx: list[int] = []
    right_idx: list[int] = []
    scores: list[float] = []
    for i in range(left_matrix.shape[0]):
        row = left_matrix[i]
        for j in range(right_matrix.shape[0]):
            score = float(np.dot(row, right_matrix[j]))
            if score >= threshold:
                left_idx.append(i)
                right_idx.append(j)
                scores.append(score)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            np.asarray(scores, dtype=np.float32))


def join_rowkernel(left_matrix: np.ndarray, right_matrix: np.ndarray,
                   threshold: float) -> JoinPairs:
    """Tight-code join: one vectorized kernel call per left row (GEMV)."""
    left_idx: list[np.ndarray] = []
    right_idx: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    right_t = np.ascontiguousarray(right_matrix.T)
    for i in range(left_matrix.shape[0]):
        row_scores = left_matrix[i] @ right_t
        matches = np.nonzero(row_scores >= threshold)[0]
        if matches.shape[0]:
            left_idx.append(np.full(matches.shape[0], i, dtype=np.int64))
            right_idx.append(matches.astype(np.int64))
            scores.append(row_scores[matches].astype(np.float32))
    if not left_idx:
        return _empty_pairs()
    return (np.concatenate(left_idx), np.concatenate(right_idx),
            np.concatenate(scores))


def join_blocked(left_matrix: np.ndarray, right_matrix: np.ndarray,
                 threshold: float, block: int = DEFAULT_BLOCK) -> JoinPairs:
    """Blocked GEMM join: float32 matrix multiply per block pair ("SIMD")."""
    left_matrix = np.ascontiguousarray(left_matrix, dtype=np.float32)
    right_t = np.ascontiguousarray(right_matrix.astype(np.float32).T)
    left_idx: list[np.ndarray] = []
    right_idx: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    for start in range(0, left_matrix.shape[0], block):
        stop = min(start + block, left_matrix.shape[0])
        similarity = left_matrix[start:stop] @ right_t
        rows, cols, vals = threshold_pairs(similarity, threshold)
        if rows.shape[0]:
            left_idx.append(rows.astype(np.int64) + start)
            right_idx.append(cols.astype(np.int64))
            scores.append(vals.astype(np.float32))
    if not left_idx:
        return _empty_pairs()
    return (np.concatenate(left_idx), np.concatenate(right_idx),
            np.concatenate(scores))


def join_parallel(left_matrix: np.ndarray, right_matrix: np.ndarray,
                  threshold: float, block: int = DEFAULT_BLOCK,
                  workers: int | None = None) -> JoinPairs:
    """Scale-up join: blocked GEMM fanned out to a thread pool.

    NumPy's BLAS kernels release the GIL, so threads give genuine
    parallelism for the multiply; the threshold scan is also per-block.
    ``workers=None`` (or <= 0) resolves to the CPU-derived session
    default; operators pass the session ``parallelism`` setting through.
    """
    workers = resolve_workers(workers)
    left_matrix = np.ascontiguousarray(left_matrix, dtype=np.float32)
    right_t = np.ascontiguousarray(right_matrix.astype(np.float32).T)
    starts = list(range(0, left_matrix.shape[0], block))

    def work(start: int) -> JoinPairs:
        stop = min(start + block, left_matrix.shape[0])
        similarity = left_matrix[start:stop] @ right_t
        rows, cols, vals = threshold_pairs(similarity, threshold)
        return (rows.astype(np.int64) + start, cols.astype(np.int64),
                vals.astype(np.float32))

    if not starts:
        return _empty_pairs()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(work, starts))
    left_idx = [p[0] for p in parts if p[0].shape[0]]
    if not left_idx:
        return _empty_pairs()
    return (np.concatenate(left_idx),
            np.concatenate([p[1] for p in parts if p[0].shape[0]]),
            np.concatenate([p[2] for p in parts if p[0].shape[0]]))


_INDEX_FACTORIES = {
    "brute": lambda seed: BruteForceIndex(),
    "lsh": lambda seed: LSHIndex(seed=seed),
    "ivf": lambda seed: IVFFlatIndex(seed=seed),
    "hnsw": lambda seed: HNSWIndex(seed=seed),
}


def join_index(left_matrix: np.ndarray, right_matrix: np.ndarray,
               threshold: float, kind: str = "lsh", seed: int = 0,
               index: VectorIndex | None = None) -> JoinPairs:
    """Index-accelerated join: build an ANN index on the right side, then
    range-probe it once per left row (§V index-based access path).

    ``kind`` selects among brute / lsh / ivf / hnsw; a prebuilt ``index``
    (e.g. amortized across queries) can be passed instead.
    """
    if index is None:
        factory = _INDEX_FACTORIES.get(kind)
        if factory is None:
            raise ExecutionError(
                f"unknown index kind {kind!r}; "
                f"available: {sorted(_INDEX_FACTORIES)}"
            )
        index = factory(seed)
        index.build(right_matrix)
    left_idx: list[np.ndarray] = []
    right_idx: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    for i in range(left_matrix.shape[0]):
        result = index.range_search(left_matrix[i], threshold)
        if len(result):
            left_idx.append(np.full(len(result), i, dtype=np.int64))
            right_idx.append(result.ids)
            scores.append(result.scores.astype(np.float32))
    if not left_idx:
        return _empty_pairs()
    return (np.concatenate(left_idx), np.concatenate(right_idx),
            np.concatenate(scores))


def expand_index_matches(left_idx: np.ndarray, index_ids: np.ndarray,
                         scores: np.ndarray, positions: np.ndarray,
                         n_index: int, return_pair_index: bool = False):
    """Scatter index-probe matches back onto caller value positions.

    ``positions[v]`` is the index-internal id holding value position
    ``v``'s embedding (the mapping :meth:`IndexCache.get_for_values`
    returns).  An index is built over *distinct arena rows*, so duplicated
    — or normalization-collapsed — values share one index id; treating
    probe ids as value positions (the pre-row-id contract) silently
    mispairs rows whenever that sharing occurs.  Here every match against
    index id ``q`` expands to all value positions mapped to ``q``; the
    1:1 case reduces to a pure gather.

    With ``return_pair_index`` a fourth array maps each output pair back
    to the input-match position it expanded from (per-pair metadata —
    e.g. the reuse subsystem's top-k ranks — rides along through it).
    """
    left_idx = np.asarray(left_idx, dtype=np.int64)
    index_ids = np.asarray(index_ids, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if left_idx.shape[0] == 0:
        if return_pair_index:
            return (*_empty_pairs(), np.empty(0, dtype=np.int64))
        return _empty_pairs()
    counts = np.bincount(positions, minlength=n_index)
    order = np.argsort(positions, kind="stable")
    starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    sizes = counts[index_ids]
    if (sizes == 1).all():
        result = (left_idx, order[starts[index_ids]],
                  scores.astype(np.float32))
        if return_pair_index:
            return (*result, np.arange(left_idx.shape[0], dtype=np.int64))
        return result
    total = int(sizes.sum())
    block_starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    offsets = (np.arange(total, dtype=np.int64)
               - np.repeat(block_starts, sizes))
    value_idx = order[np.repeat(starts[index_ids], sizes) + offsets]
    expanded = (np.repeat(left_idx, sizes), value_idx,
                np.repeat(scores.astype(np.float32), sizes))
    if return_pair_index:
        return (*expanded,
                np.repeat(np.arange(left_idx.shape[0], dtype=np.int64),
                          sizes))
    return expanded


def join_quantized_reranked(left_matrix: np.ndarray,
                            right_matrix: np.ndarray,
                            threshold: float) -> JoinPairs:
    """Low-precision candidate generation + exact re-rank (§VI).

    The int8 pass (4x smaller matrices) over-generates candidates with a
    guard band, then only the candidate pairs are re-scored in float32 —
    the standard low-precision-inference recipe, with exactness preserved.
    """
    from repro.vector.quantization import join_quantized, quantize_rows

    ql = quantize_rows(left_matrix, assume_normalized=True)
    qr = quantize_rows(right_matrix, assume_normalized=True)
    li, ri, _ = join_quantized(ql, qr, threshold)
    if li.shape[0] == 0:
        return _empty_pairs()
    exact = np.einsum("nd,nd->n",
                      left_matrix[li].astype(np.float32),
                      right_matrix[ri].astype(np.float32))
    keep = exact >= threshold
    return (li[keep], ri[keep], exact[keep].astype(np.float32))


#: Matrix-kernel registry used by the physical operator and the optimizer.
SEMANTIC_JOIN_METHODS = {
    "rowkernel": join_rowkernel,
    "blocked": join_blocked,
    "parallel": join_parallel,
    "quantized": join_quantized_reranked,
    "index:brute": lambda l, r, t: join_index(l, r, t, kind="brute"),
    "index:lsh": lambda l, r, t: join_index(l, r, t, kind="lsh"),
    "index:ivf": lambda l, r, t: join_index(l, r, t, kind="ivf"),
    "index:hnsw": lambda l, r, t: join_index(l, r, t, kind="hnsw"),
}
