"""Lowering of semantic logical nodes to physical operators.

Kept in its own module so :mod:`repro.relational.physical` can import it
lazily (relational never depends on semantic at import time).
"""

from __future__ import annotations

from repro.relational.logical import (
    LogicalPlan,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
)
from repro.relational.physical import ExecutionContext, PhysicalOperator
from repro.semantic.cache import EmbeddingCache
from repro.semantic.operators import (
    SemanticFilterOp,
    SemanticGroupByOp,
    SemanticJoinOp,
    SemanticSemiFilterOp,
)

#: Default physical strategy when the optimizer left no hint.
DEFAULT_JOIN_METHOD = "blocked"


def cache_for(context: ExecutionContext, model_name: str) -> EmbeddingCache:
    """Session-lifetime embedding cache per model."""
    if context.embedding_cache is None:
        context.embedding_cache = {}
    caches: dict = context.embedding_cache  # type: ignore[assignment]
    if model_name not in caches:
        caches[model_name] = EmbeddingCache(
            context.model(model_name), parallelism=context.parallelism)
    return caches[model_name]


def build_semantic_physical(plan: LogicalPlan, context: ExecutionContext,
                            recurse) -> PhysicalOperator:
    """Lower one semantic node (children lowered via ``recurse``)."""
    if isinstance(plan, SemanticFilterNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticFilterOp(child, plan.column, plan.probe, cache,
                                plan.threshold, plan.score_alias,
                                plan.schema, mode=plan.mode)
    if isinstance(plan, SemanticJoinNode):
        left = recurse(plan.left, context)
        right = recurse(plan.right, context)
        cache = cache_for(context, plan.model_name)
        method = plan.hints.get("method", DEFAULT_JOIN_METHOD)
        if context.index_cache is None:
            from repro.semantic.index_cache import IndexCache

            context.index_cache = IndexCache()
        return SemanticJoinOp(left, right, plan.left_column,
                              plan.right_column, cache, plan.threshold,
                              plan.score_alias, plan.schema, method=method,
                              parallelism=context.parallelism,
                              top_k=plan.top_k,
                              index_cache=context.index_cache)
    if isinstance(plan, SemanticGroupByNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticGroupByOp(child, plan.column, cache, plan.threshold,
                                 plan.cluster_alias,
                                 plan.representative_alias, plan.schema)
    if isinstance(plan, SemanticSemiFilterNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticSemiFilterOp(child, plan.column, plan.probes, cache,
                                    plan.threshold, plan.schema)
    raise TypeError(f"not a semantic node: {type(plan).__name__}")
