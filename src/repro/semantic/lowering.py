"""Lowering of semantic logical nodes to physical operators.

Kept in its own module so :mod:`repro.relational.physical` can import it
lazily (relational never depends on semantic at import time).
"""

from __future__ import annotations

import threading

from repro.relational.logical import (
    LogicalPlan,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
)
from repro.relational.physical import ExecutionContext, PhysicalOperator
from repro.semantic.cache import EmbeddingCache
from repro.semantic.operators import (
    SemanticFilterOp,
    SemanticGroupByOp,
    SemanticJoinOp,
    SemanticSemiFilterOp,
)

#: Default physical strategy when the optimizer left no hint.
DEFAULT_JOIN_METHOD = "blocked"

#: Guards first-use creation of per-model caches.  The cache dict may be
#: shared by every client session of an :class:`~repro.server.EngineServer`,
#: and two clients missing on the same model concurrently must end up
#: with ONE arena — a lost update here would split the id-space and
#: defeat index reuse across clients.  Creation is rare (once per model
#: per server), so a process-wide mutex costs nothing.
_CACHE_CREATE_LOCK = threading.Lock()


def cache_for(context: ExecutionContext, model_name: str) -> EmbeddingCache:
    """Session-lifetime embedding cache per model (double-checked)."""
    if context.embedding_cache is None:
        context.embedding_cache = {}
    caches: dict = context.embedding_cache  # type: ignore[assignment]
    cache = caches.get(model_name)
    if cache is None:
        created = False
        with _CACHE_CREATE_LOCK:
            cache = caches.get(model_name)
            if cache is None:
                workers = context.cache_parallelism
                if workers is None:
                    workers = context.parallelism
                cache = EmbeddingCache(
                    context.model(model_name), parallelism=workers)
                caches[model_name] = cache
                created = True
        # register OUTSIDE the creation latch: registration takes the
        # level-4 registry lock, and holding two level-4 locks would
        # add a same-level edge for no benefit (gauge registration is
        # idempotent, so a racing duplicate is harmless).
        if created and context.metrics_registry is not None:
            cache.register_metrics(context.metrics_registry)
    return cache


def build_semantic_physical(plan: LogicalPlan, context: ExecutionContext,
                            recurse) -> PhysicalOperator:
    """Lower one semantic node (children lowered via ``recurse``)."""
    if isinstance(plan, SemanticFilterNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticFilterOp(child, plan.column, plan.probe, cache,
                                plan.threshold, plan.score_alias,
                                plan.schema, mode=plan.mode)
    if isinstance(plan, SemanticJoinNode):
        left = recurse(plan.left, context)
        right = recurse(plan.right, context)
        cache = cache_for(context, plan.model_name)
        method = plan.hints.get("method", DEFAULT_JOIN_METHOD)
        if context.index_cache is None:
            from repro.semantic.index_cache import IndexCache

            # double-checked for the same reason as cache_for: contexts
            # sharing one index cache must not lose it to a racing create
            with _CACHE_CREATE_LOCK:
                if context.index_cache is None:
                    context.index_cache = IndexCache()
        return SemanticJoinOp(left, right, plan.left_column,
                              plan.right_column, cache, plan.threshold,
                              plan.score_alias, plan.schema, method=method,
                              parallelism=context.parallelism,
                              top_k=plan.top_k,
                              index_cache=context.index_cache,
                              aux_alias=plan.aux_alias)
    if isinstance(plan, SemanticGroupByNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticGroupByOp(child, plan.column, cache, plan.threshold,
                                 plan.cluster_alias,
                                 plan.representative_alias, plan.schema)
    if isinstance(plan, SemanticSemiFilterNode):
        child = recurse(plan.child, context)
        cache = cache_for(context, plan.model_name)
        return SemanticSemiFilterOp(child, plan.column, plan.probes, cache,
                                    plan.threshold, plan.schema)
    raise TypeError(f"not a semantic node: {type(plan).__name__}")
