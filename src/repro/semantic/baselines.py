"""Syntactic similarity baselines (paper §III/§IV contrast class).

"String edit distance or locality-sensitive hashing-based string similarity
can compare strictly specified characteristics, but such methods cannot
capture string synonyms."  These baselines make that contrast measurable:
they *win* on misspellings and *lose* on synonyms, which is exactly the
Figure-3 comparison.
"""

from __future__ import annotations

import numpy as np

from repro.utils.text import ngrams


def levenshtein(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current[j] = min(previous[j] + 1,        # deletion
                             current[j - 1] + 1,     # insertion
                             previous[j - 1] + cost)  # substitution
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance, in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaccard_similarity(a: str, b: str, n: int = 3) -> float:
    """Jaccard overlap of character n-gram sets."""
    grams_a = set(ngrams(a, n, n))
    grams_b = set(ngrams(b, n, n))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)


def edit_similarity_join(left_values, right_values,
                         threshold: float) -> tuple[np.ndarray, np.ndarray,
                                                    np.ndarray]:
    """All pairs with normalized edit similarity >= threshold."""
    left_idx, right_idx, scores = [], [], []
    for i, a in enumerate(left_values):
        for j, b in enumerate(right_values):
            score = normalized_edit_similarity(a, b)
            if score >= threshold:
                left_idx.append(i)
                right_idx.append(j)
                scores.append(score)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            np.asarray(scores, dtype=np.float32))


def jaccard_similarity_join(left_values, right_values, threshold: float,
                            n: int = 3) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
    """All pairs with n-gram Jaccard similarity >= threshold.

    Uses an inverted index over n-grams so only pairs sharing at least one
    gram are scored (the standard set-similarity-join filter).
    """
    inverted: dict[str, list[int]] = {}
    right_grams = []
    for j, b in enumerate(right_values):
        grams = set(ngrams(b, n, n))
        right_grams.append(grams)
        for gram in grams:
            inverted.setdefault(gram, []).append(j)
    left_idx, right_idx, scores = [], [], []
    for i, a in enumerate(left_values):
        grams_a = set(ngrams(a, n, n))
        candidates: set[int] = set()
        for gram in grams_a:
            candidates.update(inverted.get(gram, ()))
        for j in candidates:
            grams_b = right_grams[j]
            union = grams_a | grams_b
            if not union:
                continue
            score = len(grams_a & grams_b) / len(union)
            if score >= threshold:
                left_idx.append(i)
                right_idx.append(j)
                scores.append(score)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            np.asarray(scores, dtype=np.float32))
