"""Embedding cache / prefetcher.

The paper's Figure-4 "prefetch" rung: "since fastText produces a hash table
of known words, we can further try to optimize the amount of data access by
prefetching necessary data".  The cache embeds each distinct string once
into a contiguous float32 matrix and serves repeat requests from memory,
tracking hit/miss counts so experiments can attribute the win.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.model import EmbeddingModel
from repro.utils.text import normalize_token


class EmbeddingCache:
    """Per-model memo of string -> unit embedding."""

    def __init__(self, model: EmbeddingModel):
        self.model = model
        self._store: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def vector(self, text: str) -> np.ndarray:
        """Embedding of one string, cached."""
        token = normalize_token(text)
        cached = self._store.get(token)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        vector = self.model.embed(token)
        self._store[token] = vector
        return vector

    def prefetch(self, texts) -> None:
        """Bulk-embed every distinct string not yet cached."""
        pending = []
        seen = set()
        for text in texts:
            token = normalize_token(text)
            if token not in self._store and token not in seen:
                seen.add(token)
                pending.append(token)
        if not pending:
            return
        matrix = self.model.embed_batch(pending)
        for token, row in zip(pending, matrix):
            self._store[token] = row
        self.misses += len(pending)

    def matrix(self, texts) -> np.ndarray:
        """Contiguous (n, dim) float32 matrix for ``texts`` (cached rows)."""
        self.prefetch(texts)
        rows = np.empty((len(texts), self.model.dim), dtype=np.float32)
        for position, text in enumerate(texts):
            token = normalize_token(text)
            rows[position] = self._store[token]
            self.hits += 1
        return rows

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
