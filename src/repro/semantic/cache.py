"""Arena-backed embedding cache / prefetcher.

The paper's Figure-4 "prefetch" rung: "since fastText produces a hash table
of known words, we can further try to optimize the amount of data access by
prefetching necessary data".  The cache embeds each distinct string once
and serves repeat requests from memory, tracking hit/miss counts so
experiments can attribute the win.

Storage is a single contiguous ``(capacity, dim)`` float32 **arena** that
grows by doubling.  Each distinct (normalized) string is interned to a
stable integer **row id** — its row in the arena — so:

- ``matrix(texts)`` is one id-resolution pass plus one fancy-index gather
  (``arena[ids]``), never a Python-level row-by-row rebuild;
- operators and vector indexes can hold ``row_ids`` and work entirely in
  id-space (ints and gathers) instead of re-hashing strings;
- the whole store is SIMD/BLAS-friendly: any subset of cached embeddings
  materializes as one contiguous-destination gather.

Row ids are stable for the lifetime of the cache (doubling copies rows,
it never reorders them); ``clear()`` invalidates all ids.

Concurrency
-----------
The cache is thread-safe under the serving layer's share-everything
model.  Reads that hit (``matrix``/``row_ids``/``rows_for`` over interned
strings) take a shared read lock and run concurrently; any call that
must embed takes the write lock, so growth, interning, and the embed
itself are exclusive — N threads missing on the same strings coalesce
into one embed (single-flight by serialization).

**Snapshot semantics.**  Arena growth is *publish-safe*: new rows are
written into the grown buffer **before** ``self._arena`` is rebound, so
no reader — including one holding an :attr:`arena` snapshot across a
concurrent ``embed_batch`` — can observe a partially initialized row.
A snapshot returned by :attr:`arena` is a read-only view pinned to the
buffer that backed the arena at call time: rows already in it are never
rewritten (the arena is append-only), appends past its length are
invisible to it, and a growth that swaps buffers leaves it intact but
*stale* (it keeps the old buffer alive; re-call :attr:`arena` for the
current rows).  ``matrix``/``rows_for``/``vector`` return fresh copies
and are immune to staleness entirely.
"""

from __future__ import annotations

import itertools
import threading
import weakref

import numpy as np

from repro.embeddings.model import EmbeddingModel
from repro.obs.metrics import MetricsRegistry, hit_ratio
from repro.utils.locks import RWLock
from repro.utils.text import normalize_token

#: Initial arena capacity (rows); doubled whenever the store outgrows it.
INITIAL_CAPACITY = 256

#: Process-wide id-space token source: every cache instance — and every
#: ``clear()`` — draws a fresh token, so row ids from different arenas
#: (or different lifetimes of one arena) can never alias each other in
#: consumers that fingerprint on ids.
_GENERATIONS = itertools.count()

#: Generation tokens whose id-space is gone for good — ``clear()`` was
#: called, or the owning cache was garbage-collected.  Consumers keying
#: on ids (the vector index cache) may evict entries under these tokens,
#: and only these: a token absent from this set may belong to a live
#: sibling arena of the same model.  The set holds bare ints and grows
#: only with clear()/instance counts, so it stays negligible.
RETIRED_GENERATIONS: set[int] = set()


class EmbeddingCache:
    """Per-model arena of unit embeddings, interned by normalized string.

    Hit/miss accounting: a string's *first* embedding in the session is
    one miss; every later request for it (including later positions of
    the same ``matrix``/``row_ids`` call) is one hit.  ``prefetch`` is a
    pure warm-up: it records misses for new strings but no hits.
    """

    def __init__(self, model: EmbeddingModel,
                 initial_capacity: int = INITIAL_CAPACITY,
                 parallelism: int | None = None):
        self.model = model
        #: Worker count passed to every batch embed this cache issues
        #: (``None`` = the model's own default).  Set by the owning
        #: session so shared models need no in-place mutation.
        self.parallelism = parallelism
        self._ids: dict[str, int] = {}
        self._arena = np.empty((max(1, initial_capacity), model.dim),
                               dtype=np.float32)
        self.hits = 0
        self.misses = 0
        #: Readers (all-hit resolves, gathers) share; embeds/growth/clear
        #: are exclusive.  See the module docstring for the full model.
        self._lock = RWLock()
        #: Leaf mutex for the hit/miss counters (readers on the shared
        #: path still mutate them; ``+=`` on attributes is not atomic).
        self._stats_lock = threading.Lock()
        #: Globally unique id-space token, refreshed by clear().
        #: Consumers that key on row ids (the vector index cache) include
        #: it in their fingerprints, so ids from a cleared arena — or
        #: from a *different cache instance* of the same model, whose row
        #: ids number an unrelated string set — never alias.
        self.generation = next(_GENERATIONS)
        # retire the token when this cache is dropped without clear(),
        # so index-cache entries built over it don't leak for the
        # process lifetime
        self._retire = weakref.finalize(self, RETIRED_GENERATIONS.add,
                                        self.generation)

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def rows(self) -> int:
        """Number of interned strings (== rows in use)."""
        return len(self._ids)

    @property
    def capacity(self) -> int:
        """Allocated arena rows."""
        return int(self._arena.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of arena actually in use."""
        return self.rows * int(self._arena.shape[1]) * 4

    @property
    def hit_rate(self) -> float:
        return hit_ratio(self.hits, self.misses)

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Expose arena counters as per-model callback gauges.

        The counters stay plain ints (``clear()`` resets them; the
        prefetch experiments read them directly), so the registry
        observes them through read-time callbacks.  Idempotent: when a
        cache for the same model is rebuilt, registration re-binds the
        existing gauges to the new instance.
        """
        labels = {"model": self.model.name}
        registry.gauge("embedding_arena_hits", fn=lambda: self.hits,
                       labels=labels, help="embedding cache hits")
        registry.gauge("embedding_arena_misses", fn=lambda: self.misses,
                       labels=labels, help="embedding cache misses")
        registry.gauge("embedding_arena_rows", fn=lambda: self.rows,
                       labels=labels, help="interned strings (arena rows)")
        registry.gauge("embedding_arena_bytes", fn=lambda: self.nbytes,
                       labels=labels, help="arena bytes in use")
        registry.gauge(
            "embedding_arena_hit_ratio",
            fn=lambda: hit_ratio(self.hits, self.misses),
            labels=labels,
            help="hits / (hits + misses); 0.0 before any probe")

    # ------------------------------------------------------------------
    # Id-space API
    # ------------------------------------------------------------------
    def row_ids(self, texts) -> np.ndarray:
        """Arena row ids for ``texts``, embedding unseen strings once.

        The returned ``int64`` ids stay valid for the cache's lifetime;
        ``arena[ids]`` (or :meth:`rows_for`) gathers the vectors.
        """
        ids, new_count = self._resolve(texts)
        self._count(hits=int(ids.shape[0]) - new_count, misses=new_count)
        return ids

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        """Gather arena rows for previously resolved ids (one fancy index).

        Lock-free by design: the buffer reference is grabbed once, and
        publish-safe growth guarantees any published id's row is fully
        written in every buffer published at or after the id was handed
        out.  The gather returns a copy, never a live view.
        """
        return self._arena[ids]

    @property
    def arena(self) -> np.ndarray:
        """Read-only **snapshot** of the filled arena (row id == row index).

        The view is pinned to the buffer current at call time: it never
        mutates (rows are append-only and growth swaps to a new buffer),
        but it also never grows — concurrent ``embed_batch`` calls leave
        it stale, not torn.  Re-read the property for a fresh snapshot.
        """
        rows = self.rows
        view = self._arena[:rows]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # String-space API (compatible with the seed cache)
    # ------------------------------------------------------------------
    def vector(self, text: str) -> np.ndarray:
        """Embedding of one string, cached.

        Returns a copy (like ``matrix``): handing out a live arena view
        would let callers corrupt cached rows, or see them change after
        ``clear()`` re-interns the row.
        """
        ids, new_count = self._resolve([text])
        self._count(hits=1 - new_count, misses=new_count)
        return self._arena[int(ids[0])].copy()

    def prefetch(self, texts) -> None:
        """Bulk-embed every distinct string not yet cached."""
        _, new_count = self._resolve(texts)
        self._count(hits=0, misses=new_count)

    def matrix(self, texts) -> np.ndarray:
        """Contiguous ``(n, dim)`` float32 matrix for ``texts``.

        Strings embedded by this very call count once, as misses — not as
        misses *and* hits, which would inflate the hit rate the Figure-4
        prefetch experiment reports.
        """
        ids, new_count = self._resolve(texts)
        self._count(hits=int(ids.shape[0]) - new_count, misses=new_count)
        return self._arena[ids]

    def stats(self) -> dict:
        """Arena statistics for metrics/profiling."""
        return {
            "rows": self.rows,
            "capacity": self.capacity,
            "bytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop every cached row (invalidates previously returned ids)."""
        with self._lock.write():
            self._ids = {}
            # rebind a FRESH buffer: post-clear embeds restart at row 0,
            # and writing them into the old buffer would rewrite rows a
            # pre-clear snapshot/gather still aliases — the torn read
            # the publish-safety contract rules out
            self._arena = np.empty_like(self._arena)
            with self._stats_lock:
                self.hits = 0
                self.misses = 0
            RETIRED_GENERATIONS.add(self.generation)
            self._retire.detach()
            self.generation = next(_GENERATIONS)
            self._retire = weakref.finalize(self, RETIRED_GENERATIONS.add,
                                            self.generation)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count(self, hits: int, misses: int) -> None:
        with self._stats_lock:
            self.hits += hits
            self.misses += misses

    def _resolve(self, texts) -> tuple[np.ndarray, int]:
        """Intern every text; returns (row ids, count of newly added).

        Fast path: if every token is already interned, the resolve runs
        under the shared read lock and embeds nothing, so concurrent
        hits never serialize.  Otherwise the write lock is taken and the
        resolve re-runs exclusively — tokens interned by a racing thread
        in the window between the two passes are simply hits on retry,
        which is what makes concurrent misses on the same strings embed
        once (single-flight by serialization).
        """
        if not hasattr(texts, "__len__"):
            texts = list(texts)   # accept generators, like the seed cache
        tokens = [normalize_token(text) for text in texts]
        with self._lock.read():
            known = self._ids
            ids = np.empty(len(tokens), dtype=np.int64)
            for position, token in enumerate(tokens):
                row = known.get(token)
                if row is None:
                    break
                ids[position] = row
            else:
                return ids, 0
        with self._lock.write():
            return self._resolve_exclusive(tokens)

    def _resolve_exclusive(self, tokens: list[str]) -> tuple[np.ndarray, int]:
        """The write-locked resolve: intern and embed whatever is missing.

        New tokens are committed to ``_ids`` only *after* their batch
        embed succeeds: if ``embed_batch`` raises (transient OOM, a user
        model's validation error) and the caller retries, the retry must
        re-embed — not "hit" interned ids pointing at uninitialized
        arena rows.
        """
        known = self._ids
        base = len(known)
        ids = np.empty(len(tokens), dtype=np.int64)
        new_tokens: list[str] = []
        new_ids: dict[str, int] = {}
        for position, token in enumerate(tokens):
            row = known.get(token)
            if row is None:
                row = new_ids.get(token)
                if row is None:
                    row = base + len(new_tokens)
                    new_ids[token] = row
                    new_tokens.append(token)
            ids[position] = row
        if new_tokens:
            self._append(new_tokens, base)
            known.update(new_ids)
        return ids, len(new_tokens)

    def _append(self, tokens: list[str], start: int) -> None:
        """Embed ``tokens`` in one batch into arena rows ``[start, ...)``.

        Embeds *before* touching the arena so a failure leaves the cache
        exactly as it was (growth alone would be harmless — it only
        raises capacity).

        Growth is **publish-safe**: the grown buffer is fully written —
        old rows copied, new rows stored — *before* ``self._arena`` is
        rebound, so a lock-free reader gathering through the attribute
        sees either the old buffer (complete for every published id) or
        the new one (also complete), never a half-initialized row.  The
        no-growth branch writes only rows ``>= start``, which no
        published id or snapshot can reference yet.
        """
        rows = self.model.embed_batch(tokens, workers=self.parallelism)
        needed = start + len(tokens)
        if needed > self._arena.shape[0]:
            capacity = int(self._arena.shape[0])
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._arena.shape[1]),
                             dtype=np.float32)
            grown[:start] = self._arena[:start]
            grown[start:needed] = rows
            self._arena = grown
        else:
            self._arena[start:needed] = rows
