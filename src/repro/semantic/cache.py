"""Arena-backed embedding cache / prefetcher.

The paper's Figure-4 "prefetch" rung: "since fastText produces a hash table
of known words, we can further try to optimize the amount of data access by
prefetching necessary data".  The cache embeds each distinct string once
and serves repeat requests from memory, tracking hit/miss counts so
experiments can attribute the win.

Storage is a single contiguous ``(capacity, dim)`` float32 **arena** that
grows by doubling.  Each distinct (normalized) string is interned to a
stable integer **row id** — its row in the arena — so:

- ``matrix(texts)`` is one id-resolution pass plus one fancy-index gather
  (``arena[ids]``), never a Python-level row-by-row rebuild;
- operators and vector indexes can hold ``row_ids`` and work entirely in
  id-space (ints and gathers) instead of re-hashing strings;
- the whole store is SIMD/BLAS-friendly: any subset of cached embeddings
  materializes as one contiguous-destination gather.

Row ids are stable for the lifetime of the cache (doubling copies rows,
it never reorders them); ``clear()`` invalidates all ids.
"""

from __future__ import annotations

import itertools
import weakref

import numpy as np

from repro.embeddings.model import EmbeddingModel
from repro.utils.text import normalize_token

#: Initial arena capacity (rows); doubled whenever the store outgrows it.
INITIAL_CAPACITY = 256

#: Process-wide id-space token source: every cache instance — and every
#: ``clear()`` — draws a fresh token, so row ids from different arenas
#: (or different lifetimes of one arena) can never alias each other in
#: consumers that fingerprint on ids.
_GENERATIONS = itertools.count()

#: Generation tokens whose id-space is gone for good — ``clear()`` was
#: called, or the owning cache was garbage-collected.  Consumers keying
#: on ids (the vector index cache) may evict entries under these tokens,
#: and only these: a token absent from this set may belong to a live
#: sibling arena of the same model.  The set holds bare ints and grows
#: only with clear()/instance counts, so it stays negligible.
RETIRED_GENERATIONS: set[int] = set()


class EmbeddingCache:
    """Per-model arena of unit embeddings, interned by normalized string.

    Hit/miss accounting: a string's *first* embedding in the session is
    one miss; every later request for it (including later positions of
    the same ``matrix``/``row_ids`` call) is one hit.  ``prefetch`` is a
    pure warm-up: it records misses for new strings but no hits.
    """

    def __init__(self, model: EmbeddingModel,
                 initial_capacity: int = INITIAL_CAPACITY,
                 parallelism: int | None = None):
        self.model = model
        #: Worker count passed to every batch embed this cache issues
        #: (``None`` = the model's own default).  Set by the owning
        #: session so shared models need no in-place mutation.
        self.parallelism = parallelism
        self._ids: dict[str, int] = {}
        self._arena = np.empty((max(1, initial_capacity), model.dim),
                               dtype=np.float32)
        self.hits = 0
        self.misses = 0
        #: Globally unique id-space token, refreshed by clear().
        #: Consumers that key on row ids (the vector index cache) include
        #: it in their fingerprints, so ids from a cleared arena — or
        #: from a *different cache instance* of the same model, whose row
        #: ids number an unrelated string set — never alias.
        self.generation = next(_GENERATIONS)
        # retire the token when this cache is dropped without clear(),
        # so index-cache entries built over it don't leak for the
        # process lifetime
        self._retire = weakref.finalize(self, RETIRED_GENERATIONS.add,
                                        self.generation)

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def rows(self) -> int:
        """Number of interned strings (== rows in use)."""
        return len(self._ids)

    @property
    def capacity(self) -> int:
        """Allocated arena rows."""
        return int(self._arena.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of arena actually in use."""
        return self.rows * int(self._arena.shape[1]) * 4

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Id-space API
    # ------------------------------------------------------------------
    def row_ids(self, texts) -> np.ndarray:
        """Arena row ids for ``texts``, embedding unseen strings once.

        The returned ``int64`` ids stay valid for the cache's lifetime;
        ``arena[ids]`` (or :meth:`rows_for`) gathers the vectors.
        """
        ids, new_count = self._resolve(texts)
        self.misses += new_count
        self.hits += int(ids.shape[0]) - new_count
        return ids

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        """Gather arena rows for previously resolved ids (one fancy index)."""
        return self._arena[ids]

    @property
    def arena(self) -> np.ndarray:
        """Read-only view of the filled arena (row id == row index)."""
        view = self._arena[:self.rows]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # String-space API (compatible with the seed cache)
    # ------------------------------------------------------------------
    def vector(self, text: str) -> np.ndarray:
        """Embedding of one string, cached.

        Returns a copy (like ``matrix``): handing out a live arena view
        would let callers corrupt cached rows, or see them change after
        ``clear()`` re-interns the row.
        """
        ids, new_count = self._resolve([text])
        self.misses += new_count
        self.hits += 1 - new_count
        return self._arena[int(ids[0])].copy()

    def prefetch(self, texts) -> None:
        """Bulk-embed every distinct string not yet cached."""
        _, new_count = self._resolve(texts)
        self.misses += new_count

    def matrix(self, texts) -> np.ndarray:
        """Contiguous ``(n, dim)`` float32 matrix for ``texts``.

        Strings embedded by this very call count once, as misses — not as
        misses *and* hits, which would inflate the hit rate the Figure-4
        prefetch experiment reports.
        """
        ids, new_count = self._resolve(texts)
        self.misses += new_count
        self.hits += int(ids.shape[0]) - new_count
        return self._arena[ids]

    def stats(self) -> dict:
        """Arena statistics for metrics/profiling."""
        return {
            "rows": self.rows,
            "capacity": self.capacity,
            "bytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop every cached row (invalidates previously returned ids)."""
        self._ids.clear()
        self.hits = 0
        self.misses = 0
        RETIRED_GENERATIONS.add(self.generation)
        self._retire.detach()
        self.generation = next(_GENERATIONS)
        self._retire = weakref.finalize(self, RETIRED_GENERATIONS.add,
                                        self.generation)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, texts) -> tuple[np.ndarray, int]:
        """Intern every text; returns (row ids, count of newly added).

        New tokens are committed to ``_ids`` only *after* their batch
        embed succeeds: if ``embed_batch`` raises (transient OOM, a user
        model's validation error) and the caller retries, the retry must
        re-embed — not "hit" interned ids pointing at uninitialized
        arena rows.
        """
        if not hasattr(texts, "__len__"):
            texts = list(texts)   # accept generators, like the seed cache
        known = self._ids
        base = len(known)
        ids = np.empty(len(texts), dtype=np.int64)
        new_tokens: list[str] = []
        new_ids: dict[str, int] = {}
        for position, text in enumerate(texts):
            token = normalize_token(text)
            row = known.get(token)
            if row is None:
                row = new_ids.get(token)
                if row is None:
                    row = base + len(new_tokens)
                    new_ids[token] = row
                    new_tokens.append(token)
            ids[position] = row
        if new_tokens:
            self._append(new_tokens, base)
            known.update(new_ids)
        return ids, len(new_tokens)

    def _append(self, tokens: list[str], start: int) -> None:
        """Embed ``tokens`` in one batch into arena rows ``[start, ...)``.

        Embeds *before* touching the arena so a failure leaves the cache
        exactly as it was (growth alone would be harmless — it only
        raises capacity).
        """
        rows = self.model.embed_batch(tokens, workers=self.parallelism)
        needed = start + len(tokens)
        if needed > self._arena.shape[0]:
            capacity = int(self._arena.shape[0])
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._arena.shape[1]),
                             dtype=np.float32)
            grown[:start] = self._arena[:start]
            self._arena = grown
        self._arena[start:needed] = rows
