"""Session-level vector index cache.

§V: model-side "index structures for expediting operations such as
similarity or top-k searches ... have to be included in the optimization
process equally as relational data indexes are."  Relational indexes are
*persistent* and amortized across queries; this cache gives semantic
operators the same property — an index built over a (model, value-set)
pair is reused by every later query in the session, so the cost model can
amortize build cost exactly as it does for B-trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embeddings.subword import fnv1a
from repro.semantic.cache import EmbeddingCache
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.index import VectorIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.lsh import LSHIndex

_FACTORIES = {
    "brute": lambda seed: BruteForceIndex(),
    "lsh": lambda seed: LSHIndex(seed=seed),
    "ivf": lambda seed: IVFFlatIndex(seed=seed),
    "hnsw": lambda seed: HNSWIndex(seed=seed),
}


def _fingerprint(model_name: str, kind: str, values: list[str]) -> tuple:
    """Order-insensitive identity of an index: model + kind + value set."""
    content_hash = 0
    for value in values:
        content_hash ^= fnv1a(value)
    return (model_name, kind, len(set(values)), content_hash)


@dataclass
class IndexCache:
    """Caches built vector indexes keyed by (model, kind, value set)."""

    seed: int = 0
    hits: int = 0
    misses: int = 0
    _store: dict[tuple, VectorIndex] = field(default_factory=dict)

    def get(self, kind: str, values: list[str],
            cache: EmbeddingCache) -> VectorIndex:
        """A built index of ``kind`` over the embeddings of ``values``.

        Values are deduplicated in first-appearance order; the returned
        index's ids refer to that deduplicated order (callers that need
        the mapping should dedup the same way).
        """
        if kind not in _FACTORIES:
            from repro.errors import IndexError_

            raise IndexError_(
                f"unknown index kind {kind!r}; available: "
                f"{sorted(_FACTORIES)}"
            )
        unique = list(dict.fromkeys(values))
        key = _fingerprint(cache.model.name, kind, unique)
        index = self._store.get(key)
        if index is not None:
            self.hits += 1
            return index
        self.misses += 1
        index = _FACTORIES[kind](self.seed)
        index.build(cache.matrix(unique))
        self._store[key] = index
        return index

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)
