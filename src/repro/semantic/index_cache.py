"""Session-level vector index cache, keyed by arena row-id sets.

§V: model-side "index structures for expediting operations such as
similarity or top-k searches ... have to be included in the optimization
process equally as relational data indexes are."  Relational indexes are
*persistent* and amortized across queries; this cache gives semantic
operators the same property — an index built over a (model, row-id set)
pair is reused by every later query in the session, so the cost model can
amortize build cost exactly as it does for B-trees.

Identity is the **sorted set of arena row ids** backing the indexed
embeddings, digested with BLAKE2b.  Row ids come from the arena-backed
:class:`~repro.semantic.cache.EmbeddingCache`, where each distinct
normalized string has exactly one stable id, so:

- lookups never re-hash string values (fingerprinting is one ``np.unique``
  over ints plus one digest of the id bytes);
- duplicate multiplicity and value order cannot cause spurious misses
  (the id set is identical);
- distinct value sets cannot collide (distinct id sets produce distinct
  digests — unlike the earlier XOR-of-string-hashes scheme, where any
  value appearing an even number of times cancelled out of the
  fingerprint entirely, e.g. ``["a", "a"]`` and ``["b", "b"]`` collided).

The cache key also includes the arena's ``generation`` — a globally
unique id-space token — so ids from a cleared (re-interned) arena, or
from a *different* :class:`EmbeddingCache` instance of the same model
(whose row ids number an unrelated string set), never alias.

Index-internal ids refer to positions in the **sorted unique row-id
order** the index was built over.  Callers that need to map probe results
back to their own value positions use :meth:`IndexCache.get_for_values`,
which returns that mapping explicitly (see
:func:`repro.semantic.join.expand_index_matches`) — the previous contract
("ids refer to first-appearance dedup order, callers must dedup the same
way") silently mispaired rows whenever a caller passed duplicates.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry, hit_ratio
from repro.semantic.cache import RETIRED_GENERATIONS, EmbeddingCache
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.index import VectorIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.lsh import LSHIndex

_FACTORIES = {
    "brute": lambda seed: BruteForceIndex(),
    "lsh": lambda seed: LSHIndex(seed=seed),
    "ivf": lambda seed: IVFFlatIndex(seed=seed),
    "hnsw": lambda seed: HNSWIndex(seed=seed),
}


def _digest_ids(unique_ids: np.ndarray) -> bytes:
    """Collision-resistant digest of a sorted ``int64`` id array.

    Order-insensitive by construction (input is sorted) and free of the
    XOR pair-cancellation failure mode: BLAKE2b over the raw id bytes.
    """
    return hashlib.blake2b(unique_ids.tobytes(), digest_size=16).digest()


@dataclass
class IndexCache:
    """Caches built vector indexes keyed by (model, kind, row-id set).

    Thread-safe with **single-flight builds**: when N threads miss on
    the same key concurrently, exactly one builds the index while the
    other N-1 wait on a per-key event and then hit the finished entry
    (counted in ``single_flight_waits``, and as hits — they were served
    without building).  ``builds`` counts actual index constructions, so
    under any concurrency ``builds`` equals the number of distinct keys
    ever built; a duplicate build is a bug the stress tests assert
    against.  If a build fails, one waiter is promoted to builder and
    retries — an exception never wedges the key.
    """

    seed: int = 0
    hits: int = 0
    misses: int = 0
    #: Misses served by extending the previous index over a superset
    #: id set (the ingest fast path) instead of building from scratch.
    incremental_extends: int = 0
    #: Monotonic id-space token for consumers that cache *derived*
    #: artifacts (the cross-statement result cache keys on it):
    #: ``clear()`` bumps it, so anything computed against the dropped
    #: indexes lazily stops matching.
    generation: int = 0
    #: Number of indexes actually constructed (one per distinct key,
    #: regardless of how many threads raced on the miss).
    builds: int = 0
    #: Concurrent misses that coalesced onto another thread's build.
    single_flight_waits: int = 0
    _store: dict[tuple, VectorIndex] = field(default_factory=dict)
    #: (model, kind, arena generation) -> (key, unique_ids) of the most
    #: recently built index for that stream.  When a later miss's id set
    #: extends that one as a *sorted prefix* — exactly what an arena
    #: append produces, since new strings intern above the old max id —
    #: the new index is grown from the old one instead of rebuilt.
    _latest: dict[tuple, tuple[tuple, np.ndarray]] = field(
        default_factory=dict, repr=False)
    #: key -> Event set when the in-flight build for that key finishes.
    _building: dict[tuple, threading.Event] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Expose the cache's counters as callback gauges.

        The counters stay plain ints — ``clear()`` resets them and the
        stress tests read them directly — so the registry observes them
        through read-time callbacks instead of owning them.
        """
        registry.gauge("index_cache_hits", fn=lambda: self.hits,
                       help="vector-index cache hits")
        registry.gauge("index_cache_misses", fn=lambda: self.misses,
                       help="vector-index cache misses")
        registry.gauge("index_cache_builds", fn=lambda: self.builds,
                       help="actual index constructions")
        registry.gauge(
            "index_cache_incremental_extends",
            fn=lambda: self.incremental_extends,
            help="index builds served by extending a predecessor")
        registry.gauge(
            "index_cache_single_flight_waits",
            fn=lambda: self.single_flight_waits,
            help="misses coalesced onto another thread's build")
        registry.gauge("index_cache_entries", fn=lambda: len(self._store),
                       help="built vector indexes resident")
        registry.gauge("index_cache_generation",
                       fn=lambda: self.generation,
                       help="monotonic clear() token")
        registry.gauge(
            "index_cache_hit_ratio",
            fn=lambda: hit_ratio(self.hits, self.misses),
            help="hits / (hits + misses); 0.0 before any probe")

    def get_for_ids(self, kind: str, row_ids: np.ndarray,
                    cache: EmbeddingCache
                    ) -> tuple[VectorIndex, np.ndarray]:
        """A built index of ``kind`` over the distinct arena rows in
        ``row_ids`` (duplicates welcome), plus the sorted unique id array
        the index rows correspond to.

        ``index`` position ``q`` holds the embedding of arena row
        ``unique_ids[q]``; probe results are mapped back to arena rows
        (and from there to caller positions) through ``unique_ids``.
        Fingerprinting is pure id arithmetic — no value string is ever
        re-hashed.
        """
        self._check_kind(kind)
        unique_ids = np.unique(np.asarray(row_ids, dtype=np.int64))
        key = (cache.model.name, kind, cache.generation,
               int(unique_ids.shape[0]), _digest_ids(unique_ids))
        coalesced = False
        while True:
            with self._lock:
                index = self._store.get(key)
                if index is not None:
                    self.hits += 1
                    return index, unique_ids
                event = self._building.get(key)
                if event is None:
                    # this thread builds; racers wait on the event
                    event = threading.Event()
                    self._building[key] = event
                    self.misses += 1
                    break
                if not coalesced:
                    coalesced = True
                    self.single_flight_waits += 1
            event.wait()
            # builder finished (or failed): re-check the store; on
            # failure the first waiter through becomes the new builder
        try:
            stream = (cache.model.name, kind, cache.generation)
            with self._lock:
                # evict retired-generation entries: a cleared arena's
                # ids can never hit again, so keeping them would leak
                # one embedding-matrix copy per clear/rebuild cycle.
                # Only *retired* tokens qualify — entries of a live
                # sibling arena (another cache instance of this model
                # sharing this IndexCache) stay cached.
                stale = [stored for stored in self._store
                         if stored[2] in RETIRED_GENERATIONS]
                for stored in stale:
                    del self._store[stored]
                for tracked in [tracked for tracked in self._latest
                                if tracked[2] in RETIRED_GENERATIONS]:
                    del self._latest[tracked]
                predecessor = self._latest.get(stream)
                previous = (self._store.get(predecessor[0])
                            if predecessor is not None else None)
            index: VectorIndex | None = None
            if previous is not None and previous.supports_incremental:
                prior_ids = predecessor[1] if predecessor is not None \
                    else np.empty(0, dtype=np.int64)
                old_n = int(prior_ids.shape[0])
                if (0 < old_n < unique_ids.shape[0]
                        and np.array_equal(prior_ids, unique_ids[:old_n])):
                    # arena append: the new id set extends the old one
                    # as a sorted prefix, so only the tail is embedded
                    # and inserted — the old rows are never touched.
                    index = previous.extended(
                        cache.rows_for(unique_ids[old_n:]))
            with self._lock:
                if index is not None:
                    self.incremental_extends += 1
            if index is None:
                index = _FACTORIES[kind](self.seed)
                index.build(cache.rows_for(unique_ids))
            with self._lock:
                self._store[key] = index
                self.builds += 1
                self._latest[stream] = (key, unique_ids)
            return index, unique_ids
        finally:
            with self._lock:
                del self._building[key]
            event.set()

    def get_for_values(self, kind: str, values: list[str],
                       cache: EmbeddingCache
                       ) -> tuple[VectorIndex, np.ndarray]:
        """Index over the embeddings of ``values`` plus the explicit
        value-position -> index-id mapping.

        Returns ``(index, positions)`` where ``positions[v]`` is the
        index-internal id holding the embedding of ``values[v]``.
        Duplicate values — and distinct values that normalize to the same
        token — share an index id; use
        :func:`repro.semantic.join.expand_index_matches` to scatter probe
        matches back onto value positions.
        """
        self._check_kind(kind)   # before embedding anything
        row_ids = cache.row_ids(values)
        index, unique_ids = self.get_for_ids(kind, row_ids, cache)
        return index, np.searchsorted(unique_ids, row_ids)

    def get(self, kind: str, values: list[str],
            cache: EmbeddingCache) -> VectorIndex:
        """A built index of ``kind`` over the embeddings of ``values``.

        Compatibility entry point: identical caching behaviour to
        :meth:`get_for_values` but discards the position mapping.  Only
        use it when probe ids are not mapped back to ``values`` positions
        (the index's ids refer to the sorted unique arena row-id order,
        *not* to first-appearance order of ``values``).
        """
        index, _ = self.get_for_values(kind, values, cache)
        return index

    def _check_kind(self, kind: str) -> None:
        if kind not in _FACTORIES:
            from repro.errors import IndexError_

            raise IndexError_(
                f"unknown index kind {kind!r}; available: "
                f"{sorted(_FACTORIES)}"
            )

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._latest.clear()
            self.generation += 1
            self.hits = 0
            self.misses = 0
            self.builds = 0
            self.single_flight_waits = 0
            self.incremental_extends = 0

    def stats(self) -> dict:
        """Counters for metrics/profiling (one consistent snapshot)."""
        with self._lock:
            return {
                "entries": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "single_flight_waits": self.single_flight_waits,
                "incremental_extends": self.incremental_extends,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)
