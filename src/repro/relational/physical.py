"""Physical operators: vectorized volcano over column batches.

``build_physical`` lowers a logical plan to a physical operator tree,
honouring the optimizer's ``hints`` (join algorithm, semantic access path).
Every operator records simple metrics (output rows, wall time) that the
profiler and the benchmarks read back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ExecutionError, PlanError
from repro.relational.expressions import AggExpr, AggFunc, Expr
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.relational.pipeline import PipelineNode
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType

DEFAULT_BATCH_SIZE = 4096


@dataclass
class ExecutionContext:
    """Everything physical operators need at run time."""

    catalog: Catalog
    models: object | None = None  # ModelRegistry (typed loosely: no cycle)
    batch_size: int = DEFAULT_BATCH_SIZE
    embedding_cache: object | None = None
    index_cache: object | None = None  # semantic.index_cache.IndexCache
    parallelism: int = 1
    #: Worker count baked into embedding caches *created through this
    #: context* (``None`` = use ``parallelism``).  Under the serving
    #: layer ``parallelism`` is a per-query share of the machine, but a
    #: cache created by one query outlives it and serves every client —
    #: so the server pins this to the machine-wide budget instead.
    #: Safe even under concurrency: the cache serializes embeds behind
    #: its write lock, so at most one machine-wide embed runs per model.
    cache_parallelism: int | None = None
    #: engine.kernel_cache.KernelCache shared across statements (typed
    #: loosely: no cycle).  ``None`` = compile fused pipelines inline,
    #: uncached (bare ``execute_plan`` calls outside an engine).
    kernel_cache: object | None = None
    #: obs.metrics.MetricsRegistry owned by the engine state (typed
    #: loosely: no cycle).  ``None`` for bare ``execute_plan`` calls;
    #: when set, caches created through this context register their
    #: gauges on it.
    metrics_registry: object | None = None
    metrics: dict = field(default_factory=dict)

    def model(self, name: str):
        if self.models is None:
            raise ExecutionError(
                "query uses a semantic operator but the context has no "
                "model registry"
            )
        return self.models.get(name)

    def record_semantic_metrics(self) -> None:
        """Publish embedding-arena and vector-index statistics into
        ``metrics`` (read back by the profiler and benchmarks)."""
        caches = self.embedding_cache
        if caches:
            # the cache dict may be shared across concurrent queries
            # (serving layer); snapshot before iterating
            self.metrics["embedding_arena"] = {
                name: cache.stats()
                for name, cache in dict(caches).items()}
        if self.index_cache is not None:
            self.metrics["vector_index_cache"] = {
                "entries": len(self.index_cache),
                "hits": self.index_cache.hits,
                "misses": self.index_cache.misses,
            }


class PhysicalOperator:
    """Base physical operator (pull-based batch iterator)."""

    def __init__(self, schema: Schema,
                 children: tuple["PhysicalOperator", ...] = ()):
        self.schema = schema
        self.children = children
        self.rows_out = 0
        self.elapsed = 0.0

    def batches(self) -> Iterator[Table]:
        start = time.perf_counter()
        try:
            for batch in self._batches():
                self.rows_out += batch.num_rows
                self.elapsed += time.perf_counter() - start
                yield batch
                start = time.perf_counter()
        finally:
            self.elapsed += time.perf_counter() - start

    def _batches(self) -> Iterator[Table]:
        raise NotImplementedError

    def execute(self) -> Table:
        """Materialize the full output."""
        chunks = list(self.batches())
        if not chunks:
            return Table.empty(self.schema)
        return Table.concat(chunks)

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        return type(self).__name__


class ScanOp(PhysicalOperator):
    """Scan a materialized table in batches."""

    def __init__(self, table: Table, batch_size: int,
                 qualifier: str | None = None):
        if qualifier:
            table = table.qualified(qualifier)
        super().__init__(table.schema)
        self.table = table
        self.batch_size = batch_size

    def _batches(self) -> Iterator[Table]:
        yield from self.table.batches(self.batch_size)


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicate: Expr):
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    def _batches(self) -> Iterator[Table]:
        for batch in self.children[0].batches():
            mask = self.predicate.evaluate(batch)
            if mask.any():
                yield batch.filter(mask)


class ProjectOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, exprs: list[tuple[Expr, str]],
                 schema: Schema):
        super().__init__(schema, (child,))
        self.exprs = exprs

    def _batches(self) -> Iterator[Table]:
        for batch in self.children[0].batches():
            columns = {}
            for (expr, alias), fld in zip(self.exprs, self.schema.fields):
                values = expr.evaluate(batch)
                if fld.dtype == DataType.STRING:
                    values = np.asarray(values, dtype=object)
                columns[alias] = values
            yield Table(self.schema, columns)


class LimitOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, count: int):
        super().__init__(child.schema, (child,))
        self.count = count

    def _batches(self) -> Iterator[Table]:
        remaining = self.count
        if remaining == 0:
            return
        for batch in self.children[0].batches():
            if batch.num_rows <= remaining:
                remaining -= batch.num_rows
                yield batch
            else:
                yield batch.slice(0, remaining)
                remaining = 0
            if remaining == 0:
                return


class FusedPipelineOp(PhysicalOperator):
    """Run a fused Scan/Filter/Project/Limit chain as one compiled kernel.

    The kernel binds input columns once, evaluates merged predicate
    masks, applies projections on the masked selection, and returns
    output columns — no intermediate :class:`Table` per stage.  When the
    pipeline embeds its own scan the whole base table goes through the
    kernel in a single pass (no batch loop at all), except when the
    pipeline carries a limit — then the scan streams in batches so the
    limit keeps its early exit.  Without an embedded scan the barrier
    child's batches stream through the kernel.

    Kernels come from the shared :class:`~repro.engine.kernel_cache.
    KernelCache` when the context carries one (so repeat statements skip
    compilation entirely); a context without a cache compiles inline.
    Either way the op records ``backend``/``cache_hit``/
    ``compile_seconds`` for the profiler and EXPLAIN ANALYZE.
    """

    def __init__(self, node, context: ExecutionContext,
                 child: PhysicalOperator | None):
        super().__init__(node.schema, (child,) if child is not None else ())
        self.node = node
        self.context = context
        self.limit = node.limit
        spec = node.kernel_spec()
        cache = context.kernel_cache
        if cache is not None:
            self.kernel, self.cache_hit = cache.get_or_compile(
                node.fingerprint(), spec)
        else:
            from repro.hardware.jit import compile_pipeline

            self.kernel, self.cache_hit = compile_pipeline(spec), False
        self.backend = self.kernel.backend
        self.compile_seconds = 0.0 if self.cache_hit \
            else self.kernel.compile_seconds

    def label(self) -> str:
        return f"FusedPipelineOp[{self.node.label()}]"

    def _batches(self) -> Iterator[Table]:
        remaining = self.limit
        if remaining is not None and remaining <= 0:
            return
        names = self.schema.names
        for batch in self._input_batches():
            arrays = self.kernel(batch)
            rows = int(arrays[0].shape[0]) if arrays else 0
            if rows == 0:
                continue
            if remaining is not None and rows > remaining:
                arrays = tuple(arr[:remaining] for arr in arrays)
                rows = remaining
            yield Table(self.schema, dict(zip(names, arrays)))
            if remaining is not None:
                remaining -= rows
                if remaining == 0:
                    return

    def _input_batches(self) -> Iterator[Table]:
        scan = self.node.scan
        if scan is None:
            yield from self.children[0].batches()
            return
        table = self.context.catalog.get(scan.table_name)
        if scan.qualifier:
            table = table.qualified(scan.qualifier)
        if table.num_rows == 0:
            return
        if self.limit is None:
            # one pass over the whole base table: fusing exists precisely
            # to skip the per-batch Table materialization between stages
            yield table
            return
        # a fused limit keeps its early exit: stream the scan so the
        # kernel stops once the limit fills instead of filtering the
        # whole table for rows it will slice away
        yield from table.batches(self.context.batch_size)


class SortOp(PhysicalOperator):
    """Pipeline breaker: materialize, sort, re-emit."""

    def __init__(self, child: PhysicalOperator, keys: list[tuple[str, bool]]):
        super().__init__(child.schema, (child,))
        self.keys = keys

    def _batches(self) -> Iterator[Table]:
        table = self.children[0].execute()
        yield table.sort_by(self.keys)


class UnionOp(PhysicalOperator):
    def __init__(self, children: tuple[PhysicalOperator, ...]):
        super().__init__(children[0].schema, children)

    def _batches(self) -> Iterator[Table]:
        names = self.schema.names
        for child in self.children:
            for batch in child.batches():
                if batch.schema.names != names:
                    mapping = dict(zip(batch.schema.names, names))
                    batch = batch.renamed(mapping)
                yield batch


class HashJoinOp(PhysicalOperator):
    """Equi hash join; builds on the right input, streams the left."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_keys: list[str], right_keys: list[str],
                 join_type: JoinType, extra_predicate: Expr | None,
                 schema: Schema):
        super().__init__(schema, (left, right))
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.join_type = join_type
        self.extra_predicate = extra_predicate

    def _batches(self) -> Iterator[Table]:
        if not self.left_keys:
            raise PlanError("HashJoinOp requires join keys")
        build = self.children[1].execute()
        hash_table: dict[tuple, list[int]] = {}
        build_key_arrays = [build.column(k) for k in self.right_keys]
        for row, key in enumerate(zip(*build_key_arrays)):
            hash_table.setdefault(tuple(key), []).append(row)

        left = self.children[0]
        for batch in left.batches():
            probe_key_arrays = [batch.column(k) for k in self.left_keys]
            left_indices: list[int] = []
            right_indices: list[int] = []
            matched_mask = np.zeros(batch.num_rows, dtype=bool)
            for row, key in enumerate(zip(*probe_key_arrays)):
                matches = hash_table.get(tuple(key))
                if matches:
                    matched_mask[row] = True
                    if self.join_type in (JoinType.SEMI, JoinType.ANTI):
                        continue
                    left_indices.extend([row] * len(matches))
                    right_indices.extend(matches)
            yield from self._emit(batch, build, left_indices, right_indices,
                                  matched_mask)

    def _emit(self, batch: Table, build: Table, left_indices: list[int],
              right_indices: list[int],
              matched_mask: np.ndarray) -> Iterator[Table]:
        if self.join_type == JoinType.SEMI:
            if matched_mask.any():
                yield batch.filter(matched_mask)
            return
        if self.join_type == JoinType.ANTI:
            if (~matched_mask).any():
                yield batch.filter(~matched_mask)
            return
        left_idx = np.asarray(left_indices, dtype=np.int64)
        right_idx = np.asarray(right_indices, dtype=np.int64)
        combined = _combine(batch.take(left_idx), build.take(right_idx),
                            self.schema)
        if self.extra_predicate is not None and combined.num_rows:
            combined = combined.filter(
                self.extra_predicate.evaluate(combined))
        if self.join_type == JoinType.LEFT:
            missing = ~matched_mask
            if missing.any():
                unmatched = _null_extend(batch.filter(missing), build.schema,
                                         self.schema)
                combined = Table.concat([combined, unmatched])
        if combined.num_rows:
            yield combined


class NestedLoopJoinOp(PhysicalOperator):
    """Cross/theta join: materializes the right side, streams the left."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 predicate: Expr | None, join_type: JoinType, schema: Schema):
        super().__init__(schema, (left, right))
        self.predicate = predicate
        self.join_type = join_type
        if join_type not in (JoinType.INNER, JoinType.CROSS):
            raise PlanError(
                f"NestedLoopJoinOp supports inner/cross, got {join_type}"
            )

    def _batches(self) -> Iterator[Table]:
        right = self.children[1].execute()
        n_right = right.num_rows
        for batch in self.children[0].batches():
            if batch.num_rows == 0 or n_right == 0:
                continue
            left_idx = np.repeat(np.arange(batch.num_rows), n_right)
            right_idx = np.tile(np.arange(n_right), batch.num_rows)
            combined = _combine(batch.take(left_idx), right.take(right_idx),
                                self.schema)
            if self.predicate is not None:
                mask = self.predicate.evaluate(combined)
                if not mask.any():
                    continue
                combined = combined.filter(mask)
            yield combined


class AggregateOp(PhysicalOperator):
    """Hash aggregate (pipeline breaker)."""

    def __init__(self, child: PhysicalOperator, group_keys: list[str],
                 aggregates: list[AggExpr], schema: Schema):
        super().__init__(schema, (child,))
        self.group_keys = group_keys
        self.aggregates = aggregates

    def _batches(self) -> Iterator[Table]:
        table = self.children[0].execute()
        if not self.group_keys:
            rows = [self._aggregate_rows(table,
                                         np.arange(table.num_rows))]
            yield Table.from_rows(rows, self.schema)
            return
        key_arrays = [table.column(k) for k in self.group_keys]
        groups: dict[tuple, list[int]] = {}
        for row, key in enumerate(zip(*key_arrays)):
            groups.setdefault(tuple(key), []).append(row)
        key_names = self.schema.names[: len(self.group_keys)]
        rows = []
        for key, indices in groups.items():
            row = dict(zip(key_names, key))
            row.update(self._aggregate_rows(table,
                                            np.asarray(indices, np.int64)))
            rows.append(row)
        yield Table.from_rows(rows, self.schema)

    def _aggregate_rows(self, table: Table, indices: np.ndarray) -> dict:
        out: dict = {}
        for agg in self.aggregates:
            if agg.operand is None:
                if agg.func != AggFunc.COUNT:
                    raise ExecutionError(f"{agg.func} requires an operand")
                out[agg.alias] = int(indices.shape[0])
                continue
            values = agg.operand.evaluate(table.take(indices))
            out[agg.alias] = _apply_agg(agg.func, values)
        return out


def _apply_agg(func: AggFunc, values: np.ndarray):
    if func == AggFunc.COUNT:
        return int(values.shape[0])
    if func == AggFunc.COUNT_DISTINCT:
        return int(len(set(values.tolist())))
    if values.shape[0] == 0:
        return 0 if func == AggFunc.SUM else None
    if func == AggFunc.SUM:
        return values.sum().item()
    if func == AggFunc.MIN:
        return values.min().item() if values.dtype != object else min(values)
    if func == AggFunc.MAX:
        return values.max().item() if values.dtype != object else max(values)
    if func == AggFunc.AVG:
        return float(np.mean(values.astype(np.float64)))
    raise ExecutionError(f"unsupported aggregate {func}")


def _combine(left: Table, right: Table, schema: Schema) -> Table:
    columns = {}
    names = schema.names
    position = 0
    for name in left.schema.names:
        columns[names[position]] = left.columns[name]
        position += 1
    for name in right.schema.names:
        columns[names[position]] = right.columns[name]
        position += 1
    return Table(schema, columns)


def _null_extend(left: Table, right_schema: Schema, schema: Schema) -> Table:
    """Pad unmatched left rows with type-appropriate null fills."""
    columns = {}
    names = schema.names
    position = 0
    for name in left.schema.names:
        columns[names[position]] = left.columns[name]
        position += 1
    n = left.num_rows
    for fld in right_schema.fields:
        if fld.dtype == DataType.STRING:
            fill = np.asarray([None] * n, dtype=object)
        elif fld.dtype == DataType.FLOAT64:
            fill = np.full(n, np.nan)
        elif fld.dtype == DataType.BOOL:
            fill = np.zeros(n, dtype=bool)
        else:
            fill = np.zeros(n, dtype=np.int64)
        columns[names[position]] = fill
        position += 1
    return Table(schema, columns)


# ----------------------------------------------------------------------
# Lowering: logical -> physical
# ----------------------------------------------------------------------
def build_physical(plan: LogicalPlan,
                   context: ExecutionContext) -> PhysicalOperator:
    """Lower a logical plan to a physical operator tree."""
    if isinstance(plan, ScanNode):
        table = context.catalog.get(plan.table_name)
        return ScanOp(table, context.batch_size, plan.qualifier)
    if isinstance(plan, PipelineNode):
        child = build_physical(plan.source, context) \
            if plan.source is not None else None
        return FusedPipelineOp(plan, context, child)
    if isinstance(plan, FilterNode):
        return FilterOp(build_physical(plan.child, context), plan.predicate)
    if isinstance(plan, ProjectNode):
        return ProjectOp(build_physical(plan.child, context), plan.exprs,
                         plan.schema)
    if isinstance(plan, LimitNode):
        return LimitOp(build_physical(plan.child, context), plan.count)
    if isinstance(plan, SortNode):
        return SortOp(build_physical(plan.child, context), plan.keys)
    if isinstance(plan, UnionNode):
        children = tuple(build_physical(c, context) for c in plan.children)
        return UnionOp(children)
    if isinstance(plan, JoinNode):
        left = build_physical(plan.left, context)
        right = build_physical(plan.right, context)
        if plan.left_keys:
            return HashJoinOp(left, right, plan.left_keys, plan.right_keys,
                              plan.join_type, plan.extra_predicate,
                              plan.schema)
        return NestedLoopJoinOp(left, right, plan.extra_predicate,
                                plan.join_type if plan.extra_predicate is None
                                else JoinType.INNER, plan.schema)
    if isinstance(plan, AggregateNode):
        return AggregateOp(build_physical(plan.child, context),
                           plan.group_keys, plan.aggregates, plan.schema)
    if isinstance(plan, (SemanticFilterNode, SemanticJoinNode,
                         SemanticGroupByNode, SemanticSemiFilterNode)):
        from repro.semantic.lowering import build_semantic_physical

        return build_semantic_physical(plan, context, build_physical)
    raise PlanError(f"no physical lowering for {type(plan).__name__}")


def execute_plan(plan: LogicalPlan, context: ExecutionContext) -> Table:
    """Lower and run a logical plan, returning the materialized result."""
    return build_physical(plan, context).execute()
