"""User-defined scalar functions with optimizer-visible annotations.

Paper §VII.A: "context-rich analysis can happen as a UDF or by invoking
another framework ... a mounting challenge is optimizing the external
operators in the query" (Froid, Raven).  The engine's answer is the same
as the paper's: UDFs register *with cost annotations* the optimizer can
read — per-row cost (so predicate ordering can defer expensive UDFs) and
a compute-class tag (so the hardware planner knows model-backed UDFs can
ship to accelerators).

Once registered, a UDF is callable from the expression API
(``Func("my_udf", (col("x"),))``) and from SQL (``my_udf(x)``) — the
parser accepts any function name and the binder validates registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ExpressionError
from repro.relational.expressions import (
    Expr,
    Func,
    register_function,
    unregister_function,
)
from repro.storage.types import DataType


@dataclass(frozen=True)
class ScalarUdf:
    """A registered scalar UDF and its optimizer annotations."""

    name: str
    result_dtype: DataType
    #: Abstract per-row evaluation cost (same units as CostParams; the
    #: built-in comparison costs ~1 per row, a model inference ~200+).
    cost_per_row: float = 10.0
    #: "relational" or "model" — the placement optimizer's compute class.
    compute_class: str = "relational"


_REGISTERED: dict[str, ScalarUdf] = {}


def register_udf(
    name: str,
    fn: Callable,
    result_dtype: DataType,
    cost_per_row: float = 10.0,
    compute_class: str = "relational",
    vectorized: bool = False,
    replace: bool = False,
) -> ScalarUdf:
    """Register a scalar UDF.

    ``fn`` is a per-value Python callable by default; pass
    ``vectorized=True`` when it already maps argument *arrays* to a
    result array.
    """
    if compute_class not in ("relational", "model"):
        raise ExpressionError(
            f"compute_class must be relational|model, got {compute_class!r}"
        )
    if vectorized:
        batch_fn = fn
    else:
        def batch_fn(args, _fn=fn):
            rows = zip(*args) if args else iter(())
            values = [_fn(*row) for row in rows]
            if result_dtype == DataType.STRING:
                return np.asarray(values, dtype=object)
            return np.asarray(values,
                              dtype=result_dtype.numpy_dtype)

    register_function(name, batch_fn, result_dtype, replace=replace)
    udf = ScalarUdf(name, result_dtype, cost_per_row, compute_class)
    _REGISTERED[name] = udf
    return udf


def unregister_udf(name: str) -> None:
    """Remove a UDF registration."""
    _REGISTERED.pop(name, None)
    unregister_function(name)


def udf_info(name: str) -> ScalarUdf | None:
    """Annotation record for a registered UDF (None for built-ins)."""
    return _REGISTERED.get(name)


def expression_udf_cost(expr: Expr) -> float:
    """Total per-row UDF cost referenced anywhere in ``expr``.

    The cost model adds this to predicate/projection costs so expensive
    UDFs change plan choices (e.g. run cheap filters first).
    """
    total = 0.0
    if isinstance(expr, Func):
        udf = _REGISTERED.get(expr.name)
        if udf is not None:
            total += udf.cost_per_row
    for child in expr.children():
        total += expression_udf_cost(child)
    return total
