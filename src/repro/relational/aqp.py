"""Sampling-based approximate query processing (paper §VI, ref [28]).

"Fast sampling running on modern hardware [28] ... can come in handy":
this module answers aggregate queries from a uniform row sample with
CLT-based confidence intervals.  The engine already uses sampling for
semantic selectivity estimation (:mod:`repro.optimizer.cardinality`);
this is the user-facing counterpart — trade exactness for a bounded,
quantified error at a fraction of the scan.

Supported: COUNT, SUM, AVG (with scale-up estimators and normal-
approximation intervals) over optional predicates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.relational.expressions import Expr
from repro.storage.table import Table
from repro.utils.rng import make_rng

#: z-scores for the confidence levels we expose.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ApproximateResult:
    """A point estimate with its confidence interval."""

    estimate: float
    ci_low: float
    ci_high: float
    confidence: float
    sample_rows: int
    total_rows: int

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high

    def __str__(self) -> str:
        return (f"{self.estimate:,.2f} ± {self.half_width:,.2f} "
                f"({self.confidence:.0%} CI, "
                f"{self.sample_rows}/{self.total_rows} rows sampled)")


class ApproximateAggregator:
    """Uniform-sampling approximate aggregates over a table."""

    def __init__(self, table: Table, sample_fraction: float = 0.1,
                 seed: int = 47):
        if not 0.0 < sample_fraction <= 1.0:
            raise ExecutionError("sample_fraction must be in (0, 1]")
        self.table = table
        self.sample_fraction = sample_fraction
        self.seed = seed
        self._sample = self._draw_sample()

    def _draw_sample(self) -> Table:
        n = self.table.num_rows
        sample_size = max(1, int(round(n * self.sample_fraction)))
        if sample_size >= n:
            return self.table
        rng = make_rng(self.seed)
        picks = np.sort(rng.choice(n, size=sample_size, replace=False))
        return self.table.take(picks)

    @property
    def sample(self) -> Table:
        return self._sample

    # ------------------------------------------------------------------
    def count(self, predicate: Expr | None = None,
              confidence: float = 0.95) -> ApproximateResult:
        """Approximate ``COUNT(*) [WHERE predicate]``."""
        z = _z(confidence)
        n = self.table.num_rows
        m = self._sample.num_rows
        if predicate is None:
            return ApproximateResult(float(n), float(n), float(n),
                                     confidence, m, n)
        mask = predicate.evaluate(self._sample)
        p_hat = float(mask.mean()) if m else 0.0
        estimate = p_hat * n
        # binomial proportion interval, scaled to the population
        stderr = math.sqrt(max(p_hat * (1 - p_hat), 0.0) / max(m, 1)) * n
        return ApproximateResult(estimate, max(estimate - z * stderr, 0.0),
                                 min(estimate + z * stderr, float(n)),
                                 confidence, m, n)

    def sum(self, column: str, predicate: Expr | None = None,
            confidence: float = 0.95) -> ApproximateResult:
        """Approximate ``SUM(column) [WHERE predicate]``."""
        z = _z(confidence)
        n = self.table.num_rows
        values = self._contributions(column, predicate)
        m = values.shape[0]
        mean = float(values.mean()) if m else 0.0
        estimate = mean * n
        stderr = (float(values.std(ddof=1)) / math.sqrt(m) * n
                  if m > 1 else 0.0)
        return ApproximateResult(estimate, estimate - z * stderr,
                                 estimate + z * stderr, confidence, m, n)

    def avg(self, column: str, predicate: Expr | None = None,
            confidence: float = 0.95) -> ApproximateResult:
        """Approximate ``AVG(column) [WHERE predicate]`` (over matching
        rows)."""
        z = _z(confidence)
        n = self.table.num_rows
        if predicate is None:
            values = np.asarray(self._sample.column(column),
                                dtype=np.float64)
        else:
            mask = predicate.evaluate(self._sample)
            values = np.asarray(self._sample.column(column),
                                dtype=np.float64)[mask]
        m = values.shape[0]
        if m == 0:
            return ApproximateResult(0.0, 0.0, 0.0, confidence, 0, n)
        mean = float(values.mean())
        stderr = float(values.std(ddof=1)) / math.sqrt(m) if m > 1 else 0.0
        return ApproximateResult(mean, mean - z * stderr, mean + z * stderr,
                                 confidence, m, n)

    def _contributions(self, column: str,
                       predicate: Expr | None) -> np.ndarray:
        """Per-sampled-row contribution to the SUM (0 for filtered rows)."""
        values = np.asarray(self._sample.column(column), dtype=np.float64)
        if predicate is not None:
            mask = predicate.evaluate(self._sample)
            values = np.where(mask, values, 0.0)
        return values


def _z(confidence: float) -> float:
    if confidence not in _Z_SCORES:
        raise ExecutionError(
            f"supported confidence levels: {sorted(_Z_SCORES)}"
        )
    return _Z_SCORES[confidence]
