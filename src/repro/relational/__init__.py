"""Relational engine: expressions, logical plans, physical operators.

The execution model is *vectorized volcano*: physical operators pull
column-batch :class:`~repro.storage.table.Table` chunks from their
children.  Semantic (model-assisted) operators in :mod:`repro.semantic`
plug into exactly the same interfaces — that uniformity is the paper's
central integration claim (§IV).
"""

from repro.relational.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
    col,
    lit,
    split_conjuncts,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SortNode,
    UnionNode,
)
from repro.relational.physical import PhysicalOperator, execute_plan

__all__ = [
    "AggExpr",
    "AggFunc",
    "And",
    "Arith",
    "ColumnRef",
    "Compare",
    "Expr",
    "Func",
    "InList",
    "Literal",
    "Not",
    "Or",
    "col",
    "lit",
    "split_conjuncts",
    "AggregateNode",
    "FilterNode",
    "JoinNode",
    "JoinType",
    "LimitNode",
    "LogicalPlan",
    "ProjectNode",
    "ScanNode",
    "SemanticFilterNode",
    "SemanticGroupByNode",
    "SemanticJoinNode",
    "SortNode",
    "UnionNode",
    "PhysicalOperator",
    "execute_plan",
]
