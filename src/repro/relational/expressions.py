"""Expression trees evaluated vectorized over table batches.

Expressions are immutable; ``evaluate`` maps a batch to a NumPy array and
``columns`` reports referenced column names (the optimizer's pushdown rules
depend on it).  The ``col``/``lit`` helpers plus operator overloading give
the builder API a readable surface::

    (col("price") > 20) & (col("type") == "clothes")
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ExpressionError
from repro.storage.table import Table
from repro.storage.types import DataType, date_to_int


class Expr:
    """Base class for scalar expressions."""

    def evaluate(self, batch: Table) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns referenced by this expression."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    # -- operator sugar -------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return Compare("=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare("!=", self, _wrap(other))

    def __lt__(self, other):
        return Compare("<", self, _wrap(other))

    def __le__(self, other):
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, _wrap(other))

    def __and__(self, other):
        return And(self, _wrap(other))

    def __or__(self, other):
        return Or(self, _wrap(other))

    def __invert__(self):
        return Not(self)

    def __add__(self, other):
        return Arith("+", self, _wrap(other))

    def __sub__(self, other):
        return Arith("-", self, _wrap(other))

    def __mul__(self, other):
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other):
        return Arith("/", self, _wrap(other))

    def isin(self, values) -> "InList":
        return InList(self, list(values))

    def __hash__(self):
        return hash(repr(self))

    def same_as(self, other: "Expr") -> bool:
        """Structural equality (``==`` is overloaded to build Compare)."""
        return repr(self) == repr(other)


@dataclass(frozen=True, eq=False, repr=False)
class ColumnRef(Expr):
    """Reference to a column by (possibly qualified) name."""

    name: str

    def evaluate(self, batch: Table) -> np.ndarray:
        return batch.column(self.name)

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True, eq=False, repr=False)
class Literal(Expr):
    """A constant value."""

    value: object

    def __post_init__(self):
        if isinstance(self.value, datetime.date):
            object.__setattr__(self, "value", date_to_int(self.value))

    def evaluate(self, batch: Table) -> np.ndarray:
        n = batch.num_rows
        if isinstance(self.value, str):
            return np.asarray([self.value] * n, dtype=object)
        return np.full(n, self.value)

    def scalar(self):
        return self.value

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARE_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, eq=False, repr=False)
class Compare(Expr):
    """Binary comparison producing a boolean mask."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARE_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, batch: Table) -> np.ndarray:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        result = _COMPARE_OPS[self.op](left, right)
        return np.asarray(result, dtype=bool)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, batch: Table) -> np.ndarray:
        return self.left.evaluate(batch) & self.right.evaluate(batch)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, batch: Table) -> np.ndarray:
        return self.left.evaluate(batch) | self.right.evaluate(batch)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Not(Expr):
    operand: Expr

    def evaluate(self, batch: Table) -> np.ndarray:
        return ~self.operand.evaluate(batch)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True, eq=False, repr=False)
class Arith(Expr):
    """Binary arithmetic over numeric columns."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, batch: Table) -> np.ndarray:
        return _ARITH_OPS[self.op](self.left.evaluate(batch),
                                   self.right.evaluate(batch))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class InList(Expr):
    """Membership test against a literal list."""

    operand: Expr
    values: list

    def evaluate(self, batch: Table) -> np.ndarray:
        data = self.operand.evaluate(batch)
        allowed = set(self.values)
        return np.asarray([value in allowed for value in data], dtype=bool)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"({self.operand!r} IN {self.values!r})"


def _scalar_year(days: float) -> int:
    from repro.storage.types import int_to_date

    return int_to_date(int(days)).year


_FUNCTIONS = {
    "lower": lambda args: np.asarray([s.lower() if isinstance(s, str) else s
                                      for s in args[0]], dtype=object),
    "upper": lambda args: np.asarray([s.upper() if isinstance(s, str) else s
                                      for s in args[0]], dtype=object),
    "length": lambda args: np.asarray([len(s) if isinstance(s, str) else 0
                                       for s in args[0]], dtype=np.int64),
    "abs": lambda args: np.abs(args[0]),
    "year": lambda args: np.asarray([_scalar_year(d) for d in args[0]],
                                    dtype=np.int64),
}

#: Static result types of the built-in functions ("abs" is input-typed and
#: handled specially by dtype inference).
FUNCTION_DTYPES = {
    "lower": DataType.STRING,
    "upper": DataType.STRING,
    "length": DataType.INT64,
    "year": DataType.INT64,
}


def register_function(name: str, batch_fn, result_dtype: DataType,
                      replace: bool = False) -> None:
    """Register a scalar function usable in expressions and SQL.

    ``batch_fn`` receives a list of evaluated argument arrays and returns
    one array — the UDF contract of :mod:`repro.relational.udf`, which is
    the public entry point (it also carries optimizer cost annotations).
    """
    if name in _FUNCTIONS and not replace:
        raise ExpressionError(f"function {name!r} already registered")
    _FUNCTIONS[name] = batch_fn
    FUNCTION_DTYPES[name] = result_dtype


def unregister_function(name: str) -> None:
    """Remove a registered function (built-ins included; use with care)."""
    _FUNCTIONS.pop(name, None)
    FUNCTION_DTYPES.pop(name, None)


@dataclass(frozen=True, eq=False, repr=False)
class Func(Expr):
    """Scalar function call (``lower``, ``upper``, ``length``, ``abs``,
    ``year``)."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self):
        if self.name not in _FUNCTIONS:
            raise ExpressionError(
                f"unknown function {self.name!r}; "
                f"available: {sorted(_FUNCTIONS)}"
            )

    def evaluate(self, batch: Table) -> np.ndarray:
        evaluated = [arg.evaluate(batch) for arg in self.args]
        return _FUNCTIONS[self.name](evaluated)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------
class AggFunc(enum.Enum):
    """Aggregate functions supported by the hash aggregate."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    COUNT_DISTINCT = "count_distinct"


@dataclass(frozen=True, eq=False, repr=False)
class AggExpr:
    """An aggregate over an input expression (None = ``COUNT(*)``)."""

    func: AggFunc
    operand: Expr | None
    alias: str

    def result_dtype(self, input_dtype: DataType | None) -> DataType:
        if self.func in (AggFunc.COUNT, AggFunc.COUNT_DISTINCT):
            return DataType.INT64
        if self.func == AggFunc.AVG:
            return DataType.FLOAT64
        if input_dtype is None:
            raise ExpressionError(f"{self.func} requires an operand")
        return input_dtype

    def __repr__(self) -> str:
        inner = "*" if self.operand is None else repr(self.operand)
        return f"{self.func.value}({inner}) AS {self.alias}"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def col(name: str) -> ColumnRef:
    """Shorthand column reference."""
    return ColumnRef(name)


def lit(value) -> Literal:
    """Shorthand literal."""
    return Literal(value)


def _wrap(value) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a conjunction tree into its AND-ed parts."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def combine_conjuncts(parts: list[Expr]) -> Expr:
    """Re-assemble conjuncts into a single expression."""
    if not parts:
        raise ExpressionError("cannot combine zero conjuncts")
    result = parts[0]
    for part in parts[1:]:
        result = And(result, part)
    return result
