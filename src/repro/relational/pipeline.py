"""Fused operator pipelines: one plan node for a compiled chain.

The optimizer's fusion pass (:mod:`repro.optimizer.fusion`) groups
maximal fusible chains — ``Scan -> Filter* -> Project? -> Filter* ->
Limit`` and the pre-/post-filter chains around semantic operators — into
one :class:`PipelineNode`.  Physical lowering compiles the whole chain
into a single generated kernel (:func:`repro.hardware.jit.compile_pipeline`)
that binds input columns once, evaluates the fused predicate mask,
applies projections on the masked selection, and returns output columns
— no intermediate :class:`~repro.storage.table.Table` per operator, one
boolean-index pass per filter segment instead of one per operator.

``stages`` are the original logical nodes, innermost first, so EXPLAIN,
cardinality estimation, and the reuse subsystem's shape fingerprints can
always see through the fusion (a fused plan must describe like its
unfused twin).  A ``ScanNode`` may only appear as ``stages[0]`` (then
the pipeline has no children and the executor feeds the whole base
table through the kernel in one pass); otherwise the pipeline has one
child — the barrier operator (join, aggregate, sort, semantic node)
whose output batches stream through the kernel.
"""

from __future__ import annotations

import hashlib

from repro.errors import PlanError
from repro.relational.logical import (
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
)
from repro.storage.schema import Schema


class PipelineNode(LogicalPlan):
    """A maximal fusible operator chain compiled to one kernel."""

    def __init__(self, stages: tuple[LogicalPlan, ...],
                 source: LogicalPlan | None):
        if not stages:
            raise PlanError("pipeline of zero stages")
        for index, stage in enumerate(stages):
            if isinstance(stage, ScanNode):
                if index != 0 or source is not None:
                    raise PlanError(
                        "a scan may only be the innermost pipeline stage")
            elif not isinstance(stage, (FilterNode, ProjectNode,
                                        LimitNode)):
                raise PlanError(
                    f"{type(stage).__name__} is not a fusible stage")
        super().__init__(() if source is None else (source,))
        #: Original logical nodes, innermost first.  Their own child
        #: pointers still reference the pre-fusion subtree; consumers
        #: that need the input go through ``self.children``.
        self.stages = tuple(stages)

    # -- structure ------------------------------------------------------
    @property
    def source(self) -> LogicalPlan | None:
        """The barrier input, or ``None`` when the pipeline embeds its
        own scan."""
        return self.children[0] if self.children else None

    @property
    def scan(self) -> ScanNode | None:
        head = self.stages[0]
        return head if isinstance(head, ScanNode) else None

    @property
    def compute_stages(self) -> tuple[LogicalPlan, ...]:
        """The Filter/Project stages the kernel actually fuses."""
        return tuple(stage for stage in self.stages
                     if isinstance(stage, (FilterNode, ProjectNode)))

    @property
    def limit(self) -> int | None:
        """Effective row limit of the chain's trailing Limit stages."""
        counts = [stage.count for stage in self.stages
                  if isinstance(stage, LimitNode)]
        return min(counts) if counts else None

    def input_schema(self) -> Schema:
        scan = self.scan
        if scan is not None:
            return scan.schema
        return self.children[0].schema

    def _compute_schema(self) -> Schema:
        return self.stages[-1].schema

    def _clone(self, children):
        return PipelineNode(self.stages,
                            children[0] if children else None)

    def label(self) -> str:
        kinds = "→".join(_stage_kind(stage) for stage in self.stages)
        return f"Pipeline[{kinds}]"

    # -- identity -------------------------------------------------------
    def fingerprint(self) -> str:
        """Structural digest the kernel cache keys on.

        Covers everything the generated code depends on: the input
        column names, every fused predicate/projection expression (their
        ``repr`` is total — literals print their values), the trailing
        limit, and the output column names + dtypes.  Catalog versions
        and data generations are deliberately absent: a kernel is a pure
        function of plan structure, so it stays valid across data
        changes as long as the schema (and therefore this digest) does —
        the invalidation note in ``docs/serving.md`` spells this out.
        """
        parts = [",".join(self.input_schema().names)]
        for stage in self.stages:
            if isinstance(stage, FilterNode):
                parts.append(f"filter {stage.predicate!r}")
            elif isinstance(stage, ProjectNode):
                items = "; ".join(f"{expr!r} AS {alias}"
                                  for expr, alias in stage.exprs)
                parts.append(f"project {items}")
            elif isinstance(stage, LimitNode):
                parts.append(f"limit {stage.count}")
            else:  # ScanNode: column names already cover the shape
                parts.append(f"scan as {stage.qualifier}")
        parts.append(",".join(f"{field.name}:{field.dtype.name}"
                              for field in self.schema.fields))
        return hashlib.blake2b("\n".join(parts).encode("utf-8"),
                               digest_size=16).hexdigest()

    def kernel_spec(self):
        """The backend-agnostic :class:`~repro.hardware.jit.PipelineSpec`
        for this chain (filter runs merged into single segments)."""
        from repro.hardware.jit import PipelineSpec
        from repro.storage.types import DataType

        ops: list[tuple] = []
        for stage in self.stages:
            if isinstance(stage, FilterNode):
                if ops and ops[-1][0] == "filter":
                    ops[-1] = ("filter", ops[-1][1] + (stage.predicate,))
                else:
                    ops.append(("filter", (stage.predicate,)))
            elif isinstance(stage, ProjectNode):
                ops.append(("project", tuple(stage.exprs)))
        return PipelineSpec(
            input_columns=tuple(self.input_schema().names),
            ops=tuple(ops),
            output=tuple((field.name, field.dtype == DataType.STRING)
                         for field in self.schema.fields))


def _stage_kind(stage: LogicalPlan) -> str:
    if isinstance(stage, ScanNode):
        return f"Scan({stage.table_name})"
    return type(stage).__name__.removesuffix("Node")
