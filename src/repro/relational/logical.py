"""Logical plan algebra.

Relational and *semantic* (model-assisted) operators share one plan IR, so
the optimizer rewrites them uniformly — the paper's §IV requirement of "a
common intermediate representation amenable to optimization rules".

Nodes are immutable; rewrites construct new nodes via ``with_children`` or
the constructors.  Every node computes its output schema, and carries an
open ``hints`` mapping the optimizer uses to record physical decisions
(join algorithm, semantic-join access path, device placement).
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import ExpressionError, PlanError
from repro.relational.expressions import (
    AggExpr,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    And,
    Not,
    Or,
)
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


def infer_dtype(expr: Expr, schema: Schema) -> DataType:
    """Static result type of ``expr`` against ``schema``."""
    if isinstance(expr, ColumnRef):
        return schema.dtype_of(schema.names[schema.index_of(expr.name)])
    if isinstance(expr, Literal):
        return DataType.infer(expr.value)
    if isinstance(expr, (Compare, And, Or, Not, InList)):
        return DataType.BOOL
    if isinstance(expr, Arith):
        left = infer_dtype(expr.left, schema)
        right = infer_dtype(expr.right, schema)
        if expr.op == "/":
            return DataType.FLOAT64
        if DataType.FLOAT64 in (left, right):
            return DataType.FLOAT64
        return DataType.INT64
    if isinstance(expr, Func):
        if expr.name == "abs":
            return infer_dtype(expr.args[0], schema)
        from repro.relational.expressions import FUNCTION_DTYPES

        if expr.name in FUNCTION_DTYPES:
            return FUNCTION_DTYPES[expr.name]
    raise ExpressionError(f"cannot infer dtype of {expr!r}")


class JoinType(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"
    CROSS = "cross"


class LogicalPlan:
    """Base class of all logical plan nodes."""

    def __init__(self, children: tuple["LogicalPlan", ...]):
        self.children = children
        self.hints: dict = {}
        self._schema: Schema | None = None

    # -- schema ---------------------------------------------------------
    @property
    def schema(self) -> Schema:
        if self._schema is None:
            self._schema = self._compute_schema()
        return self._schema

    def _compute_schema(self) -> Schema:
        raise NotImplementedError

    # -- tree utilities --------------------------------------------------
    def with_children(self, children: tuple["LogicalPlan", ...]) -> "LogicalPlan":
        clone = self._clone(children)
        clone.hints = dict(self.hints)
        return clone

    def _clone(self, children: tuple["LogicalPlan", ...]) -> "LogicalPlan":
        raise NotImplementedError

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.label()


class ScanNode(LogicalPlan):
    """Scan a catalog table, optionally qualifying its column names."""

    def __init__(self, table_name: str, schema: Schema,
                 qualifier: str | None = None):
        super().__init__(())
        self.table_name = table_name
        self.qualifier = qualifier
        self._base_schema = schema

    def _compute_schema(self) -> Schema:
        if self.qualifier:
            return self._base_schema.qualified(self.qualifier)
        return self._base_schema

    def _clone(self, children):
        if children:
            raise PlanError("ScanNode takes no children")
        return ScanNode(self.table_name, self._base_schema, self.qualifier)

    def label(self) -> str:
        alias = f" AS {self.qualifier}" if self.qualifier else ""
        return f"Scan({self.table_name}{alias})"


class FilterNode(LogicalPlan):
    """Row filter by a boolean expression."""

    def __init__(self, child: LogicalPlan, predicate: Expr):
        super().__init__((child,))
        self.predicate = predicate

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        return self.child.schema

    def _clone(self, children):
        return FilterNode(children[0], self.predicate)

    def label(self) -> str:
        return f"Filter[{self.predicate!r}]"


class ProjectNode(LogicalPlan):
    """Projection / computed columns: list of (expression, output name)."""

    def __init__(self, child: LogicalPlan, exprs: list[tuple[Expr, str]]):
        super().__init__((child,))
        self.exprs = list(exprs)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        fields = []
        for expr, alias in self.exprs:
            fields.append(Field(alias, infer_dtype(expr, self.child.schema)))
        return Schema(fields)

    def _clone(self, children):
        return ProjectNode(children[0], self.exprs)

    def label(self) -> str:
        inner = ", ".join(f"{e!r} AS {a}" for e, a in self.exprs)
        return f"Project[{inner}]"


class JoinNode(LogicalPlan):
    """Equi-join on key column lists, plus an optional residual predicate.

    Empty key lists mean a cross join (then ``extra_predicate`` makes it a
    theta join executed by nested loops).
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 join_type: JoinType = JoinType.INNER,
                 left_keys: list[str] | None = None,
                 right_keys: list[str] | None = None,
                 extra_predicate: Expr | None = None):
        super().__init__((left, right))
        self.join_type = join_type
        self.left_keys = list(left_keys or [])
        self.right_keys = list(right_keys or [])
        self.extra_predicate = extra_predicate
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("join key lists must have equal length")

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    def _compute_schema(self) -> Schema:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            return self.left.schema
        return self.left.schema.concat(self.right.schema)

    def _clone(self, children):
        return JoinNode(children[0], children[1], self.join_type,
                        self.left_keys, self.right_keys,
                        self.extra_predicate)

    def label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in
                         zip(self.left_keys, self.right_keys))
        extra = f" AND {self.extra_predicate!r}" if self.extra_predicate else ""
        return f"Join[{self.join_type.value}: {keys}{extra}]"


class AggregateNode(LogicalPlan):
    """Hash aggregate with optional grouping keys."""

    def __init__(self, child: LogicalPlan, group_keys: list[str],
                 aggregates: list[AggExpr]):
        super().__init__((child,))
        self.group_keys = list(group_keys)
        self.aggregates = list(aggregates)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        fields = []
        child_schema = self.child.schema
        for key in self.group_keys:
            index = child_schema.index_of(key)
            fields.append(child_schema.fields[index])
        for agg in self.aggregates:
            input_dtype = None
            if agg.operand is not None:
                input_dtype = infer_dtype(agg.operand, child_schema)
            fields.append(Field(agg.alias, agg.result_dtype(input_dtype)))
        return Schema(fields)

    def _clone(self, children):
        return AggregateNode(children[0], self.group_keys, self.aggregates)

    def label(self) -> str:
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"Aggregate[keys={self.group_keys}; {aggs}]"


class SortNode(LogicalPlan):
    """Stable multi-key sort; keys are (column, ascending)."""

    def __init__(self, child: LogicalPlan, keys: list[tuple[str, bool]]):
        super().__init__((child,))
        self.keys = list(keys)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        return self.child.schema

    def _clone(self, children):
        return SortNode(children[0], self.keys)

    def label(self) -> str:
        keys = ", ".join(f"{k}{'' if asc else ' DESC'}" for k, asc in self.keys)
        return f"Sort[{keys}]"


class LimitNode(LogicalPlan):
    def __init__(self, child: LogicalPlan, count: int):
        super().__init__((child,))
        if count < 0:
            raise PlanError("limit must be non-negative")
        self.count = count

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        return self.child.schema

    def _clone(self, children):
        return LimitNode(children[0], self.count)

    def label(self) -> str:
        return f"Limit[{self.count}]"


class UnionNode(LogicalPlan):
    """UNION ALL of same-schema inputs."""

    def __init__(self, children: list[LogicalPlan]):
        if not children:
            raise PlanError("union of zero inputs")
        super().__init__(tuple(children))

    def _compute_schema(self) -> Schema:
        first = self.children[0].schema
        for child in self.children[1:]:
            if child.schema.names != first.names:
                raise PlanError("union inputs must share column names")
        return first

    def _clone(self, children):
        return UnionNode(list(children))

    def label(self) -> str:
        return f"UnionAll[{len(self.children)}]"


# ----------------------------------------------------------------------
# Semantic (model-assisted) operators — paper §IV
# ----------------------------------------------------------------------
class SemanticFilterNode(LogicalPlan):
    """Semantic Select: keep rows whose ``column`` is context-similar to
    ``probe`` under ``model_name`` with cosine >= ``threshold``.

    Mirrors the paper's example::

        word = "Clothes" USING MODEL "M" WITH COSINE THRESHOLD >= 0.9
    """

    def __init__(self, child: LogicalPlan, column: str, probe: str,
                 model_name: str, threshold: float,
                 score_alias: str | None = None, mode: str = "value"):
        super().__init__((child,))
        if not 0.0 <= threshold <= 1.0:
            raise PlanError("semantic threshold must be within [0, 1]")
        if mode not in ("value", "contains"):
            raise PlanError(
                f"semantic filter mode must be value|contains, got {mode!r}"
            )
        self.column = column
        self.probe = probe
        self.model_name = model_name
        self.threshold = threshold
        self.score_alias = score_alias
        #: "value" embeds the whole cell; "contains" matches any token of
        #: free text against the probe.
        self.mode = mode

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        schema = self.child.schema
        if self.score_alias:
            schema = Schema(list(schema.fields)
                            + [Field(self.score_alias, DataType.FLOAT64)])
        return schema

    def _clone(self, children):
        return SemanticFilterNode(children[0], self.column, self.probe,
                                  self.model_name, self.threshold,
                                  self.score_alias, self.mode)

    def label(self) -> str:
        op = "contains" if self.mode == "contains" else "~"
        return (f"SemanticFilter[{self.column} {op} {self.probe!r} "
                f"model={self.model_name} >= {self.threshold}]")


class SemanticSemiFilterNode(LogicalPlan):
    """Disjunctive semantic filter: keep rows whose ``column`` matches ANY
    of ``probes`` at the threshold.

    Produced by the data-induced-predicate pass (paper §IV, ref [23]): the
    distinct key values of a selective semantic-join build side become a
    derived predicate pushed into the probe side.
    """

    def __init__(self, child: LogicalPlan, column: str, probes: list[str],
                 model_name: str, threshold: float):
        super().__init__((child,))
        if not probes:
            raise PlanError("semantic semi-filter needs at least one probe")
        if not 0.0 <= threshold <= 1.0:
            raise PlanError("semantic threshold must be within [0, 1]")
        self.column = column
        self.probes = list(probes)
        self.model_name = model_name
        self.threshold = threshold

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        return self.child.schema

    def _clone(self, children):
        return SemanticSemiFilterNode(children[0], self.column, self.probes,
                                      self.model_name, self.threshold)

    def label(self) -> str:
        shown = ", ".join(self.probes[:3])
        suffix = ", ..." if len(self.probes) > 3 else ""
        return (f"SemanticSemiFilter[{self.column} ~ any({shown}{suffix}) "
                f"model={self.model_name} >= {self.threshold}]")


class SemanticJoinNode(LogicalPlan):
    """Semantic Join: match rows whose join-key *context* is similar.

    Output schema is the concatenation of both inputs plus a similarity
    score column.
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 left_column: str, right_column: str, model_name: str,
                 threshold: float, score_alias: str = "similarity",
                 top_k: int | None = None, aux_alias: str | None = None):
        super().__init__((left, right))
        if not 0.0 <= threshold <= 1.0:
            raise PlanError("semantic threshold must be within [0, 1]")
        if top_k is not None and top_k < 1:
            raise PlanError("top_k must be positive")
        if aux_alias is not None and top_k is None:
            raise PlanError("aux_alias requires a top-k join")
        self.left_column = left_column
        self.right_column = right_column
        self.model_name = model_name
        self.threshold = threshold
        self.score_alias = score_alias
        #: When set, each distinct left key matches its k most similar
        #: right keys (scores still floored at ``threshold``).
        self.top_k = top_k
        #: Reuse-subsystem hook: when set (top-k joins only), the
        #: physical operator appends ``{aux_alias}_group`` (left-distinct
        #: group id) and ``{aux_alias}_rank`` (pair rank inside its
        #: group's descending-score selection) — what the residual
        #: executor needs to re-truncate a cached result to a smaller k.
        self.aux_alias = aux_alias

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    def _compute_schema(self) -> Schema:
        combined = self.left.schema.concat(self.right.schema)
        fields = list(combined.fields) + [Field(self.score_alias,
                                               DataType.FLOAT64)]
        if self.aux_alias is not None:
            fields.append(Field(f"{self.aux_alias}_group", DataType.INT64))
            fields.append(Field(f"{self.aux_alias}_rank", DataType.INT64))
        return Schema(fields)

    def _clone(self, children):
        return SemanticJoinNode(children[0], children[1], self.left_column,
                                self.right_column, self.model_name,
                                self.threshold, self.score_alias,
                                self.top_k, self.aux_alias)

    def label(self) -> str:
        method = self.hints.get("method", "auto")
        mode = f" top_k={self.top_k}" if self.top_k is not None else ""
        return (f"SemanticJoin[{self.left_column} ~ {self.right_column} "
                f"model={self.model_name} >= {self.threshold}{mode} "
                f"method={method}]")


class SemanticGroupByNode(LogicalPlan):
    """Semantic GroupBy: on-the-fly clustering of ``column`` by context
    similarity; appends cluster id and cluster representative columns."""

    def __init__(self, child: LogicalPlan, column: str, model_name: str,
                 threshold: float, cluster_alias: str = "cluster_id",
                 representative_alias: str = "cluster_rep"):
        super().__init__((child,))
        if not 0.0 <= threshold <= 1.0:
            raise PlanError("semantic threshold must be within [0, 1]")
        self.column = column
        self.model_name = model_name
        self.threshold = threshold
        self.cluster_alias = cluster_alias
        self.representative_alias = representative_alias

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    def _compute_schema(self) -> Schema:
        return Schema(
            list(self.child.schema.fields)
            + [Field(self.cluster_alias, DataType.INT64),
               Field(self.representative_alias, DataType.STRING)]
        )

    def _clone(self, children):
        return SemanticGroupByNode(children[0], self.column, self.model_name,
                                   self.threshold, self.cluster_alias,
                                   self.representative_alias)

    def label(self) -> str:
        return (f"SemanticGroupBy[{self.column} model={self.model_name} "
                f">= {self.threshold}]")
