"""Incremental ingest: append/upsert with delta-maintained caches.

See :mod:`repro.ingest.manager` for the maintenance pipeline and
:mod:`repro.ingest.delta` for the append-monotonicity proofs; the full
invalidation matrix lives in ``docs/ingest.md``.
"""

from repro.ingest.delta import (
    DeltaRefused,
    DeltaSpec,
    apply_delta,
    classify_plan,
)
from repro.ingest.manager import IngestManager, IngestReport

__all__ = [
    "DeltaRefused",
    "DeltaSpec",
    "IngestManager",
    "IngestReport",
    "apply_delta",
    "classify_plan",
]
