"""The ingest front door: append/upsert with delta-maintained caches.

Row mutations used to be impossible without nuking every cache through
``Catalog.register(replace=True)`` (a catalog-version bump invalidates
plans, results, and reuse entries engine-wide).  The
:class:`IngestManager` gives the engine a second, *precise* invalidation
dimension — the per-table ``data_version`` — and spends it carefully:

- the **plan cache** and **kernel cache** key on the catalog version and
  structural fingerprints, neither of which an append changes, so they
  survive untouched (asserted by the ingest benchmark's hit-rate gate).
  The one exception: plans containing data-induced predicates
  (:class:`SemanticSemiFilterNode` — their probe sets were derived from
  the *old* rows) are dropped via :meth:`PlanCache.drop_if`;
- **result-cache / reuse entries** over the mutated table are patched in
  place when :func:`repro.ingest.delta.classify_plan` proves the plan
  append-monotone — the original plan is re-executed over *only* the new
  rows (against a private shim catalog) and merged bit-identically —
  and otherwise die at the table-version watermark
  (:meth:`ResultCache.advance_table_version`).  Never served stale:
  every key carries ``(table, data_version)`` pairs;
- **embedding arenas and vector indexes** need no action here: arenas
  are append-only interning stores, and the index cache grows an
  existing index when a new id set extends the old one as a sorted
  prefix (see :meth:`IndexCache.get_for_ids`).

Locking: ``IngestManager._lock`` is level 0 — the outermost lock in the
engine hierarchy (``repro.analysis.lock_levels``).  Holding it, the
maintenance path acquires the plan cache (1), model read stripes (2),
the catalog (3), and leaf instruments (4), all strictly downward.  One
mutation runs at a time per engine state; queries are never blocked
(they take none of this — the result cache's own watermark provides
the consistency story).
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.result_cache import ResultKey
from repro.engine.state import plan_models, plan_tables
from repro.errors import CatalogError
from repro.ingest.delta import DeltaRefused, apply_delta, classify_plan
from repro.relational.physical import ExecutionContext, execute_plan
from repro.storage.catalog import Catalog
from repro.storage.table import Table

if TYPE_CHECKING:
    from repro.engine.state import EngineState
    from repro.obs.metrics import Gauge

RowBatch = "list[dict[str, Any]] | Table"


@dataclass(frozen=True)
class IngestReport:
    """What one append/upsert did to the engine's caches.

    ``maintained`` entries were patched bit-identically from the delta;
    ``refused`` entries failed an append-monotonicity proof (per-reason
    tallies in ``refusals``) and were invalidated instead — by the
    table-version watermark, so they can never serve stale rows.
    """

    table: str
    mode: str                       # "append" | "upsert"
    rows_inserted: int
    rows_updated: int
    data_version: int
    entries_seen: int
    maintained: int
    refused: int
    refusals: dict[str, int] = field(default_factory=dict)
    plans_dropped: int = 0
    staleness_seconds: float = 0.0


class IngestManager:
    """Serialized append/upsert path over one :class:`EngineState`."""

    def __init__(self, state: "EngineState") -> None:
        self._state = state
        # level 0: outermost in the engine lock hierarchy — see
        # repro.analysis.lock_levels
        self._lock = Lock()
        self._staleness_gauges: dict[str, "Gauge"] = {}
        self._rows_total = 0
        self._maintained_total = 0
        self._refused_total = 0
        self._refusal_reasons: dict[str, int] = {}
        registry = state.metrics_registry
        self._rows_counter = registry.counter(
            "ingest_rows_total",
            help="rows written through append/upsert")
        self._maintained_counter = registry.counter(
            "ingest_delta_maintained_total",
            help="cached results patched in place from an append delta")
        self._refused_counter = registry.counter(
            "ingest_delta_refused_total",
            help="cached results that failed an append-monotonicity "
                 "proof and were invalidated instead")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def append(self, table: str, rows: Any) -> IngestReport:
        """Append ``rows`` (row dicts or a same-schema :class:`Table`).

        Bumps only the table's ``data_version`` — the catalog version,
        and with it every plan- and kernel-cache entry, is untouched.
        Cached results over the table are delta-maintained or precisely
        invalidated; see the module docstring for the full contract.
        """
        started = time.perf_counter()
        with self._lock:
            base = self._state.catalog.get(table)
            delta = self._coerce_rows(base, rows)
            if delta.num_rows == 0:
                return IngestReport(
                    table=table, mode="append", rows_inserted=0,
                    rows_updated=0,
                    data_version=self._state.catalog.data_version(table),
                    entries_seen=0, maintained=0, refused=0)
            report = self._append_locked(table, delta, started)
        return report

    def upsert(self, table: str, rows: Any, key: str) -> IngestReport:
        """Insert-or-replace ``rows`` by the ``key`` column.

        Rows whose key matches an existing row replace it in place; the
        rest append.  Any in-place replacement makes old cached outputs
        unrecoverable (replaced values may have already contributed), so
        the update path falls back to targeted invalidation — still
        scoped to this one table's ``data_version``, never the catalog
        version.  A batch with no key collisions takes the full
        delta-maintenance append path.
        """
        started = time.perf_counter()
        with self._lock:
            base = self._state.catalog.get(table)
            if key not in base.schema:
                raise CatalogError(
                    f"upsert key {key!r} not in table {table!r} "
                    f"columns {base.schema.names}")
            delta = self._coerce_rows(base, rows)
            if delta.num_rows == 0:
                return IngestReport(
                    table=table, mode="upsert", rows_inserted=0,
                    rows_updated=0,
                    data_version=self._state.catalog.data_version(table),
                    entries_seen=0, maintained=0, refused=0)
            positions = {value: index for index, value
                         in enumerate(base.column(key))}
            hits = np.asarray([value in positions
                               for value in delta.column(key)], dtype=bool)
            if not hits.any():
                report = self._append_locked(table, delta, started,
                                             mode="upsert")
            else:
                report = self._replace_locked(
                    table, base, delta, key, positions, hits, started)
        return report

    def stats(self) -> dict[str, Any]:
        """Lifetime ingest counters (one consistent snapshot)."""
        with self._lock:
            return {
                "rows_total": self._rows_total,
                "delta_maintained_total": self._maintained_total,
                "delta_refused_total": self._refused_total,
                "refusal_reasons": dict(self._refusal_reasons),
            }

    # ------------------------------------------------------------------
    # Append path: delta maintenance
    # ------------------------------------------------------------------
    def _append_locked(self, table: str, delta: Table, started: float,
                       mode: str = "append") -> IngestReport:
        state = self._state
        # 1. snapshot the entries to maintain BEFORE the version bump:
        #    advance_table_version sweeps them, and the patch path needs
        #    their pre-append contents.
        entries: list[tuple[ResultKey, Table, tuple[str, ...]]] = []
        if state.result_cache is not None:
            entries = state.result_cache.entries_for_table(table)
        # 2. grow the table; only its data_version moves.
        new_version = state.catalog.append_rows(table, delta)
        # 3. data-induced-predicate plans derived their probe sets from
        #    the old rows — unsound for the delta; drop them.  Every
        #    other plan survives (keyed on the unchanged catalog
        #    version).
        plans_dropped = state.plan_cache.drop_if(
            lambda entry: table in plan_tables(entry.plan)
            and not _dip_free(entry.plan))
        # 4. advance the watermark: every cached result over the table
        #    is now dead (including the ones about to be re-stored
        #    patched under the new version) — stale serving is
        #    impossible from this point on.
        if state.result_cache is not None:
            state.result_cache.advance_table_version(table, new_version)
        # 5. patch what can be proven, count what cannot.
        maintained = 0
        refusals: dict[str, int] = {}
        for key, snapshot, aux_names in entries:
            reason = self._maintain_entry(table, key, snapshot, aux_names,
                                          delta, new_version)
            if reason is None:
                maintained += 1
            else:
                refusals[reason] = refusals.get(reason, 0) + 1
        refused = sum(refusals.values())
        self._record(table, delta.num_rows, maintained, refused, refusals,
                     started)
        return IngestReport(
            table=table, mode=mode, rows_inserted=delta.num_rows,
            rows_updated=0, data_version=new_version,
            entries_seen=len(entries), maintained=maintained,
            refused=refused, refusals=refusals,
            plans_dropped=plans_dropped,
            staleness_seconds=time.perf_counter() - started)

    def _maintain_entry(self, table: str, key: ResultKey, snapshot: Table,
                        aux_names: tuple[str, ...], delta: Table,
                        new_version: int) -> str | None:
        """Patch one cached result from the delta; a reason string on
        refusal, ``None`` on success."""
        state = self._state
        cached_plan = state.plan_cache.peek(
            key.digest, key.parameters, key.catalog_version,
            key.model_name)
        if cached_plan is None:
            # the optimized plan was evicted (or dropped as DIP-tainted
            # in this very mutation); nothing to re-execute the delta
            # through
            return "plan-evicted"
        if key.index_generation != state.index_cache.generation:
            return "index-generation-moved"
        for name, generation in key.arena_generations:
            cache = state.embedding_caches.get(name)
            if cache is None or cache.generation != generation:
                return "arena-generation-moved"
        plan = cached_plan.plan
        try:
            spec = classify_plan(plan, table)
            delta_out = self._execute_over_delta(plan, table, delta)
            patched = apply_delta(spec, snapshot, delta_out)
        except DeltaRefused as refusal:
            return refusal.reason
        new_key = key._replace(table_versions=tuple(
            (name, new_version if name == table else version)
            for name, version in key.table_versions))
        assert state.result_cache is not None
        stored = state.result_cache.put(new_key, patched,
                                        aux_names=aux_names)
        if not stored:
            return "store-rejected"
        reuse = cached_plan.reuse
        if reuse is not None and reuse.eligible \
                and state.reuse_registry is not None:
            from repro.reuse.analysis import describe_plan
            from repro.reuse.registry import ReuseEntry

            state.reuse_registry.register(ReuseEntry(
                key=new_key, spec=reuse, shape=describe_plan(plan),
                rows=patched.num_rows,
                columns=tuple(patched.schema.names)))
        return None

    def _execute_over_delta(self, plan: Any, table: str,
                            delta: Table) -> Table:
        """Run the original optimized plan over only the new rows.

        The plan executes against a private shim catalog holding the
        delta under the table's name, while sharing every model-side
        cache with the engine (arenas intern the delta's strings once,
        the index cache may extend, compiled kernels hit).  Model read
        stripes are held for the duration — the same discipline as a
        real execution, so an arena clear cannot race the gather.
        """
        state = self._state
        shim = Catalog()
        shim.register(table, delta)
        context = ExecutionContext(
            catalog=shim, models=state.models,
            batch_size=state.batch_size, parallelism=state.workers,
            cache_parallelism=state.workers,
            embedding_cache=state.embedding_caches,
            index_cache=state.index_cache,
            kernel_cache=state.kernel_cache,
            metrics_registry=state.metrics_registry)
        with ExitStack() as stack:
            for stripe in state.model_locks.stripes_for(plan_models(plan)):
                stack.enter_context(stripe.read())
            return execute_plan(plan, context)

    # ------------------------------------------------------------------
    # Upsert replace path: targeted invalidation
    # ------------------------------------------------------------------
    def _replace_locked(self, table: str, base: Table, delta: Table,
                        key: str, positions: dict[Any, int],
                        hits: np.ndarray[Any, np.dtype[Any]],
                        started: float) -> IngestReport:
        state = self._state
        updates = int(hits.sum())
        inserts = delta.num_rows - updates
        columns: dict[str, np.ndarray[Any, np.dtype[Any]]] = {
            name: base.column(name).copy() for name in base.schema.names}
        insert_rows: list[int] = []
        for row in range(delta.num_rows):
            if hits[row]:
                target = positions[delta.column(key)[row]]
                for name in base.schema.names:
                    columns[name][target] = delta.column(name)[row]
            else:
                insert_rows.append(row)
        replaced = Table(base.schema, columns)
        if insert_rows:
            tail = delta.take(np.asarray(insert_rows, dtype=np.int64))
            replaced = Table.concat([replaced, tail])
        new_version = state.catalog.replace_rows(table, replaced)
        # in-place updates may retract values already folded into any
        # cached output — no merge can recover that, so: targeted
        # invalidation (this table only), plus the same DIP plan drop.
        plans_dropped = state.plan_cache.drop_if(
            lambda entry: table in plan_tables(entry.plan)
            and not _dip_free(entry.plan))
        entries_seen = 0
        if state.result_cache is not None:
            entries_seen = len(state.result_cache.entries_for_table(table))
            state.result_cache.advance_table_version(table, new_version)
        refusals = {"in-place-update": entries_seen} if entries_seen else {}
        self._record(table, delta.num_rows, 0, entries_seen, refusals,
                     started)
        return IngestReport(
            table=table, mode="upsert", rows_inserted=inserts,
            rows_updated=updates, data_version=new_version,
            entries_seen=entries_seen, maintained=0,
            refused=entries_seen, refusals=refusals,
            plans_dropped=plans_dropped,
            staleness_seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_rows(base: Table, rows: Any) -> Table:
        """Row dicts or a Table -> a delta Table in the base schema."""
        if isinstance(rows, Table):
            if [(f.name, f.dtype) for f in rows.schema.fields] \
                    != [(f.name, f.dtype) for f in base.schema.fields]:
                raise CatalogError(
                    f"delta schema {rows.schema!r} does not match "
                    f"table schema {base.schema!r}")
            return rows
        rows = list(rows)
        for row in rows:
            missing = [name for name in base.schema.names
                       if name not in row]
            if missing:
                raise CatalogError(
                    f"ingest row missing columns {missing}")
        return Table.from_rows(rows, base.schema)

    def _record(self, table: str, rows: int, maintained: int,
                refused: int, refusals: dict[str, int],
                started: float) -> None:
        self._rows_total += rows
        self._maintained_total += maintained
        self._refused_total += refused
        for reason, count in refusals.items():
            self._refusal_reasons[reason] = \
                self._refusal_reasons.get(reason, 0) + count
        self._rows_counter.inc(rows)
        if maintained:
            self._maintained_counter.inc(maintained)
        if refused:
            self._refused_counter.inc(refused)
        gauge = self._staleness_gauges.get(table)
        if gauge is None:
            registry = self._state.metrics_registry
            gauge = registry.gauge(
                "ingest_table_staleness_seconds",
                labels={"table": table},
                help="wall seconds from mutation start until every "
                     "cache over the table was patched or invalidated")
            self._staleness_gauges[table] = gauge
        gauge.set(time.perf_counter() - started)


def _dip_free(plan: Any) -> bool:
    from repro.reuse.analysis import describe_plan

    return describe_plan(plan).dip_free
