"""Append-monotone delta maintenance for cached results.

When rows are appended to a table, a cached result whose plan is
**append-monotone** can be patched from the delta instead of thrown
away: re-running the plan over only the new rows and merging with the
cached snapshot reproduces — bit for bit — what a full re-execution
over the grown table would return.  This module decides *which* plans
qualify and performs the merges; everything it cannot prove is refused
with a reason, and the refusal is the fallback the ingest manager turns
into targeted invalidation (the same prove-or-refuse discipline as
:mod:`repro.reuse`).

Proof obligations (``docs/ingest.md`` carries the full argument):

- **Concat form** — a chain of row-local, order-preserving operators
  (filter, project, semantic filter, fused pipelines without a limit
  stage) over a single scan satisfies
  ``out(old ++ delta) == out(old) ++ out(delta)``: each operator decides
  and computes per row, and batch boundaries never change per-row
  results (cosine scores are one GEMV row each).
- **Limit form** — ``Limit(chain)``: the chain is prefix-stable under
  append, so a cached result that already holds ``n`` rows is the
  final answer, and a shorter one extends from the delta's output.
- **Top-k / order form** — ``[Limit] Sort (chain)``: appended rows can
  only push old rows *down*, so the merged top-k draws from the cached
  top-k plus the delta's own sorted output.  Bit-identical order is the
  subtle part: ``Table.sort_by`` reverses the *whole* order once per
  descending key, which has two observable consequences the merge must
  reproduce exactly.  First, each reversal flips the direction of every
  key after it — key ``i``'s **effective** direction is its declared
  one flipped iff an odd number of the keys *before* it are descending.
  Second, rows fully tied across all keys end up in input order when
  the total number of descending keys is even and in *reversed* input
  order when it is odd.  The merge therefore concatenates
  ``(cached, delta)`` for even parity and ``(delta, cached)`` for odd,
  then applies one **stable** lexicographic sort over the *effective*
  directions with no reversals (descending keys negate their rank
  codes) — reproducing exactly the rebuild's order in both cases.
- **Aggregate form** — ``Aggregate(chain)`` with mergeable functions:
  COUNT and integer SUM add, MIN/MAX combine (``None`` empty-input and
  NaN-propagation semantics preserved).  Group order is rebuilt as the
  hash aggregate would produce it: cached groups in cached order (first
  occurrence over the old rows), then delta-only groups in the delta's
  first-occurrence order.  Float SUM is refused — NumPy's pairwise
  summation is not associative, so a merged sum could differ in the
  last ulp from a rebuild.  AVG and COUNT(DISTINCT) are refused (not
  decomposable from the cached output alone); Sort/Limit *above* an
  aggregate is refused (the pre-sort group order is unrecoverable from
  a sorted snapshot).

Everything else — joins, unions, semantic group-by (clustering is a
global function of the column), semantic semi-filters (data-induced
predicates derived from old contents), fused limits, sort keys
projected away, NaN in a sort key — is refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.relational.expressions import AggFunc, ColumnRef
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SortNode,
)
from repro.relational.pipeline import PipelineNode
from repro.storage.table import Table
from repro.storage.types import DataType


class DeltaRefused(Exception):
    """A plan (or a concrete merge) failed an append-monotonicity proof.

    ``reason`` is a stable slug (``"non-monotone-operator:JoinNode"``,
    ``"float-sum"``, ``"nan-in-sort-key"``, ...) surfaced in ingest
    reports and metrics.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class DeltaSpec:
    """A proven-mergeable plan: which merge applies and its inputs.

    ``kind`` is one of ``"concat"``, ``"limit"``, ``"topk"``,
    ``"aggregate"``.  ``sort_keys`` are in the plan's *output* column
    space (renames above the sort already resolved).
    """

    kind: str
    table: str
    limit: int | None = None
    sort_keys: tuple[tuple[str, bool], ...] = ()
    aggregate: AggregateNode | None = None


#: Chain operators that are row-local and order-preserving under
#: concatenation.  Everything else refuses.
_CHAIN_NODES = (FilterNode, ProjectNode, SemanticFilterNode)


def classify_plan(plan: LogicalPlan, table: str) -> DeltaSpec:
    """Prove ``plan`` append-monotone over ``table`` or refuse.

    Accepted shape (top-down): ``Project* [Limit] Project* [Sort]
    chain`` or a bare ``Aggregate(chain)``, where ``chain`` is built
    from :data:`_CHAIN_NODES` and limit-free fused pipelines over a
    single scan of ``table``.  Raises :class:`DeltaRefused` otherwise.
    """
    node = plan
    limit: int | None = None
    sort: SortNode | None = None
    projects_above_sort: list[ProjectNode] = []
    while True:
        if isinstance(node, ProjectNode):
            if sort is None:
                projects_above_sort.append(node)
            else:
                break           # projects below the sort join the chain
            node = node.child
        elif isinstance(node, LimitNode):
            if limit is not None:
                raise DeltaRefused("multiple-limits")
            if sort is not None:
                # Sort(…Limit(…)) truncates *before* ordering: the kept
                # prefix changes under append, unrecoverable from the
                # cached output.
                raise DeltaRefused("limit-below-sort")
            limit = node.count
            node = node.child
        elif isinstance(node, SortNode):
            if sort is not None:
                raise DeltaRefused("multiple-sorts")
            sort = node
            node = node.child
        else:
            break

    if isinstance(node, AggregateNode):
        if limit is not None or sort is not None or projects_above_sort:
            raise DeltaRefused("order-above-aggregate")
        _check_chain(node.child, table)
        _check_aggregate(node)
        return DeltaSpec(kind="aggregate", table=table, aggregate=node)

    _check_chain(node, table)
    if sort is not None:
        keys = _resolve_sort_keys(sort, projects_above_sort)
        return DeltaSpec(kind="topk", table=table, limit=limit,
                         sort_keys=keys)
    if limit is not None:
        return DeltaSpec(kind="limit", table=table, limit=limit)
    return DeltaSpec(kind="concat", table=table)


def _check_chain(node: LogicalPlan, table: str) -> None:
    """Validate the row-local chain down to a single scan of ``table``."""
    while True:
        if isinstance(node, ScanNode):
            if node.table_name != table:
                raise DeltaRefused(f"scan-of-other-table:{node.table_name}")
            return
        if isinstance(node, _CHAIN_NODES):
            node = node.children[0]
            continue
        if isinstance(node, PipelineNode):
            if node.limit is not None:
                # a fused limit truncates inside the chain; the kept
                # prefix is not recoverable from the cached output
                raise DeltaRefused("limit-fused-into-pipeline")
            scan = node.scan
            if scan is not None:
                if scan.table_name != table:
                    raise DeltaRefused(
                        f"scan-of-other-table:{scan.table_name}")
                return
            source = node.source
            if source is None:
                raise DeltaRefused("pipeline-without-input")
            node = source
            continue
        raise DeltaRefused(f"non-monotone-operator:{type(node).__name__}")


def _check_aggregate(node: AggregateNode) -> None:
    """Refuse aggregate functions that do not merge exactly."""
    fields = node.schema.fields
    offset = len(node.group_keys)
    for index, agg in enumerate(node.aggregates):
        if agg.func in (AggFunc.AVG, AggFunc.COUNT_DISTINCT):
            # not decomposable from the cached output alone (AVG needs
            # the count; DISTINCT needs the value sets)
            raise DeltaRefused(f"non-mergeable-aggregate:{agg.func.value}")
        if agg.func is AggFunc.SUM \
                and fields[offset + index].dtype is not DataType.INT64:
            # float pairwise summation is not associative: a merged sum
            # may differ from a rebuild in the last ulp
            raise DeltaRefused("float-sum")


def _resolve_sort_keys(sort: SortNode,
                       projects_above: list[ProjectNode]
                       ) -> tuple[tuple[str, bool], ...]:
    """Map sort-key names through the projections above the sort.

    ``projects_above`` is top-down (root first); the walk goes
    bottom-up.  A key survives only as a plain pass-through
    ``ColumnRef`` — any computed rename hides the values the merge must
    re-sort by.
    """
    keys: list[tuple[str, bool]] = []
    for name, ascending in sort.keys:
        current = name
        for project in reversed(projects_above):
            alias = next((out for expr, out in project.exprs
                          if isinstance(expr, ColumnRef)
                          and expr.name == current), None)
            if alias is None:
                raise DeltaRefused(f"sort-key-projected-away:{current}")
            current = alias
        keys.append((current, ascending))
    return tuple(keys)


# ----------------------------------------------------------------------
# Merge executors
# ----------------------------------------------------------------------
def apply_delta(spec: DeltaSpec, cached: Table, delta_out: Table) -> Table:
    """Merge a cached snapshot with the delta's plan output.

    ``delta_out`` is the *full original plan* executed over only the
    appended rows.  The result is bit-identical to re-executing over the
    grown table.  May raise :class:`DeltaRefused` for value-level
    hazards the classifier cannot see statically (NaN in a sort key).
    """
    if spec.kind == "concat":
        return _merge_concat(cached, delta_out)
    if spec.kind == "limit":
        assert spec.limit is not None
        return _merge_limit(cached, delta_out, spec.limit)
    if spec.kind == "topk":
        return _merge_topk(cached, delta_out, spec.sort_keys, spec.limit)
    if spec.kind == "aggregate":
        assert spec.aggregate is not None
        return _merge_aggregate(spec.aggregate, cached, delta_out)
    raise DeltaRefused(f"unknown-delta-kind:{spec.kind}")


def _merge_concat(cached: Table, delta_out: Table) -> Table:
    if delta_out.num_rows == 0:
        return cached
    return Table.concat([cached, delta_out])


def _merge_limit(cached: Table, delta_out: Table, limit: int) -> Table:
    if cached.num_rows >= limit:
        # the old output already filled the prefix; appended rows can
        # only land after it
        return cached
    take = min(limit - cached.num_rows, delta_out.num_rows)
    if take == 0:
        return cached
    return Table.concat(
        [cached, delta_out.take(np.arange(take, dtype=np.int64))])


def _merge_topk(cached: Table, delta_out: Table,
                keys: tuple[tuple[str, bool], ...],
                limit: int | None) -> Table:
    # Tie-order parity: Table.sort_by reverses the whole order once per
    # descending key, so fully-tied rows come out in input order (even
    # parity) or reversed input order (odd).  The rebuild's input is
    # old-rows-then-delta; placing the cached block accordingly and
    # using a reversal-free stable sort reproduces its tie order.
    parity = sum(1 for _, ascending in keys if not ascending) % 2
    first, second = (cached, delta_out) if parity == 0 \
        else (delta_out, cached)
    combined = Table.concat([first, second])
    order = _stable_order(combined, _effective_directions(keys))
    merged = combined.take(order)
    if limit is not None and merged.num_rows > limit:
        merged = merged.take(np.arange(limit, dtype=np.int64))
    return merged


def _effective_directions(keys: tuple[tuple[str, bool], ...]
                          ) -> tuple[tuple[str, bool], ...]:
    """Declared sort directions -> the ones ``Table.sort_by`` realizes.

    Each whole-order reversal (one per descending key) flips every key
    sorted *before* that pass — i.e. every key after it in declaration
    order — so key ``i``'s effective direction is its declared one
    flipped iff an odd number of keys ``0..i-1`` are descending.
    """
    effective: list[tuple[str, bool]] = []
    flips = 0
    for name, ascending in keys:
        effective.append((name, ascending if flips % 2 == 0
                          else not ascending))
        if not ascending:
            flips += 1
    return tuple(effective)


def _stable_order(table: Table,
                  keys: tuple[tuple[str, bool], ...],
                  ) -> np.ndarray[Any, np.dtype[Any]]:
    """Stable lexicographic order by ``keys`` with NO reversals.

    Descending keys negate their rank codes, which keeps ties in input
    order — the property the parity argument in :func:`_merge_topk`
    needs.  Object columns compare as strings, matching
    ``Table.sort_by``.
    """
    if table.num_rows == 0:
        return np.empty(0, dtype=np.int64)
    code_arrays: list[np.ndarray[Any, np.dtype[Any]]] = []
    for name, ascending in keys:
        values = table.column(name)
        if values.dtype == object:
            values = values.astype(str)
        elif values.dtype.kind == "f" and np.isnan(values).any():
            # np.unique's NaN grouping differs across NumPy versions;
            # proving tie order here is not worth the risk
            raise DeltaRefused("nan-in-sort-key")
        _, codes = np.unique(values, return_inverse=True)
        codes = codes.astype(np.int64)
        code_arrays.append(codes if ascending else -codes)
    # np.lexsort treats its LAST key as primary; keys[0] is our primary
    return np.lexsort(tuple(reversed(code_arrays))).astype(np.int64)


def _merge_aggregate(node: AggregateNode, cached: Table,
                     delta_out: Table) -> Table:
    group_names = list(node.group_keys)
    agg_names = [agg.alias for agg in node.aggregates]
    funcs = {agg.alias: agg.func for agg in node.aggregates}

    def rows_of(table: Table) -> list[dict[str, object]]:
        columns = {name: table.column(name) for name in table.schema.names}
        return [{name: columns[name][i] for name in table.schema.names}
                for i in range(table.num_rows)]

    def key_of(row: dict[str, object]) -> tuple[object, ...]:
        return tuple(row[name] for name in group_names)

    delta_rows = rows_of(delta_out)
    delta_map = {key_of(row): row for row in delta_rows}
    merged: list[dict[str, object]] = []
    for row in rows_of(cached):
        fresh = delta_map.pop(key_of(row), None)
        if fresh is not None:
            row = dict(row)
            for name in agg_names:
                row[name] = _merge_value(funcs[name], row[name],
                                         fresh[name])
        merged.append(row)
    # delta-only groups keep the delta's first-occurrence order, which
    # is exactly where the rebuild's hash aggregate would place them
    merged.extend(row for row in delta_rows
                  if key_of(row) in delta_map)

    arrays: dict[str, np.ndarray[Any, np.dtype[Any]]] = {}
    for name in cached.schema.names:
        dtype = cached.column(name).dtype
        values = [row[name] for row in merged]
        if dtype == object:
            column = np.empty(len(values), dtype=object)
            column[:] = values
        else:
            column = np.asarray(values, dtype=dtype)
        arrays[name] = column
    return Table(cached.schema, arrays)


def _merge_value(func: AggFunc, old: object, new: object) -> object:
    """Combine one aggregate cell, preserving exact rebuild semantics.

    ``None`` is the hash aggregate's empty-input MIN/MAX; NaN
    propagates the way ``np.min``/``np.max`` would over the
    concatenated rows.
    """
    if func in (AggFunc.COUNT, AggFunc.SUM):
        return old + new  # type: ignore[operator]
    if old is None:
        return new
    if new is None:
        return old
    if old != old:          # NaN: np.min/np.max propagate it
        return old
    if new != new:
        return new
    if func is AggFunc.MIN:
        return min(old, new)  # type: ignore[type-var]
    if func is AggFunc.MAX:
        return max(old, new)  # type: ignore[type-var]
    raise DeltaRefused(f"non-mergeable-aggregate:{func.value}")
