"""Dispatch-exhaustiveness verifier (rules DX001–DX003).

Enumerates each node family by walking the base class's subclass tree
(:meth:`Package.subclasses`), then checks every dispatcher registered
in :mod:`repro.analysis.dispatch_registry`:

- **DX001** — a member the dispatcher must handle has no arm: no
  ``isinstance`` test mentions it (directly, in a tuple, or through a
  module-level tuple constant like ``jit._SUPPORTED_NODES``), and for
  ``kind="method"`` specs the class neither defines nor inherits a
  real implementation of the dispatch method.
- **DX002** — the dispatcher's declared default does not hold: a
  ``reject`` dispatcher whose tail does not end in ``raise``, a
  ``refuse`` dispatcher whose final else-branch never calls the
  refusal hook, or a ``declared`` default with no justification.
- **DX003** — registry drift: the spec names a function, family base,
  or member that does not exist in the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.core import (
    ANALYZERS, AnalysisConfig, Finding, Package, SourceModule)


@dataclass(frozen=True)
class Family:
    name: str
    base: str  # fully qualified base-class name


@dataclass(frozen=True)
class DispatcherSpec:
    function: str            # fq path, dots through classes and nesting
    family: str
    kind: str = "isinstance"  # "isinstance" | "method"
    method: str = ""          # dispatch method for kind="method"
    #: members that need an arm; None = every family member
    must_handle: tuple[str, ...] | None = None
    #: members excused from must_handle (used with must_handle=None)
    exclude: tuple[str, ...] = ()
    default: str = "reject"   # "reject" | "refuse" | "declared"
    refuse_attr: str = "refuse"
    justification: str = ""


@dataclass(frozen=True)
class DispatchModel:
    families: tuple[Family, ...]
    specs: tuple[DispatcherSpec, ...]


def family_members(package: Package,
                   model: DispatchModel) -> dict[str, dict[str, str]]:
    """Family name -> {simple class name: fq class name}."""
    return {family.name: package.subclasses(family.base)
            for family in model.families}


def check_dispatch(config: AnalysisConfig) -> list[Finding]:
    model = config.dispatch
    if model is None:
        return []
    package = config.package
    findings: list[Finding] = []
    members_by_family = family_members(package, model)
    bases = {family.name: family.base for family in model.families}

    for family in model.families:
        if family.base not in package.classes:
            findings.append(Finding(
                "DX003", family.base, 1,
                f"family {family.name!r}: base class {family.base} not "
                f"found in the analyzed tree"))

    for spec in model.specs:
        members = members_by_family.get(spec.family)
        if members is None:
            findings.append(Finding(
                "DX003", spec.function, 1,
                f"spec references unknown family {spec.family!r}"))
            continue
        if spec.kind == "method":
            findings.extend(_check_method_spec(
                package, spec, members, bases[spec.family]))
        else:
            findings.extend(_check_isinstance_spec(package, spec, members))
    return findings


def _spec_targets(spec: DispatcherSpec,
                  members: Mapping[str, str]) -> tuple[list[str], list[str]]:
    """(member names that need arms, unknown names in the spec)."""
    unknown = [name for name in (*(spec.must_handle or ()), *spec.exclude)
               if name not in members]
    if spec.must_handle is not None:
        needed = [n for n in spec.must_handle if n in members]
    else:
        needed = [n for n in members if n not in spec.exclude]
    return sorted(needed), unknown


def _check_method_spec(package: Package, spec: DispatcherSpec,
                       members: Mapping[str, str],
                       base: str) -> list[Finding]:
    findings = []
    needed, unknown = _spec_targets(spec, members)
    location = _spec_location(package, spec)
    if spec.function not in package.functions:
        findings.append(Finding(
            "DX003", *location,
            f"dispatcher {spec.function} not found in the analyzed "
            f"tree"))
    for name in unknown:
        findings.append(Finding(
            "DX003", *location,
            f"{spec.function}: spec names unknown member {name!r}"))
    for name in needed:
        fq = members[name]
        if _resolves_method(package, fq, spec.method, base):
            continue
        module = package.class_module[fq]
        findings.append(Finding(
            "DX001", package.rel_path(module),
            package.classes[fq].lineno,
            f"{name} has no usable {spec.method}() for dispatcher "
            f"{spec.function} — define it or inherit a real one"))
    return findings


def _resolves_method(package: Package, fq: str, method: str,
                     base: str) -> bool:
    for ancestor in package.ancestry(fq):
        node = package.classes.get(ancestor)
        if node is None:
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == method:
                return not _only_raises_not_implemented(item)
    return False


def _only_raises_not_implemented(fn: ast.FunctionDef) -> bool:
    body = [stmt for stmt in fn.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    name = exc.func if isinstance(exc, ast.Call) else exc
    return isinstance(name, ast.Name) and name.id == "NotImplementedError"


def _check_isinstance_spec(package: Package, spec: DispatcherSpec,
                           members: Mapping[str, str]) -> list[Finding]:
    findings = []
    fn = package.functions.get(spec.function)
    if fn is None:
        return [Finding(
            "DX003", spec.function, 1,
            f"dispatcher {spec.function} not found in the analyzed tree")]
    module = package.function_module[spec.function]
    rel = package.rel_path(module)
    needed, unknown = _spec_targets(spec, members)
    for name in unknown:
        findings.append(Finding(
            "DX003", rel, fn.lineno,
            f"{spec.function}: spec names unknown member {name!r}"))

    handled = _handled_classes(package, module, fn)
    member_fqs = {fq: name for name, fq in members.items()}
    covered = {member_fqs[fq] for fq in handled if fq in member_fqs}
    missing = [name for name in needed if name not in covered]
    if missing:
        findings.append(Finding(
            "DX001", rel, fn.lineno,
            f"{spec.function} has no arm for: {', '.join(missing)} "
            f"(family {spec.family!r})"))

    if spec.default == "reject" and not _tail_raises(fn):
        findings.append(Finding(
            "DX002", rel, fn.body[-1].lineno,
            f"{spec.function} declares a rejecting default but its tail "
            f"does not raise — unhandled nodes fall through silently"))
    elif spec.default == "refuse" \
            and not _tail_refuses(fn, spec.refuse_attr):
        findings.append(Finding(
            "DX002", rel, fn.body[-1].lineno,
            f"{spec.function} declares a refusing default but no final "
            f"else-branch calls .{spec.refuse_attr}()"))
    elif spec.default == "declared" and not spec.justification:
        findings.append(Finding(
            "DX002", rel, fn.lineno,
            f"{spec.function} declares a fall-through default without a "
            f"justification in the registry"))
    return findings


def _handled_classes(package: Package, module: SourceModule,
                     fn: ast.FunctionDef) -> set[str]:
    """Fully qualified classes mentioned in the function's isinstance
    tests, expanding tuples and module-level tuple constants."""
    handled: set[str] = set()

    def add_target(expr: ast.expr) -> None:
        if isinstance(expr, ast.Tuple):
            for elt in expr.elts:
                add_target(elt)
            return
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return
        resolved = package.resolve(module, expr)
        if resolved is None:
            return
        if resolved in package.classes:
            handled.add(resolved)
            return
        constant = _module_tuple_constant(module, expr)
        if constant is not None:
            add_target(constant)

    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            add_target(node.args[1])
    return handled


def _module_tuple_constant(module: SourceModule,
                           expr: ast.expr) -> ast.Tuple | None:
    if not isinstance(expr, ast.Name):
        return None
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == expr.id \
                and isinstance(stmt.value, ast.Tuple):
            return stmt.value
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == expr.id \
                and isinstance(stmt.value, ast.Tuple):
            return stmt.value
    return None


def _tail_raises(fn: ast.FunctionDef) -> bool:
    tail = fn.body[-1]
    if isinstance(tail, ast.Raise):
        return True
    # if/elif chain whose final else raises
    while isinstance(tail, ast.If):
        if not tail.orelse:
            return False
        last = tail.orelse[-1]
        if isinstance(last, ast.Raise):
            return True
        tail = last
    return False


def _tail_refuses(fn: ast.FunctionDef, refuse_attr: str) -> bool:
    tail = fn.body[-1]
    while isinstance(tail, ast.If):
        if not tail.orelse:
            return False
        branch = tail.orelse
        if len(branch) == 1 and isinstance(branch[0], ast.If):
            tail = branch[0]
            continue
        for stmt in branch:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == refuse_attr:
                    return True
        return False
    return False


def _spec_location(package: Package,
                   spec: DispatcherSpec) -> tuple[str, int]:
    fn = package.functions.get(spec.function)
    if fn is not None:
        module = package.function_module[spec.function]
        return package.rel_path(module), fn.lineno
    return spec.function, 1


ANALYZERS["dispatch"] = check_dispatch
