"""Declared cache-key dimensions and invalidation protocol.

The engine's caches key on (canonical digest, literals, catalog
version, model, arena generations, index generation).  Correctness
rests on two disciplines the cache-key lint
(:mod:`repro.analysis.cachekeys`) enforces:

1. every mutation the docs say must bump a version dimension actually
   bumps it (``VERSION_PROTOCOLS``), and nothing outside the owning
   class writes the versioned state (``PROTECTED_STATE``);
2. result-cache keys are captured *once, before probing* and the same
   key object flows to the eventual ``store`` — never re-derived after
   execution, when a concurrent mutation could have changed a
   dimension (``KEY_DISCIPLINES``; the pre-captured-key rule from the
   result-cache PR).

The kernel cache is deliberately absent: its keys are pure pipeline
structure (fingerprint, model, backend) with no version dimension —
see ``engine/kernel_cache.py`` for why recompilation is idempotent.
"""

from __future__ import annotations

from repro.analysis.cachekeys import (
    CacheModel, KeyDiscipline, ProtectedState, VersionBump)

PKG = "repro"

VERSION_PROTOCOLS: tuple[VersionBump, ...] = (
    # Catalog.version invalidates plan/result/reuse entries; every
    # mutator must bump it (stats lazily computes once, then bumps).
    VersionBump(owner=f"{PKG}.storage.catalog.Catalog", attr="_version",
                mutators=("register", "drop", "stats"),
                delegates={"refresh_stats": "stats"}),
    # Row mutations bump the per-table data_version instead of the
    # catalog version — the ingest subsystem's precise invalidation
    # dimension (result keys carry (table, data_version) pairs; plans
    # key on schema identity and survive).
    VersionBump(owner=f"{PKG}.storage.catalog.Catalog",
                attr="_data_versions",
                mutators=("append_rows", "replace_rows")),
    # Index entries retire by generation; clear() must advance it.
    VersionBump(owner=f"{PKG}.semantic.index_cache.IndexCache",
                attr="generation", mutators=("clear",)),
    # An arena clear draws a fresh generation AND retires the old one
    # so index entries over the dead arena can never be row-matched.
    VersionBump(owner=f"{PKG}.semantic.cache.EmbeddingCache",
                attr="generation", mutators=("clear",),
                required_calls={
                    "clear": (("RETIRED_GENERATIONS", "add"),)}),
)

PROTECTED_STATE: tuple[ProtectedState, ...] = (
    ProtectedState(owner=f"{PKG}.storage.catalog.Catalog",
                   attrs=("_tables", "_stats", "_version",
                          "_data_versions")),
    ProtectedState(owner=f"{PKG}.semantic.index_cache.IndexCache",
                   attrs=("_store", "generation")),
    ProtectedState(owner=f"{PKG}.semantic.cache.EmbeddingCache",
                   attrs=("generation",)),
)

KEY_DISCIPLINES: tuple[KeyDiscipline, ...] = (
    KeyDiscipline(function=f"{PKG}.engine.session.Session.sql",
                  capture="result_key",
                  probes=("fetch_result", "fetch_reuse"),
                  stores=("store_result",)),
    KeyDiscipline(function=f"{PKG}.server.server.EngineServer.submit",
                  capture="result_key",
                  probes=("fetch_result", "fetch_reuse"),
                  # the store happens in _execute, which receives the
                  # pre-captured key through the run closure
                  stores=("_execute",)),
)


def engine_cache_model() -> CacheModel:
    # receiver typing reuses the lock checker's attribute->class table
    from repro.analysis.lock_levels import ATTR_TYPES

    return CacheModel(version_protocols=VERSION_PROTOCOLS,
                      protected_state=PROTECTED_STATE,
                      key_disciplines=KEY_DISCIPLINES,
                      attr_types=ATTR_TYPES)
