"""Metric-name drift lint (rules MN001–MN003).

Checks the declared metric vocabulary in
:mod:`repro.analysis.metric_names` against every registration call in
the source:

- **MN001** — a registration (``<registry>.counter/gauge/histogram``)
  uses a name not declared in the vocabulary, or declares it under a
  different kind.
- **MN002** — a declared name is never registered anywhere in the
  tree (dead catalog entry; the docs would list a metric that does not
  exist).
- **MN003** — a registration's name is not a string literal, so the
  vocabulary cannot be checked statically.

A call counts as a registration when its receiver *name* matches
``registr|metrics`` (``registry``, ``metrics_registry``, a local
``metrics = ...``) — by convention every ``MetricsRegistry`` binding in
the engine carries such a name, and nothing else does.  The filter is
what keeps ``np.histogram(values, bins=...)`` and other same-named
calls out of scope.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.core import (
    ANALYZERS, AnalysisConfig, Finding, Package, SourceModule)

#: The three registration entry points on MetricsRegistry.
_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}

#: Receiver names that identify a MetricsRegistry binding.
_RECEIVER_RE = re.compile(r"registr|metrics")


@dataclass(frozen=True)
class MetricDecl:
    """One declared metric: name, instrument kind, one-line help."""

    name: str
    kind: str
    help: str = ""


@dataclass(frozen=True)
class MetricNamesModel:
    declarations: tuple[MetricDecl, ...]
    #: Module (within the analyzed package) holding the declarations —
    #: where MN002 findings are reported.
    declaration_module: str = ""


def _receiver_name(node: ast.expr) -> str | None:
    """The terminal name of a call receiver: ``registry`` in
    ``registry.counter(...)``, ``metrics_registry`` in
    ``self.state.metrics_registry.gauge(...)``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _name_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def check_metric_names(config: AnalysisConfig) -> list[Finding]:
    model: MetricNamesModel | None = config.metrics
    if model is None:
        return []
    package: Package = config.package
    declared = {decl.name: decl for decl in model.declarations}
    registered: set[str] = set()
    findings: list[Finding] = []
    for module in package.modules.values():
        if module.name == model.declaration_module:
            continue
        findings.extend(
            _check_module(module, package, declared, registered))
    for decl in sorted(set(declared) - registered):
        findings.append(Finding(
            "MN002", _declaration_path(package, model), 1,
            f"metric {decl!r} is declared but never registered — "
            f"remove the declaration or register the instrument"))
    return findings


def _check_module(module: SourceModule, package: Package,
                  declared: dict[str, MetricDecl],
                  registered: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _KINDS:
            continue
        receiver = _receiver_name(func.value)
        if receiver is None or not _RECEIVER_RE.search(receiver):
            continue
        kind = _KINDS[func.attr]
        name_node = _name_argument(node)
        if not isinstance(name_node, ast.Constant) \
                or not isinstance(name_node.value, str):
            findings.append(Finding(
                "MN003", package.rel_path(module), node.lineno,
                f"metric name passed to .{func.attr}() is not a string "
                f"literal — the vocabulary cannot be checked statically"))
            continue
        name = name_node.value
        registered.add(name)
        decl = declared.get(name)
        if decl is None:
            findings.append(Finding(
                "MN001", package.rel_path(module), node.lineno,
                f"metric {name!r} is not declared in the metric-name "
                f"vocabulary (analysis/metric_names.py)"))
        elif decl.kind != kind:
            findings.append(Finding(
                "MN001", package.rel_path(module), node.lineno,
                f"metric {name!r} registered as {kind} but declared "
                f"as {decl.kind}"))
    return findings


def _declaration_path(package: Package, model: MetricNamesModel) -> str:
    module = package.modules.get(model.declaration_module)
    if module is not None:
        return package.rel_path(module)
    return model.declaration_module or "<metric declarations>"


ANALYZERS["metrics"] = check_metric_names
