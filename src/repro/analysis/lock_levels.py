"""Canonical lock-hierarchy declarations for the engine.

This file is the single source of truth for the lock hierarchy that
``docs/serving.md`` § "Lock hierarchy" describes in prose; the
lock-hierarchy checker (:mod:`repro.analysis.locks`) enforces it
against the source on every run of ``python -m repro.analysis`` and in
tier-1 via ``tests/test_static_analysis.py``.  To add a lock: declare
it here with its level, construct it in the owner named here, and the
checker verifies every acquired-while-held edge stays strictly
downward (level numbers strictly increase from holder to acquiree).

Levels (acquire downward only):

0. **Ingest mutex** (``IngestManager._lock``) — the outermost lock:
   one append/upsert at a time per engine state.  Cache maintenance
   holds it across the whole mutation pipeline (catalog bump, plan
   drop, delta re-execution under model read stripes, result
   re-store), so it legitimately acquires every level below.
1. **Scheduler and plan-cache mutexes** — short critical sections
   around queue state and the canonical-plan map.  Never held across a
   call into any other locked component.
2. **Per-model striped RW locks** (``EngineState.model_locks``) —
   queries hold *read* stripes for every model their plan embeds with
   for the whole build+execute span; ``invalidate_model`` takes the
   write stripe.  Everything a query touches while executing sits
   below this level.
3. **Catalog mutex** — registration, lookup, version, statistics.
   Sits *below* the stripes because physical lowering resolves tables
   (``context.catalog.get``) while the query's read stripes are held;
   the catalog acquires nothing upward while locked (``stats`` only
   recurses into its own reentrant lock).
4. **Leaf locks** — embedding-cache internals, index cache, result
   cache, kernel cache, reuse registry, worker budget, counters, the
   semantic cache-creation latch, and the observability instruments
   (``obs.metrics`` counters/histograms, the metrics registry, the
   tracer ring).  A leaf lock is never held across a call into the
   catalog, plan cache, or scheduler (rule LH003).

Historical note: before the static-analysis suite landed, the docs
placed the catalog at level 2 and the stripes at level 3 — the checker
found that ``Session.execute``/``EngineServer._execute`` hold read
stripes across ``build_physical``'s catalog lookups, an up-hierarchy
edge under the documented order.  The *code* order (stripes, then
catalog) is deadlock-free and is what this file now declares.
"""

from __future__ import annotations

from repro.analysis.locks import LockDecl, LockModel

PKG = "repro"

DECLARATIONS: tuple[LockDecl, ...] = (
    # -- level 0: ingest (outermost) -----------------------------------
    LockDecl(name="IngestManager._lock",
             owner=f"{PKG}.ingest.manager.IngestManager", attr="_lock",
             level=0),
    # -- level 1: scheduler / plan-cache mutexes -----------------------
    LockDecl(name="Scheduler._mutex",
             owner=f"{PKG}.server.scheduler.Scheduler", attr="_mutex",
             level=1,
             # Conditions constructed over the same mutex: acquiring
             # them IS acquiring _mutex.
             aliases=("_work_ready", "_idle")),
    LockDecl(name="PlanCache._lock",
             owner=f"{PKG}.engine.plan_cache.PlanCache", attr="_lock",
             level=1),
    # -- level 2: per-model striped RW locks ---------------------------
    LockDecl(name="EngineState.model_locks",
             owner=f"{PKG}.engine.state.EngineState", attr="model_locks",
             level=2, kind="striped"),
    # -- level 3: catalog ----------------------------------------------
    LockDecl(name="Catalog._lock",
             owner=f"{PKG}.storage.catalog.Catalog", attr="_lock",
             level=3, reentrant=True),
    # -- level 4: leaves -----------------------------------------------
    LockDecl(name="EmbeddingCache._lock",
             owner=f"{PKG}.semantic.cache.EmbeddingCache", attr="_lock",
             level=4, kind="rwlock"),
    LockDecl(name="EmbeddingCache._stats_lock",
             owner=f"{PKG}.semantic.cache.EmbeddingCache",
             attr="_stats_lock", level=4),
    LockDecl(name="IndexCache._lock",
             owner=f"{PKG}.semantic.index_cache.IndexCache", attr="_lock",
             level=4),
    LockDecl(name="ResultCache._lock",
             owner=f"{PKG}.engine.result_cache.ResultCache", attr="_lock",
             level=4),
    LockDecl(name="KernelCache._lock",
             owner=f"{PKG}.engine.kernel_cache.KernelCache", attr="_lock",
             level=4),
    LockDecl(name="ReuseRegistry._lock",
             owner=f"{PKG}.reuse.registry.ReuseRegistry", attr="_lock",
             level=4),
    LockDecl(name="WorkerBudget._lock",
             owner=f"{PKG}.utils.parallel.WorkerBudget", attr="_lock",
             level=4),
    LockDecl(name="lowering._CACHE_CREATE_LOCK",
             owner=f"{PKG}.semantic.lowering", attr="_CACHE_CREATE_LOCK",
             level=4),
    # -- level 4: observability instruments ----------------------------
    # Instruments never call out while locked, so they are safe leaves;
    # subsystems above level 4 may update them inside their own
    # critical sections, level-4 caches declare the same-level edge in
    # ALLOWED_SAME_LEVEL below.
    LockDecl(name="Counter._lock",
             owner=f"{PKG}.obs.metrics.Counter", attr="_lock", level=4),
    LockDecl(name="Histogram._lock",
             owner=f"{PKG}.obs.metrics.Histogram", attr="_lock", level=4),
    LockDecl(name="MetricsRegistry._lock",
             owner=f"{PKG}.obs.metrics.MetricsRegistry", attr="_lock",
             level=4),
    LockDecl(name="Tracer._lock",
             owner=f"{PKG}.obs.trace.Tracer", attr="_lock", level=4),
)

#: Same-level edges that are deliberate and deadlock-free: the
#: embedding cache bumps its hit/miss counters while holding its main
#: RW lock; the counter lock is always innermost and never held across
#: anything, so the pair cannot invert.
ALLOWED_SAME_LEVEL: frozenset[tuple[str, str]] = frozenset({
    ("EmbeddingCache._lock", "EmbeddingCache._stats_lock"),
    # Level-4 caches bump their metric instruments inside their own
    # critical sections; an instrument lock is always innermost and
    # acquires nothing, so these edges cannot invert.
    ("ResultCache._lock", "Counter._lock"),
    ("ReuseRegistry._lock", "Counter._lock"),
    ("KernelCache._lock", "Counter._lock"),
    ("KernelCache._lock", "Histogram._lock"),
})

#: Attribute name -> class it holds, engine-wide.  This is how the
#: checker types receivers across call chains (``self.state.catalog``
#: types as Catalog because the final attribute is ``catalog``).  Keep
#: attribute names unique per type; the checker trusts this table.
ATTR_TYPES: dict[str, str] = {
    "state": f"{PKG}.engine.state.EngineState",
    "ingest": f"{PKG}.ingest.manager.IngestManager",
    "catalog": f"{PKG}.storage.catalog.Catalog",
    "plan_cache": f"{PKG}.engine.plan_cache.PlanCache",
    "result_cache": f"{PKG}.engine.result_cache.ResultCache",
    "kernel_cache": f"{PKG}.engine.kernel_cache.KernelCache",
    "reuse_registry": f"{PKG}.reuse.registry.ReuseRegistry",
    "index_cache": f"{PKG}.semantic.index_cache.IndexCache",
    "scheduler": f"{PKG}.server.scheduler.Scheduler",
    "model_locks": f"{PKG}.utils.locks.StripedRWLock",
    "budget": f"{PKG}.utils.parallel.WorkerBudget",
    "worker_budget": f"{PKG}.utils.parallel.WorkerBudget",
    "metrics_registry": f"{PKG}.obs.metrics.MetricsRegistry",
    "tracer": f"{PKG}.obs.trace.Tracer",
    # Migrated stat counters: every private ``_<counter>`` attribute
    # below is an obs Counter engine-wide, so the checker sees (and
    # gates) instrument updates made while subsystem locks are held.
    **{attr: f"{PKG}.obs.metrics.Counter" for attr in (
        "_hits", "_misses", "_puts", "_evictions", "_stale_evictions",
        "_invalidations", "_oversize_skips", "_reuse_fetches",
        "_text_memo_hits", "_registrations", "_probes", "_fallbacks",
        "_stale_drops", "_admitted", "_rejected", "_result_cache_noops",
        "_reuse_noops", "_dispatches", "_compiles",
        "_single_flight_waits", "statements_total")},
    **{attr: f"{PKG}.obs.metrics.Histogram" for attr in (
        "_queue_wait_hist", "_compile_hist", "statement_seconds",
        "operator_seconds")},
}

#: Dict-valued attribute name -> element class, for ``d.get(k)`` /
#: ``d[k]`` / iteration over ``.values()``.
VALUE_TYPES: dict[str, str] = {
    "embedding_caches": f"{PKG}.semantic.cache.EmbeddingCache",
    "embedding_cache": f"{PKG}.semantic.cache.EmbeddingCache",
}

#: Modules whose lock internals are the primitives themselves — the
#: RWLock implementation necessarily manipulates its own mutex.
EXEMPT_MODULES: frozenset[str] = frozenset({f"{PKG}.utils.locks"})

#: Modules a *leaf* (level 4) lock must never be held across a call
#: into (rule LH003): these own upper-level locks and queue state.
BOUNDARY_MODULES: frozenset[str] = frozenset({
    f"{PKG}.storage.catalog",
    f"{PKG}.engine.plan_cache",
    f"{PKG}.server.scheduler",
})

#: Receiver attribute names treated as boundary components even when
#: the exact callee cannot be resolved.
BOUNDARY_ATTRS: frozenset[str] = frozenset({
    "catalog", "plan_cache", "scheduler",
})


def engine_lock_model() -> LockModel:
    return LockModel(
        declarations=DECLARATIONS,
        allowed_same_level=ALLOWED_SAME_LEVEL,
        attr_types=ATTR_TYPES,
        value_types=VALUE_TYPES,
        exempt_modules=EXEMPT_MODULES,
        boundary_modules=BOUNDARY_MODULES,
        boundary_attrs=BOUNDARY_ATTRS,
    )
