"""CLI for the static-analysis suite.

``python -m repro.analysis`` checks the real engine tree and exits 0
when clean, 1 with one ``RULE  path:line  message`` per finding.
``--rules locks,dispatch`` restricts the analyzers;
``--fixture lock DIR`` runs a seeded self-test fixture instead (and is
expected to exit nonzero — that is the fixture's point).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import engine_config, run_analysis
from repro.analysis.core import ALL_RULES
from repro.analysis.fixtures import FIXTURE_KINDS, fixture_config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="engine-aware static analysis: lock hierarchy, "
                    "dispatch exhaustiveness, cache-key discipline")
    parser.add_argument(
        "--rules", default=",".join(ALL_RULES),
        help="comma-separated analyzers to run (default: all of "
             f"{', '.join(ALL_RULES)})")
    parser.add_argument(
        "--fixture", nargs=2, metavar=("KIND", "DIR"), default=None,
        help="run a seeded self-test fixture (KIND one of "
             f"{', '.join(FIXTURE_KINDS)}; DIR is the fixture tree)")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    if args.fixture is not None:
        kind, root = args.fixture
        config = fixture_config(kind, Path(root))
        rules = (kind,) if args.rules == ",".join(ALL_RULES) else rules
        rules = tuple({"lock": "locks", "metric": "metrics"}.get(r, r)
                      for r in rules)
    else:
        config = engine_config()

    findings = run_analysis(config, rules)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    checked = ", ".join(rules)
    print(f"static analysis clean ({checked}; "
          f"{len(config.package.modules)} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
