"""Analysis configurations for the seeded self-test fixtures.

The fixture sources live under ``tests/analysis_fixtures/`` and each
contains exactly one deliberate violation; the configurations here
declare the (tiny) lock/dispatch/cache models those fixtures are
checked against.  They are part of the analysis package — not the
tests — so the CLI can run them too::

    python -m repro.analysis --fixture lock tests/analysis_fixtures

exits nonzero with the seeded LH001 finding, proving the checker
catches what it claims to catch.  ``tests/test_static_analysis.py``
asserts the exact rule ids and locations.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cachekeys import CacheModel, VersionBump
from repro.analysis.core import AnalysisConfig, Package
from repro.analysis.dispatch import DispatchModel, DispatcherSpec, Family
from repro.analysis.locks import LockDecl, LockModel
from repro.analysis.metricnames import MetricDecl, MetricNamesModel

FIXTURE_PACKAGE = "analysis_fixtures"

FIXTURE_KINDS = ("lock", "dispatch", "cache", "metric")


def fixture_config(kind: str, root: Path) -> AnalysisConfig:
    """Build the analysis config for one seeded fixture family."""
    package = Package(Path(root), FIXTURE_PACKAGE,
                      report_base=Path(root).parent)
    if kind == "lock":
        return AnalysisConfig(package=package, locks=_lock_model())
    if kind == "dispatch":
        return AnalysisConfig(package=package, dispatch=_dispatch_model())
    if kind == "cache":
        return AnalysisConfig(package=package, cache=_cache_model())
    if kind == "metric":
        return AnalysisConfig(package=package, metrics=_metric_model())
    raise ValueError(f"unknown fixture kind {kind!r}; "
                     f"choose from {FIXTURE_KINDS}")


def _lock_model() -> LockModel:
    prefix = f"{FIXTURE_PACKAGE}.lock_inversion"
    return LockModel(
        declarations=(
            LockDecl(name="Registry._lock",
                     owner=f"{prefix}.Registry", attr="_lock", level=1),
            LockDecl(name="Store._lock",
                     owner=f"{prefix}.Store", attr="_lock", level=2),
            LockDecl(name="Counter._lock",
                     owner=f"{prefix}.Counter", attr="_lock", level=3),
        ),
        attr_types={
            "registry": f"{prefix}.Registry",
            "store": f"{prefix}.Store",
            "counter": f"{prefix}.Counter",
        },
        boundary_modules=frozenset({f"{FIXTURE_PACKAGE}.lock_inversion"}),
    )


def _dispatch_model() -> DispatchModel:
    prefix = f"{FIXTURE_PACKAGE}.missing_arm"
    return DispatchModel(
        families=(Family(name="node", base=f"{prefix}.Node"),),
        specs=(DispatcherSpec(function=f"{prefix}.render",
                              family="node", default="reject"),),
    )


def _metric_model() -> MetricNamesModel:
    return MetricNamesModel(
        declarations=(
            MetricDecl("fixture_requests_total", "counter",
                       "requests served"),
        ),
    )


def _cache_model() -> CacheModel:
    prefix = f"{FIXTURE_PACKAGE}.version_skip"
    ingest_prefix = f"{FIXTURE_PACKAGE}.data_version_skip"
    return CacheModel(
        version_protocols=(
            VersionBump(owner=f"{prefix}.MiniCatalog", attr="_version",
                        mutators=("register", "drop")),
            VersionBump(owner=f"{ingest_prefix}.MiniIngestCatalog",
                        attr="_data_versions",
                        mutators=("append_rows", "replace_rows")),
        ),
        protected_state=(),
        key_disciplines=(),
    )
