"""Dispatcher registry: every place the engine branches on node type.

The dispatch-exhaustiveness verifier (:mod:`repro.analysis.dispatch`)
enumerates the node families by walking base-class subtrees and checks
each dispatcher declared here handles every member or rejects it
explicitly.  To add a plan/expression node type: subclass the family
base, run ``python -m repro.analysis`` and add an arm (or an explicit
rejection) to every dispatcher it reports — the verifier finds them
all, so nothing silently falls through to a default.

Default kinds:

- ``reject`` — the dispatcher's tail raises for anything unhandled;
  the verifier checks the tail actually raises (DX002 otherwise).
- ``refuse`` — the tail's else-branch calls an explicit refusal hook
  (``walk.refuse`` in the reuse analyzer) instead of raising.
- ``declared`` — a fall-through default exists *on purpose*; the
  registry entry must say why (the justification is rendered in
  ``docs/static-analysis.md``-style audits), and ``must_handle`` pins
  the members that may never take that default.
"""

from __future__ import annotations

from repro.analysis.dispatch import DispatchModel, DispatcherSpec, Family

PKG = "repro"

FAMILIES: tuple[Family, ...] = (
    Family(name="plan", base=f"{PKG}.relational.logical.LogicalPlan"),
    Family(name="expr", base=f"{PKG}.relational.expressions.Expr"),
    Family(name="sql", base=f"{PKG}.engine.sql.ast.SqlExpr"),
)

SPECS: tuple[DispatcherSpec, ...] = (
    # -- logical plan dispatchers --------------------------------------
    DispatcherSpec(
        function=f"{PKG}.relational.physical.build_physical",
        family="plan", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.semantic.lowering.build_semantic_physical",
        family="plan", default="reject",
        must_handle=("SemanticFilterNode", "SemanticSemiFilterNode",
                     "SemanticJoinNode", "SemanticGroupByNode")),
    DispatcherSpec(
        function=f"{PKG}.optimizer.cost.CostModel.node_cost",
        family="plan", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.cardinality.CardinalityEstimator"
                 ".estimate",
        family="plan", default="declared",
        justification="an unknown node estimates as its first child's "
                      "rows (conservative passthrough); every concrete "
                      "node still needs an explicit arm"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.rules.PruneColumns._rewrite",
        family="plan", default="declared",
        exclude=("PipelineNode",),
        justification="pruning runs before fusion, so PipelineNode "
                      "cannot occur; the verbatim-return default is the "
                      "explicit no-prune choice"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.fusion._stage_supported",
        family="plan", default="declared",
        must_handle=("FilterNode", "ProjectNode", "LimitNode"),
        justification="barrier classification is closed-world: anything "
                      "that is not a fusable Filter/Project/Limit stage "
                      "returns False and becomes a pipeline barrier"),
    DispatcherSpec(
        function=f"{PKG}.reuse.analysis._analyze",
        family="plan", default="refuse",
        must_handle=("ScanNode", "FilterNode", "ProjectNode", "JoinNode",
                     "SemanticFilterNode", "SemanticJoinNode",
                     "SortNode", "LimitNode")),
    DispatcherSpec(
        function=f"{PKG}.reuse.analysis.describe_plan.visit_stage",
        family="plan", default="declared",
        must_handle=("ScanNode", "FilterNode", "ProjectNode", "JoinNode",
                     "SemanticFilterNode", "SemanticSemiFilterNode",
                     "SemanticJoinNode", "SortNode", "LimitNode"),
        justification="the catch-all embeds the node's type name into "
                      "the fingerprint, so two plans differing only in "
                      "an unknown node never collide; reuse-eligible "
                      "plans cannot reach it (_analyze refuses first)"),
    DispatcherSpec(
        function=f"{PKG}.engine.explain.explain_plan",
        family="plan", kind="method", method="label"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.parameterize._Rebinder._rebuild",
        family="plan", default="reject"),
    # -- relational expression dispatchers -----------------------------
    DispatcherSpec(
        function=f"{PKG}.optimizer.rules.substitute",
        family="expr", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.rules.normalize_predicate",
        family="expr", default="declared",
        must_handle=("And", "Or", "Not", "Compare"),
        justification="NNF normalization only rewrites boolean "
                      "connectives (and flips equality under Not); "
                      "every other expression is already normal and "
                      "returned verbatim"),
    DispatcherSpec(
        function=f"{PKG}.optimizer.parameterize._Rebinder.expr",
        family="expr", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.relational.logical.infer_dtype",
        family="expr", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.hardware.jit.jit_supported",
        family="expr", default="declared",
        justification="a closed-world predicate: unsupported expression "
                      "types return False and the chain stays "
                      "interpreted — never wrong codegen"),
    DispatcherSpec(
        function=f"{PKG}.hardware.jit._check_supported",
        family="expr", default="declared",
        justification="the negative guard raises ExpressionError for "
                      "anything outside _SUPPORTED_NODES; fall-through "
                      "is the supported case"),
    DispatcherSpec(
        function=f"{PKG}.hardware.jit._Emitter.emit",
        family="expr", default="reject",
        # Func is rejected by the raising tail on purpose: callers gate
        # on jit_supported, which returns False for Func.
        exclude=("Func",)),
    DispatcherSpec(
        function=f"{PKG}.reuse.residual.derive_residual",
        family="expr", kind="method", method="evaluate"),
    # -- SQL expression dispatchers ------------------------------------
    DispatcherSpec(
        function=f"{PKG}.engine.sql.canonical._expr",
        family="sql", default="reject"),
    DispatcherSpec(
        function=f"{PKG}.engine.sql.binder.Binder._expr",
        family="sql", default="reject"),
)


def engine_dispatch_model() -> DispatchModel:
    return DispatchModel(families=FAMILIES, specs=SPECS)
