"""Lock-hierarchy checker (rules LH001–LH006).

Builds the inter-procedural acquired-while-held graph from the source
tree and checks it against the declared hierarchy in
:mod:`repro.analysis.lock_levels`:

- **LH001** — a lock acquired while a *lower-level* lock is held (an
  up-hierarchy edge), or a non-reentrant lock re-acquired while held
  (an RW lock's read mode may nest under itself; nothing else may).
- **LH002** — an edge between two distinct locks on the *same* level
  that is not declared in ``ALLOWED_SAME_LEVEL``, or a cycle among
  declared locks.
- **LH003** — a *leaf* lock (level 4) held across a call into the
  catalog, plan-cache, or scheduler modules.  Leaves must be innermost.
- **LH004** — a raw lock constructed (``threading.Lock()``,
  ``threading.RLock()``, ``RWLock()``, ``StripedRWLock()``) at an
  attribute/global the declarations file does not know about.
- **LH005** — a ``with`` acquisition of something lock-shaped (name
  matching ``(lock|mutex)$``) that no declaration covers.
- **LH006** — a stale declaration: a declared lock with no acquisition
  or construction site anywhere (the extractor went blind or the lock
  was removed — either way the declarations drifted).

The extractor understands the engine's idioms: ``with self._lock``,
``with lock.read()/.write()``, ``ExitStack.enter_context(stripe.read())``
(held to the end of the ``with`` block), iteration over
``StripedRWLock.stripes_for``, and attribute-based receiver typing via
the declared ``ATTR_TYPES`` table.  Calls it cannot resolve are ignored
(the declarations' drift rules keep the extractor honest).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.core import (
    ANALYZERS, AnalysisConfig, Finding, Package, SourceModule)

LOCKISH_RE = re.compile(r"(?i)(lock|mutex)$")

#: Constructors whose result is a mutex the declarations must know.
_RAW_CONSTRUCTORS = ("threading.Lock", "threading.RLock")
_RW_SUFFIXES = (".RWLock", ".StripedRWLock")


@dataclass(frozen=True)
class LockDecl:
    """One declared lock: where it lives and its hierarchy level."""

    name: str
    owner: str           # fq class name, or fq module for globals
    attr: str
    level: int
    kind: str = "mutex"  # "mutex" | "rwlock" | "striped"
    reentrant: bool = False
    #: extra attribute names on the same owner that denote the same
    #: underlying lock (e.g. Conditions built over the mutex).
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class LockModel:
    declarations: tuple[LockDecl, ...]
    allowed_same_level: frozenset[tuple[str, str]] = frozenset()
    attr_types: Mapping[str, str] = field(default_factory=dict)
    value_types: Mapping[str, str] = field(default_factory=dict)
    exempt_modules: frozenset[str] = frozenset()
    boundary_modules: frozenset[str] = frozenset()
    boundary_attrs: frozenset[str] = frozenset()


@dataclass(frozen=True)
class _Held:
    decl: str
    mode: str  # "exclusive" | "read" | "write"


@dataclass
class _Acquisition:
    decl: str
    mode: str
    line: int
    held: tuple[_Held, ...]


@dataclass
class _CallSite:
    callee: str | None
    hint: str | None  # receiver attribute name when callee unresolved
    line: int
    held: tuple[_Held, ...]


@dataclass
class _Facts:
    acquisitions: list[_Acquisition] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    unknown: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class Edge:
    src: str
    dst: str
    src_mode: str
    dst_mode: str
    path: str
    line: int
    via: str | None


@dataclass
class LockReport:
    """Extractor diagnostics, exposed for the analyzer's own tests."""

    sites: list[tuple[str, str, int]] = field(default_factory=list)
    #: (src, dst, path, line) -> Edge; one entry per distinct site so a
    #: pragma on one bad site cannot hide another with the same locks
    edges: dict[tuple[str, str, str, int], Edge] = \
        field(default_factory=dict)
    constructed: set[str] = field(default_factory=set)
    acquired: set[str] = field(default_factory=set)

    def edge_pairs(self) -> set[tuple[str, str]]:
        return {(src, dst) for src, dst, _, _ in self.edges}


class _FunctionWalker:
    """Extract acquisitions and call sites from one function body."""

    def __init__(self, checker: "LockChecker", fq: str,
                 node: ast.FunctionDef, module: SourceModule,
                 class_fq: str | None) -> None:
        self.checker = checker
        self.fq = fq
        self.node = node
        self.module = module
        self.class_fq = class_fq
        self.facts = _Facts()
        self.held: list[_Held] = []
        # ExitStack frames: (alias names, locks acquired through them)
        self.es_frames: list[tuple[set[str], list[_Held]]] = []
        self.locals: dict[str, object] = self._local_types()

    # -- local type inference -------------------------------------------

    def _local_types(self) -> dict[str, object]:
        types: dict[str, object] = {}
        for stmt in self._own_statements(self.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = self._typeof(stmt.value, types)
                if inferred is not None:
                    types[stmt.targets[0].id] = inferred
            elif isinstance(stmt, ast.For) \
                    and isinstance(stmt.target, ast.Name):
                it = stmt.iter
                if isinstance(it, ast.Call) \
                        and isinstance(it.func, ast.Attribute):
                    if it.func.attr == "stripes_for":
                        decl = self._lock_attr_decl(it.func.value, types)
                        if decl is not None and decl.kind == "striped":
                            types[stmt.target.id] = ("stripe", decl.name)
                    elif it.func.attr == "values":
                        container = self._typeof(it.func.value, types)
                        if isinstance(container, tuple) \
                                and container[0] == "dict":
                            types[stmt.target.id] = container[1]
        return types

    def _own_statements(self, root: ast.AST):
        """All statements of this function, not descending into defs."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(node, ast.stmt):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _typeof(self, expr: ast.expr,
                types: dict[str, object] | None = None) -> object | None:
        """Best-effort type: fq class name, ("dict", T), ("stripe", d)."""
        types = self.locals if types is None else types
        model = self.checker.model
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.class_fq:
                return self.class_fq
            return types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr in model.attr_types:
                return model.attr_types[expr.attr]
            if expr.attr in model.value_types:
                return ("dict", model.value_types[expr.attr])
            return None
        if isinstance(expr, ast.Subscript):
            container = self._typeof(expr.value, types)
            if isinstance(container, tuple) and container[0] == "dict":
                return container[1]
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("get", "pop", "setdefault"):
                container = self._typeof(func.value, types)
                if isinstance(container, tuple) and container[0] == "dict":
                    return container[1]
            resolved = self.checker.package.resolve(self.module, func) \
                if isinstance(func, (ast.Name, ast.Attribute)) else None
            if resolved in self.checker.package.classes:
                return resolved
            return None
        return None

    # -- lock expression classification ---------------------------------

    def _lock_attr_decl(self, expr: ast.expr,
                        types: dict[str, object] | None = None
                        ) -> LockDecl | None:
        checker = self.checker
        if isinstance(expr, ast.Attribute):
            owner_type = self._typeof(expr.value, types)
            if isinstance(owner_type, str):
                for ancestor in checker.package.ancestry(owner_type):
                    decl = checker.decl_at.get((ancestor, expr.attr))
                    if decl is not None:
                        return decl
            return None
        if isinstance(expr, ast.Name):
            decl = checker.decl_at.get((self.module.name, expr.id))
            if decl is not None:
                return decl
            resolved = checker.package.resolve(self.module, expr)
            if resolved and "." in resolved:
                return checker.decl_at.get(tuple(resolved.rsplit(".", 1)))
        return None

    def _classify(self, expr: ast.expr) -> tuple[LockDecl, str] | str | None:
        """Classify a with-context (or enter_context argument).

        Returns (decl, mode), or a display string for an undeclared
        lock-shaped acquisition, or None for non-lock contexts.
        """
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr in ("read", "write"):
            recv = expr.func.value
            decl = self._lock_attr_decl(recv)
            if decl is None:
                recv_type = self._typeof(recv)
                if isinstance(recv_type, tuple) \
                        and recv_type[0] == "stripe":
                    decl = self.checker.decl_by_name.get(recv_type[1])
            if decl is not None and decl.kind in ("rwlock", "striped"):
                return decl, expr.func.attr
            if self._lockish(recv):
                return f"{_render(recv)}.{expr.func.attr}()"
            return None
        decl = self._lock_attr_decl(expr)
        if decl is not None:
            return decl, "exclusive"
        if self._lockish(expr):
            return _render(expr)
        return None

    def _lockish(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute):
            return bool(LOCKISH_RE.search(expr.attr))
        if isinstance(expr, ast.Name):
            return bool(LOCKISH_RE.search(expr.id))
        return False

    # -- statement walking ----------------------------------------------

    def run(self) -> _Facts:
        self._walk_body(self.node.body)
        return self.facts

    def _walk_body(self, body: list) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested definitions are analyzed on their own
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            self._visit_expr(stmt.subject)
            for case in stmt.cases:
                self._walk_body(case.body)
        else:
            self._visit_expr(stmt)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        acquired: list[_Held] = []
        es_names: set[str] = set()
        for item in stmt.items:
            ctx = item.context_expr
            if self._is_exitstack(ctx):
                if isinstance(item.optional_vars, ast.Name):
                    es_names.add(item.optional_vars.id)
                continue
            classified = self._classify(ctx)
            if classified is None:
                self._visit_expr(ctx)
                continue
            if isinstance(classified, str):
                self.facts.unknown.append((stmt.lineno, classified))
                continue
            decl, mode = classified
            self._acquire(decl, mode, stmt.lineno, acquired)
        if es_names:
            self.es_frames.append((es_names, acquired))
        self._walk_body(stmt.body)
        if es_names:
            self.es_frames.pop()
        for _ in acquired:
            self.held.pop()

    def _acquire(self, decl: LockDecl, mode: str, line: int,
                 acquired: list[_Held]) -> None:
        self.facts.acquisitions.append(_Acquisition(
            decl.name, mode, line, tuple(self.held)))
        held = _Held(decl.name, mode)
        self.held.append(held)
        acquired.append(held)

    def _is_exitstack(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, (ast.Name, ast.Attribute)):
            resolved = self.checker.package.resolve(self.module, expr.func)
            return bool(resolved) and resolved.endswith("ExitStack")
        return False

    def _visit_expr(self, root: ast.AST) -> None:
        """Record lock-relevant calls inside a simple statement/expr."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "enter_context" \
                    and isinstance(func.value, ast.Name) \
                    and any(func.value.id in names
                            for names, _ in self.es_frames):
                classified = self._classify(
                    node.args[0]) if node.args else None
                if isinstance(classified, tuple):
                    decl, mode = classified
                    frame_acquired = self.es_frames[-1][1]
                    self._acquire(decl, mode, node.lineno, frame_acquired)
                elif isinstance(classified, str):
                    self.facts.unknown.append((node.lineno, classified))
                continue
            callee, hint = self._resolve_call(func)
            if callee is not None or hint is not None:
                self.facts.calls.append(_CallSite(
                    callee, hint, node.lineno, tuple(self.held)))

    def _resolve_call(self, func: ast.expr) -> tuple[str | None, str | None]:
        package = self.checker.package
        if isinstance(func, ast.Attribute):
            hint = func.value.attr \
                if isinstance(func.value, ast.Attribute) else None
            recv_type = self._typeof(func.value)
            if isinstance(recv_type, str):
                for ancestor in package.ancestry(recv_type):
                    candidate = f"{ancestor}.{func.attr}"
                    if candidate in package.functions:
                        return candidate, hint
                if recv_type in package.classes:
                    return None, hint
            resolved = package.resolve(self.module, func)
            if resolved in package.functions:
                return resolved, hint
            if resolved in package.classes:
                init = f"{resolved}.__init__"
                return (init if init in package.functions else None), hint
            return None, hint
        if isinstance(func, ast.Name):
            scope = self.fq
            while "." in scope:
                candidate = f"{scope}.{func.id}"
                if candidate in package.functions:
                    return candidate, None
                scope = scope.rsplit(".", 1)[0]
            resolved = package.resolve(self.module, func)
            if resolved in package.functions:
                return resolved, None
            if resolved in package.classes:
                init = f"{resolved}.__init__"
                return (init if init in package.functions else None), None
        return None, None


class LockChecker:
    def __init__(self, package: Package, model: LockModel) -> None:
        self.package = package
        self.model = model
        self.decl_at: dict[tuple[str, str], LockDecl] = {}
        self.decl_by_name: dict[str, LockDecl] = {}
        for decl in model.declarations:
            self.decl_by_name[decl.name] = decl
            for attr in (decl.attr, *decl.aliases):
                self.decl_at[(decl.owner, attr)] = decl

    def check(self) -> tuple[list[Finding], LockReport]:
        findings: list[Finding] = []
        report = LockReport()
        facts_by_fn: dict[str, _Facts] = {}
        for fq, node in self.package.functions.items():
            module = self.package.function_module[fq]
            if module.name in self.model.exempt_modules:
                continue
            class_fq = self._enclosing_class(fq)
            walker = _FunctionWalker(self, fq, node, module, class_fq)
            facts_by_fn[fq] = walker.run()

        # LH005 undeclared lock-shaped acquisitions
        for fq, facts in sorted(facts_by_fn.items()):
            module = self.package.function_module[fq]
            rel = self.package.rel_path(module)
            for line, rendered in facts.unknown:
                findings.append(Finding(
                    "LH005", rel, line,
                    f"acquisition of undeclared lock {rendered!r} in "
                    f"{fq} — declare it in analysis/lock_levels.py"))
            for acq in facts.acquisitions:
                report.sites.append((acq.decl, rel, acq.line))
                report.acquired.add(acq.decl)

        # transitive may-acquire summaries (fixpoint)
        summaries: dict[str, set[str]] = {
            fq: {acq.decl for acq in facts.acquisitions}
            for fq, facts in facts_by_fn.items()}
        changed = True
        while changed:
            changed = False
            for fq, facts in facts_by_fn.items():
                summary = summaries[fq]
                for call in facts.calls:
                    inner = summaries.get(call.callee or "")
                    if inner and not inner <= summary:
                        summary |= inner
                        changed = True

        # acquired-while-held edges
        for fq, facts in sorted(facts_by_fn.items()):
            module = self.package.function_module[fq]
            rel = self.package.rel_path(module)
            for acq in facts.acquisitions:
                for held in acq.held:
                    self._add_edge(report, Edge(
                        held.decl, acq.decl, held.mode, acq.mode,
                        rel, acq.line, None))
            for call in facts.calls:
                if not call.held or call.callee is None:
                    continue
                for inner in sorted(summaries.get(call.callee, ())):
                    for held in call.held:
                        self._add_edge(report, Edge(
                            held.decl, inner, held.mode, "exclusive",
                            rel, call.line, call.callee))

        findings.extend(self._check_edges(report))
        findings.extend(self._check_boundaries(facts_by_fn))
        findings.extend(self._check_constructions(report))
        findings.extend(self._check_stale(report))
        return findings, report

    def _enclosing_class(self, fq: str) -> str | None:
        scope = fq.rsplit(".", 1)[0]
        while "." in scope:
            if scope in self.package.classes:
                return scope
            scope = scope.rsplit(".", 1)[0]
        return None

    @staticmethod
    def _add_edge(report: LockReport, edge: Edge) -> None:
        report.edges.setdefault(
            (edge.src, edge.dst, edge.path, edge.line), edge)

    def _check_edges(self, report: LockReport) -> list[Finding]:
        findings = []
        for (src, dst, _, _), edge in sorted(report.edges.items()):
            s = self.decl_by_name[src]
            d = self.decl_by_name[dst]
            via = f" (via {edge.via})" if edge.via else ""
            if src == dst:
                if s.reentrant:
                    continue
                if s.kind in ("rwlock", "striped") \
                        and edge.src_mode == "read" \
                        and edge.dst_mode == "read":
                    continue
                findings.append(Finding(
                    "LH001", edge.path, edge.line,
                    f"non-reentrant lock {s.name} (level {s.level}) "
                    f"re-acquired while held{via}"))
            elif s.level > d.level:
                findings.append(Finding(
                    "LH001", edge.path, edge.line,
                    f"up-hierarchy edge: {s.name} (level {s.level}) held "
                    f"while acquiring {d.name} (level {d.level}){via}"))
            elif s.level == d.level \
                    and (src, dst) not in self.model.allowed_same_level:
                findings.append(Finding(
                    "LH002", edge.path, edge.line,
                    f"undeclared same-level edge: {s.name} -> {d.name} "
                    f"(both level {s.level}){via} — whitelist it in "
                    f"ALLOWED_SAME_LEVEL or re-level one lock"))
        findings.extend(self._check_cycles(report))
        return findings

    def _check_cycles(self, report: LockReport) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        first_site: dict[tuple[str, str], Edge] = {}
        for (src, dst, _, _), edge in sorted(report.edges.items()):
            if src != dst:
                graph.setdefault(src, set()).add(dst)
                first_site.setdefault((src, dst), edge)
        path: list[str] = []
        on_path: set[str] = set()
        done: set[str] = set()
        cycles: list[tuple[str, ...]] = []

        def visit(node: str) -> None:
            if node in done:
                return
            path.append(node)
            on_path.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    cycles.append(tuple(path[path.index(succ):]) + (succ,))
                else:
                    visit(succ)
            on_path.discard(node)
            path.pop()
            done.add(node)

        for node in sorted(graph):
            visit(node)
        findings = []
        for cycle in cycles:
            first_edge = first_site[(cycle[0], cycle[1])]
            findings.append(Finding(
                "LH002", first_edge.path, first_edge.line,
                "lock cycle: " + " -> ".join(cycle)))
        return findings

    def _check_boundaries(
            self, facts_by_fn: dict[str, _Facts]) -> list[Finding]:
        findings = []
        leaf_level = max(d.level for d in self.model.declarations)
        for fq, facts in sorted(facts_by_fn.items()):
            module = self.package.function_module[fq]
            rel = self.package.rel_path(module)
            for call in facts.calls:
                leaves = [h.decl for h in call.held
                          if self.decl_by_name[h.decl].level == leaf_level]
                if not leaves:
                    continue
                callee_module = ""
                if call.callee and call.callee \
                        in self.package.function_module:
                    callee_module = \
                        self.package.function_module[call.callee].name
                if callee_module in self.model.boundary_modules \
                        and callee_module != module.name:
                    target = call.callee
                elif call.hint in self.model.boundary_attrs:
                    target = call.hint
                else:
                    continue
                findings.append(Finding(
                    "LH003", rel, call.line,
                    f"leaf lock {leaves[0]} held across call into "
                    f"{target} — leaves must be innermost"))
        return findings

    def _check_constructions(self, report: LockReport) -> list[Finding]:
        findings = []
        for module in self.package.modules.values():
            if module.name in self.model.exempt_modules:
                continue
            rel = self.package.rel_path(module)
            for owner, attr, line in _constructions(self.package, module):
                decl = self.decl_at.get((owner, attr))
                if decl is not None:
                    report.constructed.add(decl.name)
                else:
                    findings.append(Finding(
                        "LH004", rel, line,
                        f"undeclared lock constructed at {owner}.{attr} — "
                        f"declare it in analysis/lock_levels.py"))
        return findings

    def _check_stale(self, report: LockReport) -> list[Finding]:
        findings = []
        for decl in self.model.declarations:
            if decl.name in report.acquired \
                    or decl.name in report.constructed:
                continue
            module = self.package.class_module.get(decl.owner) \
                or self.package.modules.get(decl.owner)
            rel = self.package.rel_path(module) if module else decl.owner
            findings.append(Finding(
                "LH006", rel, 1,
                f"stale declaration: {decl.name} has no acquisition or "
                f"construction site — remove it or fix the extractor"))
        return findings


def _constructions(package: Package, module: SourceModule):
    """Yield (owner, attr, line) for every lock constructed in module."""

    def is_ctor(expr: ast.expr) -> bool:
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return False
        resolved = package.resolve(module, expr)
        return bool(resolved) and (
            resolved in _RAW_CONSTRUCTORS
            or resolved.endswith(_RW_SUFFIXES))

    def scan(body: list, prefix: str, class_fq: str | None):
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from scan(node.body, f"{prefix}.{node.name}",
                                f"{prefix}.{node.name}")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from scan(node.body, prefix, class_fq)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        yield from scan([sub], prefix, class_fq)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                value = node.value
                if value is None:
                    continue
                made = None
                if isinstance(value, ast.Call) and is_ctor(value.func):
                    made = True
                elif isinstance(value, ast.Call) \
                        and isinstance(value.func, (ast.Name, ast.Attribute)):
                    resolved = package.resolve(module, value.func)
                    if resolved and resolved.endswith("field"):
                        for kw in value.keywords:
                            if kw.arg == "default_factory" \
                                    and is_ctor(kw.value):
                                made = True
                if not made:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self" and class_fq:
                        yield class_fq, target.attr, node.lineno
                    elif isinstance(target, ast.Name):
                        yield (class_fq or prefix), target.id, node.lineno

    yield from scan(module.tree.body, module.name, None)


def _render(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:
        return "<lock>"


def check_locks(config: AnalysisConfig) -> tuple[list[Finding], LockReport]:
    if config.locks is None:
        return [], LockReport()
    return LockChecker(config.package, config.locks).check()


ANALYZERS["locks"] = lambda config: check_locks(config)[0]
