"""Shared infrastructure for the engine's static-analysis suite.

The analyzers in this package (:mod:`repro.analysis.locks`,
:mod:`repro.analysis.dispatch`, :mod:`repro.analysis.cachekeys`) parse
the engine's own source with :mod:`ast` — they never import the code
under analysis, so fixture modules containing deliberate bugs stay
inert.  This module provides what all three share:

- :class:`SourceModule` / :class:`Package` — a parsed view of a source
  tree with per-module import tables, a class index with resolved base
  classes, and a fully-qualified function index (nested functions and
  methods included, e.g. ``repro.reuse.analysis.describe_plan.visit``).
- :class:`Finding` — one rule violation at one location.
- Pragma suppression — a line carrying ``# analysis: ignore[RULE]``
  suppresses findings of that rule on that line.  The bracket may list
  several comma-separated rules or ``all``.  Text after the bracket is
  the mandatory justification; a pragma without one is itself reported
  (rule ``AN001``) so suppressions stay auditable.
- :func:`run_analysis` — drives the configured analyzers over a
  :class:`AnalysisConfig` and applies suppression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

#: ``# analysis: ignore[LH001]`` or ``ignore[LH001, DX002] reason...``.
PRAGMA_RE = re.compile(
    r"#\s*analysis:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")


@dataclass(frozen=True)
class Finding:
    """One rule violation: rule id, repo-relative path, line, message."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.rule}  {self.path}:{self.line}  {self.message}"


@dataclass(frozen=True)
class Pragma:
    rules: tuple[str, ...]
    justification: str

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


class SourceModule:
    """One parsed source file: AST, import table, pragma table."""

    def __init__(self, path: Path, name: str, text: str) -> None:
        self.path = path
        self.name = name
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.pragmas: dict[int, Pragma] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = PRAGMA_RE.search(line)
            if match:
                rules = tuple(
                    r.strip() for r in match.group(1).split(",") if r.strip())
                self.pragmas[lineno] = Pragma(rules, match.group(2).strip())
        # name -> fully qualified target, absolute imports only (the
        # engine uses absolute imports throughout).
        self.imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        self.imports[bound] = f"{node.module}.{alias.name}"


class Package:
    """A parsed source tree with class/function indexes and resolution."""

    def __init__(self, root: Path, name: str, report_base: Path) -> None:
        self.root = root
        self.name = name
        self.report_base = report_base
        self.modules: dict[str, SourceModule] = {}
        for py_path in sorted(root.rglob("*.py")):
            rel = py_path.relative_to(root)
            parts = list(rel.parts)
            parts[-1] = parts[-1][: -len(".py")]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            modname = ".".join([name, *parts]) if parts else name
            self.modules[modname] = SourceModule(
                py_path, modname, py_path.read_text())
        # fq class name -> definition, owning module, base expressions
        self.classes: dict[str, ast.ClassDef] = {}
        self.class_module: dict[str, SourceModule] = {}
        # fq function name (dots through classes and nesting) -> def
        self.functions: dict[str, ast.FunctionDef] = {}
        self.function_module: dict[str, SourceModule] = {}
        for module in self.modules.values():
            self._index(module, module.tree.body, module.name)
        # resolved base-class edges, computed after every class is known
        self.class_bases: dict[str, tuple[str, ...]] = {}
        for fq, node in self.classes.items():
            module = self.class_module[fq]
            bases = []
            for base in node.bases:
                resolved = self.resolve(module, base)
                if resolved:
                    bases.append(resolved)
            self.class_bases[fq] = tuple(bases)

    def _index(self, module: SourceModule, body: list, prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                fq = f"{prefix}.{node.name}"
                self.classes[fq] = node
                self.class_module[fq] = module
                self._index(module, node.body, fq)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{prefix}.{node.name}"
                if isinstance(node, ast.FunctionDef):
                    self.functions[fq] = node
                    self.function_module[fq] = module
                self._index(module, node.body, fq)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # index through conditional/guarded definitions
                for sub_body in _sub_bodies(node):
                    self._index(module, sub_body, prefix)

    # -- name resolution -------------------------------------------------

    def resolve(self, module: SourceModule, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute expression to a qualified name."""
        if isinstance(node, ast.Name):
            if node.id in module.imports:
                return module.imports[node.id]
            local = f"{module.name}.{node.id}"
            if local in self.classes or local in self.functions:
                return local
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.resolve(module, node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def subclasses(self, base_fq: str) -> dict[str, str]:
        """Transitive subclasses of ``base_fq``: simple name -> fq name."""
        children: dict[str, list[str]] = {}
        for fq, bases in self.class_bases.items():
            for base in bases:
                children.setdefault(base, []).append(fq)
        members: dict[str, str] = {}
        frontier = [base_fq]
        while frontier:
            current = frontier.pop()
            for child in children.get(current, ()):
                simple = child.rsplit(".", 1)[1]
                if simple not in members:
                    members[simple] = child
                    frontier.append(child)
        return members

    def ancestry(self, fq: str) -> Iterator[str]:
        """``fq`` followed by its base classes, breadth-first."""
        seen = [fq]
        index = 0
        while index < len(seen):
            current = seen[index]
            index += 1
            yield current
            for base in self.class_bases.get(current, ()):
                if base not in seen:
                    seen.append(base)

    def rel_path(self, module: SourceModule) -> str:
        try:
            return str(module.path.relative_to(self.report_base))
        except ValueError:
            return str(module.path)

    def module_of_class(self, fq: str) -> str:
        return self.class_module[fq].name if fq in self.class_module else ""


def _sub_bodies(node: ast.stmt) -> Iterator[list]:
    for attr in ("body", "orelse", "finalbody"):
        sub = getattr(node, attr, None)
        if sub:
            yield sub
    for handler in getattr(node, "handlers", ()):
        yield handler.body


@dataclass
class AnalysisConfig:
    """Everything one analysis run needs: sources plus declarations."""

    package: Package
    locks: "object | None" = None      # LockModel
    dispatch: "object | None" = None   # DispatchModel
    cache: "object | None" = None      # CacheModel
    metrics: "object | None" = None    # MetricNamesModel


#: Registered analyzer entry points, filled by the sibling modules to
#: avoid an import cycle (each registers ``name -> callable``).
ANALYZERS: dict[str, Callable[[AnalysisConfig], list[Finding]]] = {}

ALL_RULES = ("locks", "dispatch", "cache", "metrics")


def pragma_findings(package: Package) -> list[Finding]:
    """Report pragmas that suppress without saying why (rule AN001)."""
    findings = []
    for module in package.modules.values():
        for lineno, pragma in sorted(module.pragmas.items()):
            if not pragma.justification:
                findings.append(Finding(
                    "AN001", package.rel_path(module), lineno,
                    "suppression pragma has no justification — say why "
                    "the finding is a false positive"))
    return findings


def suppress(package: Package, findings: list[Finding]) -> list[Finding]:
    """Drop findings covered by a same-line ignore pragma."""
    by_location: dict[tuple[str, int], Pragma] = {}
    for module in package.modules.values():
        rel = package.rel_path(module)
        for lineno, pragma in module.pragmas.items():
            by_location[(rel, lineno)] = pragma
    kept = []
    for finding in findings:
        pragma = by_location.get((finding.path, finding.line))
        if pragma is not None and pragma.covers(finding.rule):
            continue
        kept.append(finding)
    return kept


def run_analysis(config: AnalysisConfig,
                 rules: tuple[str, ...] = ALL_RULES) -> list[Finding]:
    """Run the selected analyzers, apply pragmas, return sorted findings."""
    # The analyzer modules register themselves on import.
    from repro.analysis import (  # noqa: F401
        cachekeys, dispatch, locks, metricnames)

    findings: list[Finding] = []
    for rule in rules:
        analyzer = ANALYZERS.get(rule)
        if analyzer is None:
            raise ValueError(f"unknown analyzer {rule!r}; "
                             f"known: {sorted(ANALYZERS)}")
        findings.extend(analyzer(config))
    findings = suppress(config.package, findings)
    findings.extend(pragma_findings(config.package))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
