"""Engine-aware static analysis: lock hierarchy, dispatch
exhaustiveness, cache-key/invalidation discipline.

Run over the real engine tree with ``python -m repro.analysis`` (exit
status 0 when clean, 1 with ``RULE path:line message`` per finding),
or from tests via :func:`engine_config` + :func:`run_analysis`.  The
declarations the analyzers enforce live beside them:

- :mod:`repro.analysis.lock_levels` — the lock hierarchy (canonical;
  ``docs/serving.md`` points here).
- :mod:`repro.analysis.dispatch_registry` — every type-dispatch
  surface and its declared default.
- :mod:`repro.analysis.cache_dimensions` — version-bump protocol and
  pre-captured-key cache paths.
- :mod:`repro.analysis.metric_names` — the metric-name vocabulary the
  observability registry may register.

Rule families: ``LH*`` locks, ``DX*`` dispatch, ``CK*`` cache keys,
``MN*`` metric names, ``AN*`` the suite itself (pragma hygiene).  Suppress a false positive
with ``# analysis: ignore[RULE] <why>`` on the offending line; see
``docs/static-analysis.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import (
    ALL_RULES, AnalysisConfig, Finding, Package, run_analysis)


def engine_config() -> AnalysisConfig:
    """Analysis configuration for the real ``src/repro`` tree."""
    from repro.analysis.cache_dimensions import engine_cache_model
    from repro.analysis.dispatch_registry import engine_dispatch_model
    from repro.analysis.lock_levels import engine_lock_model
    from repro.analysis.metric_names import engine_metric_names_model

    package_dir = Path(__file__).resolve().parent.parent
    repo_root = package_dir.parent.parent
    package = Package(package_dir, "repro", report_base=repo_root)
    return AnalysisConfig(
        package=package,
        locks=engine_lock_model(),
        dispatch=engine_dispatch_model(),
        cache=engine_cache_model(),
        metrics=engine_metric_names_model(),
    )


__all__ = ["ALL_RULES", "AnalysisConfig", "Finding", "Package",
           "engine_config", "run_analysis"]
