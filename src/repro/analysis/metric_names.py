"""The engine's declared metric-name vocabulary.

Every literal name passed to ``MetricsRegistry.counter/gauge/histogram``
anywhere in the engine must be declared here, with its kind — the
metric-name lint (:mod:`repro.analysis.metricnames`) enforces it in
both directions (rules MN001/MN002), so ``docs/observability.md``'s
metric catalog, this table, and the registrations in the source cannot
drift apart.  Names follow Prometheus conventions: ``_total`` suffix
for counters, ``_seconds``/``_bytes`` units, base names for gauges.
"""

from __future__ import annotations

from repro.analysis.metricnames import MetricDecl, MetricNamesModel

DECLARED_METRICS: tuple[MetricDecl, ...] = (
    # -- engine-wide (EngineState / Tracer) ----------------------------
    MetricDecl("engine_statements_total", "counter",
               "statements served (all paths)"),
    MetricDecl("engine_statement_seconds", "histogram",
               "end-to-end wall seconds per executed statement"),
    MetricDecl("engine_operator_seconds", "histogram",
               "wall seconds per physical operator"),
    MetricDecl("engine_traces_total", "counter",
               "statement traces sampled and completed"),
    MetricDecl("catalog_version", "gauge",
               "monotonic catalog/statistics version"),
    # -- plan cache ----------------------------------------------------
    MetricDecl("plan_cache_hits_total", "counter", "plan cache hits"),
    MetricDecl("plan_cache_misses_total", "counter", "plan cache misses"),
    MetricDecl("plan_cache_text_memo_hits_total", "counter",
               "byte-identical statement texts that skipped the lexer"),
    MetricDecl("plan_cache_evictions_total", "counter", "LRU evictions"),
    MetricDecl("plan_cache_stale_evictions_total", "counter",
               "entries dropped on version/model mismatch"),
    MetricDecl("plan_cache_entries", "gauge", "cached plans resident"),
    MetricDecl("plan_cache_hit_ratio", "gauge",
               "hits / (hits + misses)"),
    MetricDecl("plan_cache_generic_hits_total", "counter",
               "statements served from a promoted generic plan"),
    MetricDecl("plan_cache_promotions_total", "counter",
               "families promoted to a generic plan"),
    MetricDecl("plan_cache_demotions_total", "counter",
               "generic plans dropped after a fingerprint mismatch"),
    MetricDecl("plan_cache_generic_rechecks_total", "counter",
               "generic serves diverted through full optimization"),
    MetricDecl("plan_cache_generic_entries", "gauge",
               "promoted generic plans resident"),
    # -- optimizer -----------------------------------------------------
    MetricDecl("optimizer_rewrite_nonconvergence_total", "counter",
               "rewrite fixpoints that hit max_passes still firing"),
    # -- result cache --------------------------------------------------
    MetricDecl("result_cache_hits_total", "counter", "result cache hits"),
    MetricDecl("result_cache_misses_total", "counter",
               "result cache misses"),
    MetricDecl("result_cache_puts_total", "counter",
               "result snapshots stored"),
    MetricDecl("result_cache_evictions_total", "counter",
               "byte-budget evictions"),
    MetricDecl("result_cache_stale_evictions_total", "counter",
               "entries dropped on generation mismatch"),
    MetricDecl("result_cache_invalidations_total", "counter",
               "entries dropped by explicit invalidate()"),
    MetricDecl("result_cache_oversize_skips_total", "counter",
               "results too large to admit"),
    MetricDecl("result_cache_reuse_fetches_total", "counter",
               "snapshot fetches on behalf of the reuse subsystem"),
    MetricDecl("result_cache_entries", "gauge",
               "cached result snapshots resident"),
    MetricDecl("result_cache_bytes", "gauge", "snapshot bytes resident"),
    MetricDecl("result_cache_hit_ratio", "gauge",
               "hits / (hits + misses)"),
    # -- semantic-reuse registry ---------------------------------------
    MetricDecl("reuse_registered_total", "counter",
               "cached statements registered as reuse candidates"),
    MetricDecl("reuse_probes_total", "counter", "subsumption probes"),
    MetricDecl("reuse_hits_total", "counter",
               "statements answered residually from a super-result"),
    MetricDecl("reuse_misses_total", "counter",
               "probes with no containing candidate"),
    MetricDecl("reuse_fallbacks_total", "counter",
               "candidate matches whose snapshot was already gone"),
    MetricDecl("reuse_stale_drops_total", "counter",
               "candidates dropped on generation mismatch"),
    MetricDecl("reuse_entries", "gauge", "registered candidates"),
    MetricDecl("reuse_families", "gauge", "distinct statement families"),
    MetricDecl("reuse_hit_ratio", "gauge", "hits / probes"),
    # -- kernel cache --------------------------------------------------
    MetricDecl("kernel_cache_hits_total", "counter",
               "compiled-kernel cache hits"),
    MetricDecl("kernel_cache_misses_total", "counter",
               "compiled-kernel cache misses"),
    MetricDecl("kernel_cache_compiles_total", "counter",
               "actual compilations"),
    MetricDecl("kernel_cache_single_flight_waits_total", "counter",
               "misses coalesced onto another thread's compile"),
    MetricDecl("kernel_cache_evictions_total", "counter", "LRU evictions"),
    MetricDecl("kernel_cache_entries", "gauge",
               "compiled kernels resident"),
    MetricDecl("kernel_cache_hit_ratio", "gauge",
               "hits / (hits + misses)"),
    MetricDecl("kernel_compile_seconds", "histogram",
               "wall seconds per compile_pipeline call"),
    # -- scheduler -----------------------------------------------------
    MetricDecl("scheduler_dispatches_total", "counter",
               "queries handed to the admission classifier"),
    MetricDecl("scheduler_admitted_total", "counter", "queries admitted"),
    MetricDecl("scheduler_rejected_total", "counter",
               "queries rejected at admission"),
    MetricDecl("scheduler_result_cache_noops_total", "counter",
               "result-cache hits recorded as interactive no-ops"),
    MetricDecl("scheduler_reuse_noops_total", "counter",
               "reuse hits recorded as interactive no-ops"),
    MetricDecl("scheduler_running", "gauge", "queries executing now"),
    MetricDecl("scheduler_queued", "gauge",
               "queries waiting, per lane label"),
    MetricDecl("scheduler_queue_wait_seconds", "histogram",
               "seconds from admission to worker pickup"),
    # -- embedding arenas (per-model label) ----------------------------
    MetricDecl("embedding_arena_hits", "gauge", "embedding cache hits"),
    MetricDecl("embedding_arena_misses", "gauge",
               "embedding cache misses"),
    MetricDecl("embedding_arena_rows", "gauge",
               "interned strings (arena rows)"),
    MetricDecl("embedding_arena_bytes", "gauge", "arena bytes in use"),
    MetricDecl("embedding_arena_hit_ratio", "gauge",
               "hits / (hits + misses)"),
    # -- vector-index cache --------------------------------------------
    MetricDecl("index_cache_hits", "gauge", "vector-index cache hits"),
    MetricDecl("index_cache_misses", "gauge",
               "vector-index cache misses"),
    MetricDecl("index_cache_builds", "gauge",
               "actual index constructions"),
    MetricDecl("index_cache_incremental_extends", "gauge",
               "index builds served by extending a predecessor"),
    MetricDecl("index_cache_single_flight_waits", "gauge",
               "misses coalesced onto another thread's build"),
    MetricDecl("index_cache_entries", "gauge",
               "built vector indexes resident"),
    MetricDecl("index_cache_generation", "gauge",
               "monotonic clear() token"),
    MetricDecl("index_cache_hit_ratio", "gauge",
               "hits / (hits + misses)"),
    # -- ingest --------------------------------------------------------
    MetricDecl("ingest_rows_total", "counter",
               "rows written through append/upsert"),
    MetricDecl("ingest_delta_maintained_total", "counter",
               "cached results patched in place from an append delta"),
    MetricDecl("ingest_delta_refused_total", "counter",
               "cached results invalidated after a refused "
               "append-monotonicity proof"),
    MetricDecl("ingest_table_staleness_seconds", "gauge",
               "wall seconds from mutation start until every cache "
               "over the table was patched or invalidated"),
)


def engine_metric_names_model() -> MetricNamesModel:
    return MetricNamesModel(
        declarations=DECLARED_METRICS,
        declaration_module="repro.analysis.metric_names",
    )
