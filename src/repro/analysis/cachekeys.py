"""Cache-key / invalidation lint (rules CK001–CK004).

Checks the declared invalidation protocol in
:mod:`repro.analysis.cache_dimensions` against the source:

- **CK001** — a declared mutator does not bump its version dimension:
  no assignment/augmented assignment to ``self.<attr>`` in its body,
  no delegation to the declared sibling, or a declared required call
  (e.g. ``RETIRED_GENERATIONS.add``) is missing.
- **CK002** — versioned state written from outside the owning class:
  an assignment to a protected attribute through a receiver typed as
  the owner (e.g. ``state.catalog._tables = ...``).
- **CK003** — pre-captured-key discipline broken in a declared cache
  path: the key must be derived exactly once (one ``result_key`` call,
  bound to one name), *before* the first probe, never rebound, and the
  same name must flow to every probe/store call.
- **CK004** — declaration drift: a declared owner, mutator, or
  discipline function that does not exist in the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.core import (
    ANALYZERS, AnalysisConfig, Finding, Package)


@dataclass(frozen=True)
class VersionBump:
    owner: str                       # fq class name
    attr: str                        # version attribute to bump
    mutators: tuple[str, ...]        # methods that must bump directly
    delegates: Mapping[str, str] = field(default_factory=dict)
    #: method -> ((receiver name, method), ...) calls that must appear
    required_calls: Mapping[str, tuple[tuple[str, str], ...]] = \
        field(default_factory=dict)


@dataclass(frozen=True)
class ProtectedState:
    owner: str
    attrs: tuple[str, ...]


@dataclass(frozen=True)
class KeyDiscipline:
    function: str                    # fq function holding the cache path
    capture: str                     # key-derivation method name
    probes: tuple[str, ...]          # calls that consume the key pre-exec
    stores: tuple[str, ...]          # calls the key must flow into


@dataclass(frozen=True)
class CacheModel:
    version_protocols: tuple[VersionBump, ...]
    protected_state: tuple[ProtectedState, ...]
    key_disciplines: tuple[KeyDiscipline, ...]
    attr_types: Mapping[str, str] | None = None


def check_cachekeys(config: AnalysisConfig) -> list[Finding]:
    model = config.cache
    if model is None:
        return []
    package = config.package
    findings: list[Finding] = []
    for bump in model.version_protocols:
        findings.extend(_check_bump(package, bump))
    findings.extend(_check_protected(package, model))
    for discipline in model.key_disciplines:
        findings.extend(_check_discipline(package, discipline))
    return findings


# -- CK001 / CK004: version bumps --------------------------------------

def _check_bump(package: Package, bump: VersionBump) -> list[Finding]:
    findings = []
    if bump.owner not in package.classes:
        return [Finding("CK004", bump.owner, 1,
                        f"declared version owner {bump.owner} not found")]
    module = package.class_module[bump.owner]
    rel = package.rel_path(module)
    for mutator in bump.mutators:
        fn = package.functions.get(f"{bump.owner}.{mutator}")
        if fn is None:
            findings.append(Finding(
                "CK004", rel, package.classes[bump.owner].lineno,
                f"declared mutator {bump.owner}.{mutator} not found"))
            continue
        if not _assigns_self_attr(fn, bump.attr):
            findings.append(Finding(
                "CK001", rel, fn.lineno,
                f"{bump.owner.rsplit('.', 1)[1]}.{mutator} must bump "
                f"self.{bump.attr} but never assigns it"))
        for recv, method in bump.required_calls.get(mutator, ()):
            if not _calls_name_method(fn, recv, method):
                findings.append(Finding(
                    "CK001", rel, fn.lineno,
                    f"{bump.owner.rsplit('.', 1)[1]}.{mutator} must call "
                    f"{recv}.{method}(...) but never does"))
    for delegate, target in bump.delegates.items():
        fn = package.functions.get(f"{bump.owner}.{delegate}")
        if fn is None:
            findings.append(Finding(
                "CK004", rel, package.classes[bump.owner].lineno,
                f"declared delegate {bump.owner}.{delegate} not found"))
            continue
        if not _calls_self_method(fn, target):
            findings.append(Finding(
                "CK001", rel, fn.lineno,
                f"{bump.owner.rsplit('.', 1)[1]}.{delegate} must delegate "
                f"to self.{target}() for its version bump"))
    return findings


def _assigns_self_attr(fn: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(fn):
        target = None
        if isinstance(node, ast.AugAssign):
            target = node.target
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if _is_self_attr(t, attr):
                    return True
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
        if target is not None and _is_self_attr(target, attr):
            return True
    return False


def _is_self_attr(node: ast.expr, attr: str) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _calls_self_method(fn: ast.FunctionDef, method: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == method \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "self":
            return True
    return False


def _calls_name_method(fn: ast.FunctionDef, recv: str, method: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == method \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == recv:
            return True
    return False


# -- CK002: protected state writes -------------------------------------

def _check_protected(package: Package, model: CacheModel) -> list[Finding]:
    protected: dict[str, list[str]] = {}
    for spec in model.protected_state:
        for attr in spec.attrs:
            protected.setdefault(attr, []).append(spec.owner)
    attr_types = dict(model.attr_types or {})
    findings = []
    for fq, fn in sorted(package.functions.items()):
        enclosing = _enclosing_class(package, fq)
        module = package.function_module[fq]
        rel = package.rel_path(module)
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if not isinstance(target, ast.Attribute) \
                        or target.attr not in protected:
                    continue
                owners = protected[target.attr]
                recv_type = _receiver_type(
                    target.value, enclosing, attr_types)
                if recv_type in owners and recv_type != enclosing:
                    findings.append(Finding(
                        "CK002", rel, node.lineno,
                        f"{fq} writes {recv_type.rsplit('.', 1)[1]}."
                        f"{target.attr} from outside the owner — use the "
                        f"owner's mutators so the version bump happens"))
    return findings


def _receiver_type(expr: ast.expr, enclosing: str | None,
                   attr_types: Mapping[str, str]) -> str | None:
    if isinstance(expr, ast.Name):
        return enclosing if expr.id == "self" else None
    if isinstance(expr, ast.Attribute):
        return attr_types.get(expr.attr)
    return None


def _enclosing_class(package: Package, fq: str) -> str | None:
    scope = fq.rsplit(".", 1)[0]
    while "." in scope:
        if scope in package.classes:
            return scope
        scope = scope.rsplit(".", 1)[0]
    return None


# -- CK003: pre-captured-key discipline --------------------------------

def _check_discipline(package: Package,
                      discipline: KeyDiscipline) -> list[Finding]:
    fn = package.functions.get(discipline.function)
    if fn is None:
        return [Finding("CK004", discipline.function, 1,
                        f"declared cache path {discipline.function} "
                        f"not found")]
    module = package.function_module[discipline.function]
    rel = package.rel_path(module)
    findings = []

    captures: list[tuple[ast.Assign, ast.Call]] = []
    loose_captures: list[ast.Call] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call) \
                and _call_method(node.value) == discipline.capture:
            captures.append((node, node.value))
        elif isinstance(node, ast.Call) \
                and _call_method(node) == discipline.capture:
            loose_captures.append(node)

    if len(captures) != 1 or len(loose_captures) != 1:
        return [Finding(
            "CK003", rel, fn.lineno,
            f"{discipline.function} must derive the cache key exactly "
            f"once via {discipline.capture}() bound to one name; found "
            f"{len(loose_captures)} call(s), {len(captures)} binding(s)")]

    assign, _ = captures[0]
    if len(assign.targets) != 1 \
            or not isinstance(assign.targets[0], ast.Name):
        return [Finding(
            "CK003", rel, assign.lineno,
            f"{discipline.function}: the {discipline.capture}() result "
            f"must bind a single plain name")]
    key_name = assign.targets[0].id

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and node is not assign:
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == key_name:
                    findings.append(Finding(
                        "CK003", rel, node.lineno,
                        f"{discipline.function}: key name {key_name!r} "
                        f"rebound after capture — the pre-captured key "
                        f"must flow unchanged to the store"))

    consumers = discipline.probes + discipline.stores
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        method = _call_method(node)
        if method not in consumers:
            continue
        if method in discipline.probes and node.lineno < assign.lineno:
            findings.append(Finding(
                "CK003", rel, node.lineno,
                f"{discipline.function}: probe {method}() runs before "
                f"the key is captured"))
        args = list(node.args) + [kw.value for kw in node.keywords]
        if not any(isinstance(a, ast.Name) and a.id == key_name
                   for a in args):
            findings.append(Finding(
                "CK003", rel, node.lineno,
                f"{discipline.function}: {method}() does not receive the "
                f"pre-captured key {key_name!r}"))
    return findings


def _call_method(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


ANALYZERS["cache"] = check_cachekeys
