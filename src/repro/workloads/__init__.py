"""Synthetic workload generators for every experiment (DESIGN.md §4)."""

from repro.workloads.wiki_strings import WikiStringWorkload
from repro.workloads.retail import RetailWorkload
from repro.workloads.labels import DirtyLabelWorkload
from repro.workloads.logs import LogWorkload

__all__ = [
    "WikiStringWorkload",
    "RetailWorkload",
    "DirtyLabelWorkload",
    "LogWorkload",
]
