"""The motivating-example workload (paper §II, Figure 2).

An online shopping platform with three sources:

1. **RDBMS** — ``products``, ``users``, ``transactions`` (clean, golden),
2. **knowledge base** — category triples whose labels are surface-form
   variants of the product vocabulary (curated on a broader corpus),
3. **image store** — customer images with latent objects, reachable only
   through (simulated) object detection.

The bundle registers everything into a catalog / engine session and also
exposes the raw generators so benchmarks can scale pieces independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.polystore.image_store import ImageStore, SyntheticImage
from repro.polystore.knowledge_base import KnowledgeBase
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType, date_to_int
from repro.utils.rng import derive_seed, make_rng

_PRODUCT_SCHEMA = Schema([
    Field("pid", DataType.INT64),
    Field("name", DataType.STRING),
    Field("ptype", DataType.STRING),
    Field("price", DataType.FLOAT64),
    Field("brand", DataType.STRING),
])

_USER_SCHEMA = Schema([
    Field("uid", DataType.INT64),
    Field("country", DataType.STRING),
    Field("signup_date", DataType.DATE),
])

_TRANSACTION_SCHEMA = Schema([
    Field("tid", DataType.INT64),
    Field("uid", DataType.INT64),
    Field("pid", DataType.INT64),
    Field("quantity", DataType.INT64),
    Field("date", DataType.DATE),
])

_BRANDS = ["acme", "northwind", "globex", "initech", "umbrella", "stark"]
_COUNTRIES = ["ch", "de", "fr", "it", "us", "jp", "br"]


@dataclass
class RetailWorkload:
    """Deterministic generator for the Figure-2 data ecosystem."""

    n_products: int = 500
    n_users: int = 200
    n_transactions: int = 2_000
    n_images: int = 300
    seed: int = 41
    start_date: str = "2022-01-01"
    end_date: str = "2022-12-31"
    thesaurus: Thesaurus | None = None
    _leaf_names: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.thesaurus = self.thesaurus or default_thesaurus()
        self._leaf_names = [c.name for c in self.thesaurus.leaves]

    # ------------------------------------------------------------------
    def products(self) -> Table:
        """Product catalog; ``ptype`` holds one surface form per product."""
        rng = make_rng(derive_seed(self.seed, "products"))
        rows = []
        for pid in range(self.n_products):
            concept = self.thesaurus[self._leaf_names[int(
                rng.integers(len(self._leaf_names)))]]
            form = concept.forms[int(rng.integers(len(concept.forms)))]
            rows.append({
                "pid": pid,
                "name": f"{_BRANDS[int(rng.integers(len(_BRANDS)))]} "
                        f"{form} #{pid}",
                "ptype": form,
                "price": round(float(rng.uniform(1.0, 200.0)), 2),
                "brand": _BRANDS[int(rng.integers(len(_BRANDS)))],
            })
        return Table.from_rows(rows, _PRODUCT_SCHEMA)

    def users(self) -> Table:
        rng = make_rng(derive_seed(self.seed, "users"))
        lo = date_to_int(self.start_date)
        hi = date_to_int(self.end_date)
        rows = [{
            "uid": uid,
            "country": _COUNTRIES[int(rng.integers(len(_COUNTRIES)))],
            "signup_date": int(rng.integers(lo, hi)),
        } for uid in range(self.n_users)]
        return Table.from_rows(rows, _USER_SCHEMA)

    def transactions(self) -> Table:
        rng = make_rng(derive_seed(self.seed, "transactions"))
        lo = date_to_int(self.start_date)
        hi = date_to_int(self.end_date)
        rows = [{
            "tid": tid,
            "uid": int(rng.integers(self.n_users)),
            "pid": int(rng.integers(self.n_products)),
            "quantity": int(rng.integers(1, 5)),
            "date": int(rng.integers(lo, hi)),
        } for tid in range(self.n_transactions)]
        return Table.from_rows(rows, _TRANSACTION_SCHEMA)

    def knowledge_base(self) -> KnowledgeBase:
        """Category triples over the *hypernym* vocabulary.

        For every leaf concept and each of its surface forms, the KB holds
        ``(form, category, hypernym_form)`` triples — e.g.
        ``(parka, category, clothes)``.  Labels intentionally include forms
        the RDBMS never uses, so exact joins under-match.
        """
        kb = KnowledgeBase("kb")
        assert self.thesaurus is not None
        for hypernym in self.thesaurus.hypernyms:
            category = hypernym.canonical
            for child_name in hypernym.children:
                child = self.thesaurus[child_name]
                for form in child.forms:
                    kb.add(form, "category", category)
                kb.add(child.canonical, "subclass_of", category)
        return kb

    def image_store(self) -> ImageStore:
        """Customer images: 1-4 latent objects, capture dates in range."""
        rng = make_rng(derive_seed(self.seed, "images"))
        lo = date_to_int(self.start_date)
        hi = date_to_int(self.end_date)
        store = ImageStore("images")
        for image_id in range(self.n_images):
            count = int(rng.integers(1, 5))
            picks = rng.choice(len(self._leaf_names), size=count,
                               replace=True)
            objects = tuple(self._leaf_names[int(i)] for i in picks)
            store.add(SyntheticImage(
                image_id=image_id,
                date_taken=int(rng.integers(lo, hi)),
                true_objects=objects,
            ))
        return store

    # ------------------------------------------------------------------
    def register_into(self, catalog, detection_model=None,
                      detect: bool = True) -> None:
        """Materialize all sources into ``catalog``.

        ``images.detections`` (the model-derived view) is registered only
        when ``detect=True``; benchmarks that want to measure
        pushdown-before-inference call ``image_store().detect_table``
        themselves.
        """
        catalog.register("products", self.products(), replace=True)
        catalog.register("users", self.users(), replace=True)
        catalog.register("transactions", self.transactions(), replace=True)
        kb = self.knowledge_base()
        catalog.register("kb.category", kb.table("category"), replace=True)
        catalog.register("kb.triples", kb.table("triples"), replace=True)
        store = self.image_store()
        catalog.register("images.metadata", store.table("metadata"),
                         replace=True)
        if detect:
            from repro.polystore.image_store import ObjectDetectionModel

            model = detection_model or ObjectDetectionModel(
                thesaurus=self.thesaurus, seed=derive_seed(self.seed, "det"))
            catalog.register("images.detections",
                             store.detect_table(model), replace=True)
