"""Dirty-label workload for the Figure-3 consolidation experiment.

Draws clean labels (concept canonical names), then dirties them with a
controllable mix of synonym swaps, misspellings, and case/spacing noise,
keeping the ground-truth concept of every emitted string so consolidation
quality is measurable as pairwise precision/recall/F1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.utils.rng import derive_seed, make_rng

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class DirtyLabelWorkload:
    """Generator of (dirty_label, true_concept) pairs."""

    n: int = 500
    synonym_rate: float = 0.45
    misspell_rate: float = 0.2
    noise_rate: float = 0.1
    seed: int = 59
    thesaurus: Thesaurus | None = None

    def __post_init__(self):
        self.thesaurus = self.thesaurus or default_thesaurus()
        if self.synonym_rate + self.misspell_rate + self.noise_rate > 1.0:
            raise ValueError("dirtiness rates must sum to <= 1")

    def generate(self) -> tuple[list[str], dict[str, str]]:
        """Returns (labels, truth) where truth maps label -> concept name.

        When a misspelling collides with an existing clean label the clean
        mapping wins (collisions are astronomically unlikely with the
        default alphabet sizes, but determinism matters).
        """
        assert self.thesaurus is not None
        rng = make_rng(derive_seed(self.seed, "labels"))
        leaves = self.thesaurus.leaves
        labels: list[str] = []
        truth: dict[str, str] = {}
        for _ in range(self.n):
            concept = leaves[int(rng.integers(len(leaves)))]
            roll = float(rng.uniform())
            if roll < self.synonym_rate:
                form = concept.forms[int(rng.integers(len(concept.forms)))]
            elif roll < self.synonym_rate + self.misspell_rate:
                base = concept.forms[int(rng.integers(len(concept.forms)))]
                form = self._misspell(base, rng)
            elif roll < (self.synonym_rate + self.misspell_rate
                         + self.noise_rate):
                base = concept.forms[int(rng.integers(len(concept.forms)))]
                form = self._case_noise(base, rng)
            else:
                form = concept.canonical
            labels.append(form)
            truth.setdefault(form, concept.name)
        return labels, truth

    @staticmethod
    def _misspell(word: str, rng) -> str:
        """One random edit: substitution, deletion, or transposition."""
        if len(word) < 4:
            return word
        letters = list(word)
        position = int(rng.integers(1, len(letters) - 1))
        operation = int(rng.integers(3))
        if operation == 0:
            letters[position] = _ALPHABET[int(rng.integers(26))]
        elif operation == 1:
            del letters[position]
        else:
            letters[position], letters[position - 1] = (
                letters[position - 1], letters[position])
        return "".join(letters)

    @staticmethod
    def _case_noise(word: str, rng) -> str:
        """Casing / spacing variation (normalization-level dirt)."""
        choice = int(rng.integers(3))
        if choice == 0:
            return word.upper()
        if choice == 1:
            return word.title()
        return f" {word} "
