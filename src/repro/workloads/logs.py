"""Log-analysis workload: paraphrased event messages for SemanticGroupBy.

System logs are the paper's canonical "context-rich string" source: the
same event surfaces under many phrasings ("connection timed out", "conn
timeout to peer", ...).  Semantic group-by clusters them without a rule
base, which is the log-clustering example application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.rng import derive_seed, make_rng

#: Event templates: category -> paraphrase surface forms.  Paraphrases are
#: built from the shared head noun so the embedding model (trained on
#: general vocabulary) clusters them by the dominant token context.
EVENT_TEMPLATES: dict[str, list[str]] = {
    "timeout": [
        "connection timeout",
        "connection timed out",
        "timeout waiting for connection",
        "request timeout",
    ],
    "disk": [
        "disk full",
        "disk capacity exceeded",
        "no space left on disk",
        "disk quota exceeded",
    ],
    "auth": [
        "authentication failed",
        "authentication error",
        "failed authentication attempt",
        "invalid authentication token",
    ],
    "memory": [
        "out of memory",
        "memory allocation failed",
        "memory limit exceeded",
        "insufficient memory",
    ],
}

_LEVELS = ["ERROR", "WARN", "INFO"]


def log_thesaurus():
    """Default thesaurus extended with one concept per log event category.

    The paper's point about Foundation Models (§III) is that a general
    model gets *specialized* to the task at hand; for log analytics that
    means a representation model whose vocabulary covers the event
    phrases.  Registering this model makes semantic group-by cluster the
    paraphrases exactly.
    """
    from repro.embeddings.thesaurus import Concept, default_thesaurus

    thesaurus = default_thesaurus()
    for category, variants in EVENT_TEMPLATES.items():
        thesaurus.add(Concept(f"log_{category}", tuple(variants)))
    thesaurus.validate()
    return thesaurus


def build_log_model(seed: int = 7, name: str = "log-model"):
    """A pretrained model specialized for the log-event domain."""
    from repro.embeddings.pretrained import build_pretrained_model

    return build_pretrained_model(thesaurus=log_thesaurus(), seed=seed,
                                  name=name)

_SCHEMA = Schema([
    Field("ts", DataType.INT64),
    Field("level", DataType.STRING),
    Field("message", DataType.STRING),
    Field("true_category", DataType.STRING),
])


@dataclass
class LogWorkload:
    """Generates a log table with known event categories."""

    n: int = 400
    seed: int = 67

    def generate(self) -> Table:
        rng = make_rng(derive_seed(self.seed, "logs"))
        categories = sorted(EVENT_TEMPLATES)
        rows = []
        timestamp = 1_600_000_000
        for _ in range(self.n):
            timestamp += int(rng.integers(1, 30))
            category = categories[int(rng.integers(len(categories)))]
            variants = EVENT_TEMPLATES[category]
            rows.append({
                "ts": timestamp,
                "level": _LEVELS[int(rng.integers(len(_LEVELS)))],
                "message": variants[int(rng.integers(len(variants)))],
                "true_category": category,
            })
        return Table.from_rows(rows, _SCHEMA)
