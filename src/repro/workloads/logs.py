"""Log-analysis workload: paraphrased event messages for SemanticGroupBy.

System logs are the paper's canonical "context-rich string" source: the
same event surfaces under many phrasings ("connection timed out", "conn
timeout to peer", ...).  Semantic group-by clusters them without a rule
base, which is the log-clustering example application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.rng import derive_seed, make_rng

#: Event templates: category -> paraphrase surface forms.  Paraphrases are
#: built from the shared head noun so the embedding model (trained on
#: general vocabulary) clusters them by the dominant token context.
EVENT_TEMPLATES: dict[str, list[str]] = {
    "timeout": [
        "connection timeout",
        "connection timed out",
        "timeout waiting for connection",
        "request timeout",
    ],
    "disk": [
        "disk full",
        "disk capacity exceeded",
        "no space left on disk",
        "disk quota exceeded",
    ],
    "auth": [
        "authentication failed",
        "authentication error",
        "failed authentication attempt",
        "invalid authentication token",
    ],
    "memory": [
        "out of memory",
        "memory allocation failed",
        "memory limit exceeded",
        "insufficient memory",
    ],
}

_LEVELS = ["ERROR", "WARN", "INFO"]


def log_thesaurus():
    """Default thesaurus extended with one concept per log event category.

    The paper's point about Foundation Models (§III) is that a general
    model gets *specialized* to the task at hand; for log analytics that
    means a representation model whose vocabulary covers the event
    phrases.  Registering this model makes semantic group-by cluster the
    paraphrases exactly.
    """
    from repro.embeddings.thesaurus import Concept, default_thesaurus

    thesaurus = default_thesaurus()
    for category, variants in EVENT_TEMPLATES.items():
        thesaurus.add(Concept(f"log_{category}", tuple(variants)))
    thesaurus.validate()
    return thesaurus


def build_log_model(seed: int = 7, name: str = "log-model"):
    """A pretrained model specialized for the log-event domain."""
    from repro.embeddings.pretrained import build_pretrained_model

    return build_pretrained_model(thesaurus=log_thesaurus(), seed=seed,
                                  name=name)

_SCHEMA = Schema([
    Field("ts", DataType.INT64),
    Field("level", DataType.STRING),
    Field("message", DataType.STRING),
    Field("true_category", DataType.STRING),
])


def _log_rows(rng, n: int, start_ts: int) -> tuple[list[dict], int]:
    """``n`` deterministic log rows from ``rng``; returns (rows, last ts)."""
    categories = sorted(EVENT_TEMPLATES)
    rows = []
    timestamp = start_ts
    for _ in range(n):
        timestamp += int(rng.integers(1, 30))
        category = categories[int(rng.integers(len(categories)))]
        variants = EVENT_TEMPLATES[category]
        rows.append({
            "ts": timestamp,
            "level": _LEVELS[int(rng.integers(len(_LEVELS)))],
            "message": variants[int(rng.integers(len(variants)))],
            "true_category": category,
        })
    return rows, timestamp


@dataclass
class LogWorkload:
    """Generates a log table with known event categories."""

    n: int = 400
    seed: int = 67

    def generate(self) -> Table:
        rng = make_rng(derive_seed(self.seed, "logs"))
        rows, _ = _log_rows(rng, self.n, 1_600_000_000)
        return Table.from_rows(rows, _SCHEMA)


@dataclass
class StreamingLogSource:
    """A log stream for the incremental-ingest workload: one initial
    table plus deterministic append batches continuing the same clock.

    Drives the paper's "continuous semantic analytics" setting: the
    engine keeps answering semantic group-by / top-k queries over
    ``logs`` while batches arrive through
    :meth:`~repro.engine.session.Session.append`.  Determinism contract:
    ``initial()`` and every batch draw from one seeded stream in order,
    so ``Table.concat([initial, batch_0 .. batch_k])`` is byte-equal to
    a fresh ``LogWorkload``-style generation of the same prefix —
    which is exactly what the append-vs-rebuild parity gates compare
    against.
    """

    initial_rows: int = 400
    batch_rows: int = 50
    seed: int = 67

    def __post_init__(self) -> None:
        self._rng = make_rng(derive_seed(self.seed, "log-stream"))
        self._timestamp = 1_600_000_000
        self._emitted = False

    def initial(self) -> Table:
        """The table to register before streaming starts (call once)."""
        if self._emitted:
            raise RuntimeError("initial() must be the stream's first draw")
        self._emitted = True
        rows, self._timestamp = _log_rows(self._rng, self.initial_rows,
                                          self._timestamp)
        return Table.from_rows(rows, _SCHEMA)

    def next_batch(self, rows: int | None = None) -> Table:
        """The next append batch (timestamps continue monotonically)."""
        if not self._emitted:
            raise RuntimeError("draw initial() before streaming batches")
        batch, self._timestamp = _log_rows(self._rng,
                                           rows or self.batch_rows,
                                           self._timestamp)
        return Table.from_rows(batch, _SCHEMA)

    def batches(self, count: int):
        """Yield ``count`` consecutive append batches."""
        for _ in range(count):
            yield self.next_batch()
