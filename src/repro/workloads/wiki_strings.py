"""Figure-4 workload: two arrays of strings with a 1%-selectivity filter.

Substitutes for "two arrays of 10k strings taken randomly from the
Wikipedia dataset".  Each side mixes thesaurus surface forms (which
produce >= 0.9 cosine matches across sides) with filler vocabulary (which
does not), plus a numeric ``views`` column whose predicate
``views >= cutoff`` has exactly the requested selectivity — the filter the
ladder pushes down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.pretrained import FILLER_WORDS
from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.rng import derive_seed, make_rng

_SCHEMA = Schema([
    Field("sid", DataType.INT64),
    Field("text", DataType.STRING),
    Field("views", DataType.INT64),
])


@dataclass
class WikiStringWorkload:
    """Generator for the Figure-4 semantic-similarity-join input."""

    n: int = 10_000
    concept_fraction: float = 0.5
    selectivity: float = 0.01
    seed: int = 23
    thesaurus: Thesaurus | None = None
    #: With ``unique_texts`` every row gets a distinct suffix token —
    #: free-text-like columns where NDV == row count (used by the
    #: inference-heavy Figure-5 workload).
    unique_texts: bool = False

    def __post_init__(self):
        self.thesaurus = self.thesaurus or default_thesaurus()

    def side(self, which: str) -> Table:
        """One input relation (``"left"`` or ``"right"``)."""
        rng = make_rng(derive_seed(self.seed, "side", which))
        forms = self.thesaurus.all_forms()
        texts: list[str] = []
        for row in range(self.n):
            if rng.uniform() < self.concept_fraction:
                text = forms[int(rng.integers(len(forms)))]
            else:
                text = FILLER_WORDS[int(rng.integers(len(FILLER_WORDS)))]
            if self.unique_texts:
                filler = FILLER_WORDS[int(rng.integers(len(FILLER_WORDS)))]
                text = f"{filler} {text} r{row}"
            texts.append(text)
        # views: uniform ints; predicate views >= cutoff keeps ~selectivity
        views = rng.integers(0, 1_000_000, size=self.n)
        return Table(_SCHEMA, {
            "sid": np.arange(self.n, dtype=np.int64),
            "text": np.asarray(texts, dtype=object),
            "views": views.astype(np.int64),
        })

    @property
    def views_cutoff(self) -> int:
        """Cutoff making ``views >= cutoff`` pass ~``selectivity`` rows."""
        return int((1.0 - self.selectivity) * 1_000_000)

    def pair(self) -> tuple[Table, Table]:
        return self.side("left"), self.side("right")
