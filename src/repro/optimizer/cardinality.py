"""Cardinality estimation across relational and semantic operators.

Classic System-R style estimates for relational nodes (column statistics,
NDV-based join sizes) extended with *sampling-based* estimates for
semantic operators — the paper points at fast sampling (ref [28]) as the
practical answer to "increasingly difficult cost and cardinality
estimation" (§VI).  Sampling embeds a bounded number of actual column
values through the model and measures the match fraction directly.
"""

from __future__ import annotations

import numpy as np

from repro.relational.expressions import (
    And,
    ColumnRef,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.relational.pipeline import PipelineNode
from repro.storage.catalog import Catalog
from repro.storage.statistics import ColumnStats
from repro.utils.rng import make_rng

#: Fallback selectivity when nothing better is known (System R's 1/3).
DEFAULT_SELECTIVITY = 1.0 / 3.0

_FLIPPED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<",
                ">=": "<="}


def _column_literal(predicate: Compare) -> tuple[ColumnRef | None,
                                                 Literal | None]:
    """Normalize ``col OP lit`` / ``lit OP col`` to (column, literal).

    Returns the predicate re-oriented so the column is on the left; the
    caller must use the possibly-flipped operator via ``_oriented_op``.
    """
    if isinstance(predicate.left, ColumnRef) and isinstance(
            predicate.right, Literal):
        return predicate.left, predicate.right
    if isinstance(predicate.left, Literal) and isinstance(
            predicate.right, ColumnRef):
        return predicate.right, predicate.left
    return None, None


def _oriented_op(predicate: Compare) -> str:
    """Comparison operator as seen with the column on the left side."""
    if isinstance(predicate.left, Literal) and isinstance(
            predicate.right, ColumnRef):
        return _FLIPPED_OPS[predicate.op]
    return predicate.op
#: Fallback match probability for semantic predicates.
DEFAULT_SEMANTIC_SELECTIVITY = 0.05
#: Values sampled per semantic estimate.
SAMPLE_SIZE = 64


class CardinalityEstimator:
    """Estimates output row counts of logical plans."""

    def __init__(self, catalog: Catalog, models=None, sample_size: int = SAMPLE_SIZE,
                 seed: int = 97, execution_context=None):
        self.catalog = catalog
        self.models = models
        self.sample_size = sample_size
        self.seed = seed
        #: When set, sampling embeds through the session's shared
        #: arena-backed caches instead of the bare model: sample values
        #: interned by any earlier statement (or by execution itself)
        #: make re-planning a statement family arena-hot.  Embeddings
        #: are identical either way, so estimates do not change.
        self.execution_context = execution_context
        self._semantic_cache: dict[tuple, float] = {}

    def _embed_sample(self, model_name: str, values: list[str]):
        """(matrix, vector_of) for sample values under ``model_name``."""
        if self.execution_context is not None:
            from repro.semantic.lowering import cache_for

            cache = cache_for(self.execution_context, model_name)
            return cache.matrix(values), cache.vector
        model = self.models.get(model_name)
        return model.embed_batch(values), model.embed

    # ------------------------------------------------------------------
    def estimate(self, plan: LogicalPlan) -> float:
        """Estimated number of output rows of ``plan``."""
        if isinstance(plan, ScanNode):
            return float(self.catalog.stats(plan.table_name).row_count)
        if isinstance(plan, FilterNode):
            child = self.estimate(plan.child)
            return child * self.selectivity(plan.predicate, plan.child)
        if isinstance(plan, (ProjectNode, SortNode, SemanticGroupByNode)):
            return self.estimate(plan.children[0])
        if isinstance(plan, LimitNode):
            return min(self.estimate(plan.child), float(plan.count))
        if isinstance(plan, UnionNode):
            return sum(self.estimate(child) for child in plan.children)
        if isinstance(plan, AggregateNode):
            return self._estimate_aggregate(plan)
        if isinstance(plan, JoinNode):
            return self._estimate_join(plan)
        if isinstance(plan, SemanticFilterNode):
            child = self.estimate(plan.child)
            return child * self.semantic_filter_selectivity(plan)
        if isinstance(plan, SemanticJoinNode):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            return max(left * right * self.semantic_join_selectivity(plan),
                       0.0)
        if isinstance(plan, SemanticSemiFilterNode):
            # prune-only upper bound: the DIP probe filter passes at
            # most its input, and the pass already gated on the build
            # side being tiny — estimate as the child (exactly what the
            # generic passthrough below yielded) until sampled probe
            # selectivities prove worth modeling.
            return self.estimate(plan.child)
        if isinstance(plan, PipelineNode):
            # stage nodes keep their pre-fusion child pointers, so the
            # outermost stage estimates exactly as the unfused chain did
            return self.estimate(plan.stages[-1])
        return float(self.estimate(plan.children[0])) if plan.children else 1.0

    # ------------------------------------------------------------------
    # Relational selectivities
    # ------------------------------------------------------------------
    def selectivity(self, predicate: Expr, input_plan: LogicalPlan) -> float:
        """Selectivity of a boolean expression against a subtree."""
        if isinstance(predicate, And):
            return (self.selectivity(predicate.left, input_plan)
                    * self.selectivity(predicate.right, input_plan))
        if isinstance(predicate, Or):
            s1 = self.selectivity(predicate.left, input_plan)
            s2 = self.selectivity(predicate.right, input_plan)
            return min(1.0, s1 + s2 - s1 * s2)
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.operand, input_plan)
        if isinstance(predicate, Compare):
            return self._compare_selectivity(predicate, input_plan)
        if isinstance(predicate, InList):
            stats = self._column_stats_for(predicate.operand, input_plan)
            if stats and stats.distinct:
                return min(1.0, len(predicate.values) / stats.distinct)
            return DEFAULT_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _compare_selectivity(self, predicate: Compare,
                             input_plan: LogicalPlan) -> float:
        column, literal = _column_literal(predicate)
        if column is None or literal is None:
            return DEFAULT_SELECTIVITY
        stats = self._stats_of_column(column.name, input_plan)
        if stats is None:
            return DEFAULT_SELECTIVITY
        value = literal.scalar()
        op = _oriented_op(predicate)
        if op == "=":
            return stats.selectivity_eq()
        if op == "!=":
            return 1.0 - stats.selectivity_eq()
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return DEFAULT_SELECTIVITY
        value = float(value)
        if op in (">", ">="):
            return stats.selectivity_range(value, None)
        if op in ("<", "<="):
            return stats.selectivity_range(None, value)
        return DEFAULT_SELECTIVITY

    def _column_stats_for(self, expr: Expr,
                          input_plan: LogicalPlan) -> ColumnStats | None:
        if isinstance(expr, ColumnRef):
            return self._stats_of_column(expr.name, input_plan)
        return None

    def _stats_of_column(self, name: str,
                         input_plan: LogicalPlan) -> ColumnStats | None:
        for scan in input_plan.walk():
            if not isinstance(scan, ScanNode):
                continue
            stats = self.catalog.stats(scan.table_name)
            qualifier = scan.qualifier
            for column_name, column_stats in stats.columns.items():
                qualified = (f"{qualifier}.{column_name}" if qualifier
                             else column_name)
                if qualified == name or qualified.endswith("." + name) or \
                        column_name == name:
                    return column_stats
        return None

    # ------------------------------------------------------------------
    # Joins / aggregates
    # ------------------------------------------------------------------
    def _estimate_join(self, plan: JoinNode) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.join_type == JoinType.CROSS or not plan.left_keys:
            base = left * right
            if plan.extra_predicate is not None:
                base *= DEFAULT_SELECTIVITY
            return base
        denominator = 1.0
        for left_key, right_key in zip(plan.left_keys, plan.right_keys):
            left_stats = self._stats_of_column(left_key, plan.left)
            right_stats = self._stats_of_column(right_key, plan.right)
            ndv_left = left_stats.distinct if left_stats else 0
            ndv_right = right_stats.distinct if right_stats else 0
            denominator *= max(ndv_left, ndv_right, 1)
        size = left * right / denominator
        if plan.join_type in (JoinType.SEMI, JoinType.ANTI):
            matched = min(left, size)
            return matched if plan.join_type == JoinType.SEMI else left - matched
        if plan.join_type == JoinType.LEFT:
            return max(size, left)
        return size

    def _estimate_aggregate(self, plan: AggregateNode) -> float:
        child = self.estimate(plan.child)
        if not plan.group_keys:
            return 1.0
        groups = 1.0
        for key in plan.group_keys:
            stats = self._stats_of_column(key, plan.child)
            groups *= stats.distinct if stats and stats.distinct else 10.0
        return min(child, groups)

    # ------------------------------------------------------------------
    # Semantic selectivities (sampling-based)
    # ------------------------------------------------------------------
    def semantic_filter_selectivity(self, plan: SemanticFilterNode) -> float:
        """Match fraction of a semantic filter, estimated by sampling."""
        key = ("filter", plan.model_name, plan.column, plan.probe,
               round(plan.threshold, 6))
        if key in self._semantic_cache:
            return self._semantic_cache[key]
        values = self._sample_column(plan.column, plan.child)
        result = DEFAULT_SEMANTIC_SELECTIVITY
        if values and self.models is not None:
            matrix, vector_of = self._embed_sample(plan.model_name,
                                                   values)
            probe = vector_of(plan.probe)
            result = float(np.mean((matrix @ probe) >= plan.threshold))
        self._semantic_cache[key] = result
        return result

    def semantic_join_selectivity(self, plan: SemanticJoinNode) -> float:
        """Pair-match probability of a semantic join, by pair sampling."""
        key = ("join", plan.model_name, plan.left_column, plan.right_column,
               round(plan.threshold, 6))
        if key in self._semantic_cache:
            return self._semantic_cache[key]
        left_values = self._sample_column(plan.left_column, plan.left)
        right_values = self._sample_column(plan.right_column, plan.right)
        result = DEFAULT_SEMANTIC_SELECTIVITY
        if left_values and right_values and self.models is not None:
            left_matrix, _ = self._embed_sample(plan.model_name,
                                                left_values)
            right_matrix, _ = self._embed_sample(plan.model_name,
                                                 right_values)
            similarity = left_matrix @ right_matrix.T
            result = float(np.mean(similarity >= plan.threshold))
        self._semantic_cache[key] = result
        return result

    def column_ndv(self, column: str, plan: LogicalPlan,
                   default: float = 100.0) -> float:
        """Distinct-value estimate for a column under ``plan``."""
        stats = self._stats_of_column(column, plan)
        if stats is not None and stats.distinct > 0:
            return float(stats.distinct)
        return default

    def _sample_column(self, column: str, plan: LogicalPlan) -> list[str]:
        """Sample raw values of ``column`` from the scan beneath ``plan``."""
        for scan in plan.walk():
            if not isinstance(scan, ScanNode):
                continue
            if column not in scan.schema:
                try:
                    scan.schema.index_of(column)
                except Exception:
                    continue
            table = self.catalog.get(scan.table_name)
            qualified = table.qualified(scan.qualifier) if scan.qualifier \
                else table
            try:
                values = qualified.column(column)
            except Exception:
                continue
            non_null = [v for v in values if v is not None]
            if not non_null:
                return []
            rng = make_rng(self.seed)
            if len(non_null) <= self.sample_size:
                return list(non_null)
            picks = rng.choice(len(non_null), size=self.sample_size,
                               replace=False)
            return [non_null[int(i)] for i in picks]
        return []
