"""Operator traits exposed to the optimizer and the hardware planner.

Paper §IV: "we need to express some properties of context-rich analysis
operators ... include high-level cost information, such as the effect on
the input/output cardinality"; §V: "encapsulate such operators in a
UDF-like manner while exposing details such as compute requirements,
amenability to parallelizing the input, and memory and data transfer
requirements to the optimizer component."

``traits_of`` maps every plan node to an :class:`OperatorTraits` record the
cost model and the device-placement optimizer consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SortNode,
    UnionNode,
)


@dataclass(frozen=True)
class OperatorTraits:
    """Optimizer-visible characteristics of an operator."""

    #: "relational" or "model" — model operators can run on accelerators.
    compute_class: str
    #: Relative arithmetic intensity (flops per input row, abstract units).
    compute_intensity: float
    #: Whether the operator's input can be partitioned across workers.
    parallel_amenable: bool
    #: Whether the operator must materialize its input (pipeline breaker).
    pipeline_breaker: bool
    #: Bytes of model state that must ship to the executing device.
    model_state_bytes: int
    #: True when output cardinality can exceed input cardinality.
    expanding: bool


_RELATIONAL_CHEAP = OperatorTraits(
    compute_class="relational", compute_intensity=1.0,
    parallel_amenable=True, pipeline_breaker=False, model_state_bytes=0,
    expanding=False,
)

#: Approximate serialized size of the synthetic pretrained model
#: (vocab + subword buckets at dim=100, float32).
_EMBEDDING_MODEL_BYTES = 8_000_000


def traits_of(node: LogicalPlan) -> OperatorTraits:
    """Traits record for one plan node."""
    if isinstance(node, (ScanNode, FilterNode, ProjectNode, LimitNode,
                         UnionNode)):
        return _RELATIONAL_CHEAP
    if isinstance(node, SortNode):
        return OperatorTraits("relational", 4.0, True, True, 0, False)
    if isinstance(node, AggregateNode):
        return OperatorTraits("relational", 3.0, True, True, 0, False)
    if isinstance(node, JoinNode):
        return OperatorTraits("relational", 5.0, True, True, 0, True)
    if isinstance(node, SemanticFilterNode):
        return OperatorTraits("model", 120.0, True, False,
                              _EMBEDDING_MODEL_BYTES, False)
    if isinstance(node, SemanticJoinNode):
        return OperatorTraits("model", 400.0, True, True,
                              _EMBEDDING_MODEL_BYTES, True)
    if isinstance(node, SemanticGroupByNode):
        return OperatorTraits("model", 250.0, True, True,
                              _EMBEDDING_MODEL_BYTES, False)
    return _RELATIONAL_CHEAP
