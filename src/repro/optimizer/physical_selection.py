"""Cost-based physical selection.

Annotates plan nodes with physical hints the lowering honours — most
importantly the semantic join's access path (blocked GEMM vs parallel
scale-up vs an ANN index), the §V "index-based access for similarity
search should be accounted for in the cost-based optimization" decision.
"""

from __future__ import annotations

from repro.optimizer.cost import CostModel
from repro.relational.logical import JoinNode, LogicalPlan, SemanticJoinNode

#: Access paths the selector chooses between (ladder kernels excluded:
#: nested_loop / prefetched exist to measure the unoptimized baseline).
CANDIDATE_METHODS = (
    "blocked",
    "parallel",
    "index:lsh",
    "index:ivf",
    "index:hnsw",
    "index:brute",
)


class PhysicalSelector:
    """Chooses physical strategies by comparing modeled costs."""

    name = "physical_selection"

    def __init__(self, cost_model: CostModel,
                 methods: tuple[str, ...] = CANDIDATE_METHODS):
        self.cost_model = cost_model
        self.methods = methods
        self.decisions: list[tuple[str, str]] = []

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        for node in plan.walk():
            if isinstance(node, SemanticJoinNode):
                self._select_semantic_join(node)
            elif isinstance(node, JoinNode):
                node.hints["algorithm"] = ("hash" if node.left_keys
                                           else "nested_loop")
        return plan

    def _select_semantic_join(self, node: SemanticJoinNode) -> None:
        scored = [
            (self.cost_model.semantic_join_cost(node, method).total, method)
            for method in self.methods
        ]
        scored.sort()
        chosen = scored[0][1]
        node.hints["method"] = chosen
        self.decisions.append((node.label(), chosen))
