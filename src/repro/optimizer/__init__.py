"""Holistic query optimizer across relational and semantic operators.

Paper §IV/§V: expose model-assisted operators — their schemas, cardinality
effects, and cost characteristics — to one rule- and cost-based optimizer
so classic lessons (filter pushdown, join ordering, access-path selection)
apply to context-rich plans unchanged.

Pipeline (see :class:`~repro.optimizer.optimizer.Optimizer`):

1. rewrite rules to fixpoint (pushdowns, filter ordering, merges),
2. join ordering (DP over the commutative inner-join subtrees),
3. data-induced predicates (derive probe-side filters from build sides),
4. physical selection (join algorithm, semantic access path) via the cost
   model + cardinality estimation (with sampling for semantic
   selectivities, ref [28]).
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import Cost, CostModel, CostParams
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.properties import OperatorTraits, traits_of
from repro.optimizer.rules import (
    MergeFilters,
    OrderFilterChain,
    PushFilterIntoJoin,
    PushFilterThroughSemanticJoin,
    PruneColumns,
    RewriteRule,
    DEFAULT_RULES,
)

__all__ = [
    "CardinalityEstimator",
    "Cost",
    "CostModel",
    "CostParams",
    "Optimizer",
    "OptimizerConfig",
    "OperatorTraits",
    "traits_of",
    "MergeFilters",
    "OrderFilterChain",
    "PushFilterIntoJoin",
    "PushFilterThroughSemanticJoin",
    "PruneColumns",
    "RewriteRule",
    "DEFAULT_RULES",
]
