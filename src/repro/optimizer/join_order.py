"""Join ordering: dynamic programming over commutative inner-join trees.

Contiguous trees of inner equi-joins are flattened into a relation set
plus a predicate set, then re-assembled bottom-up (DPsize): the cheapest
plan for every relation subset is memoized, preferring connected joins
over cross products.  Falls back to a greedy heuristic beyond
``dp_relation_limit`` relations.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.relational.logical import JoinNode, JoinType, LogicalPlan

#: A flattened equi-join predicate: (left_key, right_key).
JoinPredicate = tuple[str, str]


class JoinOrderOptimizer:
    """Reorders inner equi-join trees by estimated cost."""

    name = "join_order"

    def __init__(self, estimator: CardinalityEstimator, cost_model: CostModel,
                 dp_relation_limit: int = 10):
        self.estimator = estimator
        self.cost_model = cost_model
        self.dp_relation_limit = dp_relation_limit
        self.reordered = 0

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        if _is_reorderable_join(plan):
            relations, predicates = _flatten(plan)
            relations = [self.run(r) for r in relations]
            if len(relations) > 2:
                ordered = self._order(relations, predicates)
                if ordered is not None:
                    self.reordered += 1
                    return ordered
            return self._rebuild_left_deep(relations, predicates)
        children = tuple(self.run(child) for child in plan.children)
        if children != plan.children:
            plan = plan.with_children(children)
        return plan

    # ------------------------------------------------------------------
    def _order(self, relations: list[LogicalPlan],
               predicates: list[JoinPredicate]) -> LogicalPlan | None:
        if len(relations) > self.dp_relation_limit:
            return self._greedy(relations, predicates)
        return self._dp(relations, predicates)

    def _dp(self, relations: list[LogicalPlan],
            predicates: list[JoinPredicate]) -> LogicalPlan | None:
        n = len(relations)
        best: dict[frozenset, tuple[float, LogicalPlan]] = {}
        for index, relation in enumerate(relations):
            best[frozenset([index])] = (
                self.cost_model.cost(relation).total, relation)
        for size in range(2, n + 1):
            for subset in combinations(range(n), size):
                subset_key = frozenset(subset)
                candidates: list[tuple[float, LogicalPlan]] = []
                cross_candidates: list[tuple[float, LogicalPlan]] = []
                for split_size in range(1, size):
                    for left_part in combinations(subset, split_size):
                        if subset[0] not in left_part:
                            continue  # canonical split avoids duplicates
                        left_key = frozenset(left_part)
                        right_key = subset_key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        left_plan = best[left_key][1]
                        right_plan = best[right_key][1]
                        join = _join_with_predicates(left_plan, right_plan,
                                                     predicates)
                        bucket = (candidates if join.left_keys
                                  else cross_candidates)
                        bucket.append((self.cost_model.cost(join).total,
                                       join))
                pool = candidates or cross_candidates
                if not pool:
                    return None
                best[subset_key] = min(pool, key=lambda item: item[0])
        return best[frozenset(range(n))][1]

    def _greedy(self, relations: list[LogicalPlan],
                predicates: list[JoinPredicate]) -> LogicalPlan:
        remaining = list(relations)
        remaining.sort(key=lambda r: self.estimator.estimate(r))
        current = remaining.pop(0)
        while remaining:
            scored = []
            for index, relation in enumerate(remaining):
                join = _join_with_predicates(current, relation, predicates)
                connected = bool(join.left_keys)
                scored.append((not connected,
                               self.cost_model.cost(join).total, index, join))
            scored.sort(key=lambda item: (item[0], item[1]))
            _, _, index, join = scored[0]
            current = join
            remaining.pop(index)
        return current

    def _rebuild_left_deep(self, relations: list[LogicalPlan],
                           predicates: list[JoinPredicate]) -> LogicalPlan:
        if not relations:
            raise OptimizerError("empty relation list")
        current = relations[0]
        for relation in relations[1:]:
            current = _join_with_predicates(current, relation, predicates)
        return current


def _is_reorderable_join(plan: LogicalPlan) -> bool:
    return (isinstance(plan, JoinNode)
            and plan.join_type == JoinType.INNER
            and bool(plan.left_keys)
            and plan.extra_predicate is None)


def _flatten(plan: LogicalPlan) -> tuple[list[LogicalPlan],
                                         list[JoinPredicate]]:
    if _is_reorderable_join(plan):
        assert isinstance(plan, JoinNode)
        left_rel, left_pred = _flatten(plan.left)
        right_rel, right_pred = _flatten(plan.right)
        own = list(zip(plan.left_keys, plan.right_keys))
        return left_rel + right_rel, left_pred + right_pred + own
    return [plan], []


def _resolves(schema, name: str) -> bool:
    try:
        schema.index_of(name)
        return True
    except Exception:
        return False


def _join_with_predicates(left: LogicalPlan, right: LogicalPlan,
                          predicates: list[JoinPredicate]) -> JoinNode:
    """Join two subplans using every applicable flattened predicate."""
    left_keys: list[str] = []
    right_keys: list[str] = []
    for key_a, key_b in predicates:
        if _resolves(left.schema, key_a) and _resolves(right.schema, key_b):
            left_keys.append(key_a)
            right_keys.append(key_b)
        elif _resolves(left.schema, key_b) and _resolves(right.schema, key_a):
            left_keys.append(key_b)
            right_keys.append(key_a)
    if left_keys:
        return JoinNode(left, right, JoinType.INNER, left_keys, right_keys)
    return JoinNode(left, right, JoinType.CROSS)
