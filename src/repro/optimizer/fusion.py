"""Pipeline fusion: group maximal fusible chains into PipelineNodes.

Runs as the **final** optimizer stage, after physical selection, so every
other pass (pushdown, pruning, join order, DIP, access-path choice) sees
only the classic node types and the fused stages carry their final
hints.  The pass walks the plan top-down and greedily collects maximal
``Filter``/``Project``/``Limit`` chains — ``Scan -> Filter -> Project ->
Limit`` straight-line plans, the post-filter chains above semantic
filter/top-k nodes, and the pre-filter chains below them (reached when
the barrier's own subtree is rewritten).  Joins, aggregates, sorts,
unions, and semantic operators are barriers: they end a chain and are
recursed into.

A chain fuses only when every stage can be compiled soundly:

- filter predicates and projection expressions must be
  :func:`~repro.hardware.jit.jit_supported` (no ``Func``/UDF calls — the
  interpreter owns those);
- every predicate, and every non-``Literal`` projection item, must
  reference at least one column — a column-free expression evaluates to
  a scalar where the interpreter broadcasts an array, so the kernel
  would produce a 0-d mask / mis-shaped output;
- a ``Limit`` joins the chain only when no already-collected ``Filter``
  sits *above* it (a filter applied after a limit cannot commute with
  slicing the fused output); the limit instead starts its own chain
  below.

Eligible chains still interpret unless the cost model votes to compile
(``mode="auto"``): :meth:`CostModel.should_fuse` charges the full
compile cost against the interpreted chain cost, so small one-shot
queries — and the existing small-fixture test plans — keep their exact
interpreted shape.  ``mode="on"`` fuses every eligible chain (the parity
suites use it), ``mode="off"`` disables the stage.
"""

from __future__ import annotations

from repro.hardware.jit import jit_supported
from repro.optimizer.cost import CostModel
from repro.relational.expressions import Literal
from repro.relational.logical import (
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
)
from repro.relational.pipeline import PipelineNode

FUSION_MODES = ("auto", "on", "off")


def _stage_supported(node: LogicalPlan) -> bool:
    if isinstance(node, FilterNode):
        return jit_supported(node.predicate) and bool(
            node.predicate.columns())
    if isinstance(node, ProjectNode):
        for expr, _alias in node.exprs:
            if not jit_supported(expr):
                return False
            if not isinstance(expr, Literal) and not expr.columns():
                return False
        return True
    return isinstance(node, LimitNode)


class PipelineFusion:
    """The fusion pass; ``fused`` counts pipelines created."""

    def __init__(self, cost_model: CostModel, mode: str = "auto"):
        if mode not in FUSION_MODES:
            raise ValueError(
                f"compiled_pipelines must be one of {FUSION_MODES}, "
                f"got {mode!r}")
        self.cost_model = cost_model
        self.mode = mode
        self.fused = 0

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        if self.mode == "off":
            return plan
        return self._rewrite(plan)

    def _rewrite(self, node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, (FilterNode, ProjectNode, LimitNode)):
            fused = self._try_fuse(node)
            if fused is not None:
                return fused
        children = tuple(self._rewrite(child) for child in node.children)
        return node.with_children(children)

    def _try_fuse(self, root: LogicalPlan) -> PipelineNode | None:
        """Fuse the maximal chain rooted at ``root``, or ``None`` to
        leave the root as a plain operator."""
        chain: list[LogicalPlan] = []     # outermost first
        seen_filter = False
        node = root
        while isinstance(node, (FilterNode, ProjectNode, LimitNode)) \
                and _stage_supported(node):
            if isinstance(node, LimitNode) and seen_filter:
                break                      # filter-after-limit: unsound
            if isinstance(node, FilterNode):
                seen_filter = True
            chain.append(node)
            node = node.children[0]
        if not any(isinstance(stage, (FilterNode, ProjectNode))
                   for stage in chain):
            return None                    # nothing to compile
        stages = list(reversed(chain))     # innermost first
        if self.mode == "auto" \
                and not self.cost_model.should_fuse(stages):
            return None
        if isinstance(node, ScanNode):
            stages.insert(0, node)
            source = None
        else:
            source = self._rewrite(node)
        self.fused += 1
        return PipelineNode(tuple(stages), source)
