"""Cost model spanning relational and model-based operators.

Abstract cost units approximate relative wall time.  The decisive ratios —
interpreted-Python pair cost vs vectorized pair cost vs model-inference
cost — mirror the orders-of-magnitude gaps the paper's Figure 4 measures,
so the optimizer's choices (pushdown first, vectorized or index-based
access for semantic joins, parallel scale-up past a size threshold) land
where the measurements land.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.relational.pipeline import PipelineNode


@dataclass(frozen=True)
class CostParams:
    """Tunable per-unit costs (abstract units, relative wall time)."""

    scan_row: float = 1.0
    predicate_row: float = 1.0
    project_row: float = 1.0
    hash_build_row: float = 2.0
    hash_probe_row: float = 1.5
    nested_loop_pair: float = 2.0
    sort_row_log: float = 1.5
    aggregate_row: float = 2.5
    #: Model inference per distinct embedded string.
    embed_token: float = 200.0
    #: Per-pair similarity in interpreted Python (per vector dimension).
    pair_python_dim: float = 1.0
    #: Per-pair similarity through one vectorized kernel (per dimension).
    pair_vector_dim: float = 0.01
    #: Extra per-pair penalty when embeddings are re-fetched per pair.
    refetch_pair: float = 400.0
    #: Thread-pool setup cost and parallel efficiency for scale-up.
    parallel_setup: float = 5_000.0
    parallel_efficiency: float = 0.7
    #: Worker count the "parallel" access path is costed with.  ``None``
    #: means "unspecified": sessions fill it with their resolved
    #: ``parallelism`` (CPU-derived by default) so the optimizer's
    #: parallel-vs-blocked choice sees the worker count ``join_parallel``
    #: will actually run with; bare CostParams() uses fall back to the
    #: standalone modeling default below.  An explicit integer is always
    #: honored.
    workers: int | None = None
    #: Embedding dimensionality assumed by the pair costs.
    dim: int = 100
    #: One-shot cost of compiling a fused pipeline kernel (source gen +
    #: ``compile()``; numba specialization is charged the same — its
    #: extra latency is hidden behind the call-time python fallback).
    pipeline_compile: float = 2_000.0
    #: Per-row cost of a fused chain relative to interpreted execution:
    #: one boolean-index pass and no intermediate Tables vs. one
    #: materialization per operator.  The fused-pipeline benchmark
    #: measures >2x, so 0.4 is deliberately conservative.
    fused_row_fraction: float = 0.4


#: Worker count assumed when CostParams.workers is left unspecified and
#: no session filled it in (standalone cost-model studies).
DEFAULT_MODELED_WORKERS = 4


@dataclass
class Cost:
    """Cost split by resource class; ``total`` drives decisions."""

    cpu: float = 0.0
    model: float = 0.0

    @property
    def total(self) -> float:
        return self.cpu + self.model

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.cpu + other.cpu, self.model + other.model)


def semantic_join_method_cost(
    params: CostParams,
    unique_left: float,
    unique_right: float,
    method: str,
) -> Cost:
    """Cost of matching ``unique_left`` x ``unique_right`` key sets."""
    pairs = max(unique_left * unique_right, 1.0)
    dim = params.dim
    embed = (unique_left + unique_right) * params.embed_token
    if method == "nested_loop":
        # re-embeds per pair and dots in interpreted Python
        cpu = pairs * (dim * params.pair_python_dim + params.refetch_pair)
        return Cost(cpu=cpu, model=pairs * 2 * params.embed_token)
    if method == "prefetched":
        cpu = pairs * dim * params.pair_python_dim * 0.1  # np.dot per pair
        return Cost(cpu=cpu, model=embed)
    if method == "rowkernel":
        cpu = (pairs * dim * params.pair_vector_dim
               + unique_left * 50.0)  # per-row kernel dispatch
        return Cost(cpu=cpu, model=embed)
    if method == "blocked":
        cpu = pairs * dim * params.pair_vector_dim
        return Cost(cpu=cpu, model=embed)
    if method == "quantized":
        # int8 candidate pass (NumPy integer matmul lacks BLAS, ~2.5x the
        # float GEMM) + exact re-rank; its payoff is the 4x memory
        # footprint, which the transfer planner sees, not raw speed
        cpu = pairs * dim * params.pair_vector_dim * 2.5
        return Cost(cpu=cpu, model=embed)
    if method == "parallel":
        if params.workers is None:
            workers = DEFAULT_MODELED_WORKERS
        elif params.workers <= 0:
            # same convention as the kernels: non-positive = CPU-derived
            from repro.utils.parallel import resolve_workers

            workers = resolve_workers(params.workers)
        else:
            workers = params.workers
        cpu = (pairs * dim * params.pair_vector_dim
               / (workers * params.parallel_efficiency)
               + params.parallel_setup)
        return Cost(cpu=cpu, model=embed)
    if method.startswith("index:"):
        kind = method.split(":", 1)[1]
        return _index_cost(params, unique_left, unique_right, kind, embed)
    # unknown method: prohibitively expensive so selection avoids it
    return Cost(cpu=float("inf"))


def _index_cost(params: CostParams, n_queries: float, n_indexed: float,
                kind: str, embed: float) -> Cost:
    dim = params.dim
    vec = params.pair_vector_dim
    log_n = float(np.log2(max(n_indexed, 2.0)))
    if kind == "brute":
        build = n_indexed * dim * vec * 0.1
        probe = n_queries * n_indexed * dim * vec + n_queries * 50.0
    elif kind == "lsh":
        build = n_indexed * dim * vec * 96.0  # tables * bits projections
        candidate_fraction = 0.02
        probe = n_queries * (dim * vec * 96.0 + 200.0
                             + candidate_fraction * n_indexed * dim * vec)
    elif kind == "ivf":
        build = n_indexed * dim * vec * 25.0 * 16.0  # k-means iterations
        probe = n_queries * (16.0 * dim * vec
                             + (3.0 / 16.0) * n_indexed * dim * vec + 100.0)
    elif kind == "hnsw":
        build = n_indexed * log_n * dim * vec * 64.0 + n_indexed * 500.0
        probe = n_queries * (log_n * 32.0 * dim * vec + 300.0)
    else:
        return Cost(cpu=float("inf"))
    return Cost(cpu=build + probe, model=embed)


class CostModel:
    """Recursive plan costing on top of the cardinality estimator."""

    def __init__(self, estimator: CardinalityEstimator,
                 params: CostParams | None = None):
        self.estimator = estimator
        self.params = params or CostParams()

    def cost(self, plan: LogicalPlan) -> Cost:
        """Total cost of executing ``plan`` (children included)."""
        children = Cost()
        for child in plan.children:
            children = children + self.cost(child)
        return children + self.node_cost(plan)

    def estimate_total(self, plan: LogicalPlan) -> float:
        """Scalar plan-cost estimate.

        This is the number the serving layer's admission control
        classifies on (interactive vs. heavy lane): the optimizer
        writes it into ``OptimizationReport.estimated_cost``, the
        session stores it in each plan-cache entry, and a cache hit is
        admitted without re-costing anything.
        """
        return self.cost(plan).total

    def interpreted_chain_cost(self, stages) -> float:
        """CPU cost of running a fusible Filter/Project chain operator-
        at-a-time (stage nodes keep their pre-fusion child pointers, so
        per-stage cardinalities estimate exactly as in the unfused plan).
        """
        total = 0.0
        for stage in stages:
            if isinstance(stage, (FilterNode, ProjectNode)):
                total += self.node_cost(stage).total
        return total

    def should_fuse(self, stages) -> bool:
        """The classic JIT trade-off: fuse iff compile cost plus the
        fused per-row cost undercuts interpreting the chain.

        One-shot cost accounting — compile is charged in full even
        though the kernel cache would amortize it, so a tiny query
        (e.g. 10 rows) always stays interpreted.
        """
        interpreted = self.interpreted_chain_cost(stages)
        fused = (self.params.pipeline_compile
                 + interpreted * self.params.fused_row_fraction)
        return fused < interpreted

    def node_cost(self, plan: LogicalPlan) -> Cost:
        """Cost of the node itself, given estimated input cardinalities."""
        params = self.params
        if isinstance(plan, PipelineNode):
            # Scan/Limit stages cost what they always cost; the fused
            # Filter/Project chain runs at ``fused_row_fraction`` of its
            # interpreted cost.  Compile cost is deliberately absent:
            # by the time a PipelineNode exists, ``should_fuse`` already
            # charged it, and admission control should classify on
            # steady-state (kernel-cache-hit) cost.
            other = sum((self.node_cost(stage) for stage in plan.stages
                         if not isinstance(stage, (FilterNode,
                                                   ProjectNode))),
                        Cost())
            fused = (self.interpreted_chain_cost(plan.stages)
                     * params.fused_row_fraction)
            return other + Cost(cpu=fused)
        if isinstance(plan, ScanNode):
            return Cost(cpu=self.estimator.estimate(plan) * params.scan_row)
        if isinstance(plan, FilterNode):
            from repro.relational.udf import expression_udf_cost

            rows = self.estimator.estimate(plan.child)
            per_row = params.predicate_row + expression_udf_cost(
                plan.predicate)
            return Cost(cpu=rows * per_row)
        if isinstance(plan, ProjectNode):
            from repro.relational.udf import expression_udf_cost

            rows = self.estimator.estimate(plan.child)
            per_row = (params.project_row * max(len(plan.exprs), 1)
                       + sum(expression_udf_cost(e)
                             for e, _ in plan.exprs))
            return Cost(cpu=rows * per_row)
        if isinstance(plan, LimitNode):
            return Cost(cpu=float(plan.count))
        if isinstance(plan, UnionNode):
            return Cost(cpu=self.estimator.estimate(plan))
        if isinstance(plan, SortNode):
            rows = max(self.estimator.estimate(plan.child), 1.0)
            return Cost(cpu=rows * float(np.log2(rows + 1))
                        * params.sort_row_log)
        if isinstance(plan, AggregateNode):
            rows = self.estimator.estimate(plan.child)
            return Cost(cpu=rows * params.aggregate_row)
        if isinstance(plan, JoinNode):
            left = self.estimator.estimate(plan.left)
            right = self.estimator.estimate(plan.right)
            if plan.left_keys:
                return Cost(cpu=right * params.hash_build_row
                            + left * params.hash_probe_row)
            return Cost(cpu=left * right * params.nested_loop_pair)
        if isinstance(plan, SemanticFilterNode):
            rows = self.estimator.estimate(plan.child)
            ndv = self.estimator.column_ndv(plan.column, plan.child,
                                            default=rows)
            unique = min(rows, ndv)
            return Cost(cpu=rows * params.predicate_row,
                        model=unique * params.embed_token)
        if isinstance(plan, SemanticSemiFilterNode):
            # DIP-induced probe filter: the column's distinct values
            # embed once, then score against each probe vector; the
            # mask applies per input row.
            rows = self.estimator.estimate(plan.child)
            ndv = self.estimator.column_ndv(plan.column, plan.child,
                                            default=rows)
            unique = min(rows, ndv)
            pairs = unique * max(len(plan.probes), 1)
            return Cost(cpu=rows * params.predicate_row
                        + pairs * params.dim * params.pair_vector_dim,
                        model=unique * params.embed_token)
        if isinstance(plan, SemanticJoinNode):
            return self.semantic_join_cost(plan)
        if isinstance(plan, SemanticGroupByNode):
            rows = self.estimator.estimate(plan.child)
            ndv = self.estimator.column_ndv(plan.column, plan.child,
                                            default=rows)
            unique = min(rows, ndv)
            pairs = unique * np.sqrt(max(unique, 1.0))  # leaders << unique
            return Cost(cpu=pairs * params.dim * params.pair_vector_dim,
                        model=unique * params.embed_token)
        raise PlanError(
            f"no cost model for plan node {type(plan).__name__}; "
            f"add an arm here and to analysis/dispatch_registry.py")

    def semantic_join_cost(self, plan: SemanticJoinNode,
                           method: str | None = None) -> Cost:
        """Cost of one semantic join under a given (or hinted) method."""
        method = method or plan.hints.get("method", "blocked")
        left_rows = self.estimator.estimate(plan.left)
        right_rows = self.estimator.estimate(plan.right)
        unique_left = min(left_rows, self.estimator.column_ndv(
            plan.left_column, plan.left, default=left_rows))
        unique_right = min(right_rows, self.estimator.column_ndv(
            plan.right_column, plan.right, default=right_rows))
        matching = semantic_join_method_cost(self.params, unique_left,
                                             unique_right, method)
        # expansion of unique matches back to row pairs
        output = self.estimator.estimate(plan)
        return matching + Cost(cpu=output * 0.5)
