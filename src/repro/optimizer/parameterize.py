"""Plan parameterization: literal sites, masked fingerprints, rebinding.

Generic-plan promotion (``engine/plan_cache.py``) needs three facts
about an optimized plan, all provided here:

1. :func:`plan_fingerprint` — a deterministic structural digest with
   literal *values* masked but everything else (node types, schemas,
   join keys, physical hints, pipeline stages) included.  Two
   same-family statements whose optimizations agree on this digest
   chose the same physical plan; the family's literals demonstrably do
   not steer the optimizer.
2. :func:`literal_sites` — the plan's literal values in a fixed
   traversal order.  The binder and rewrite suite are deterministic,
   so for two statements of one canonical family the i-th site of one
   plan corresponds to the i-th site of the other.
3. :func:`bind_parameters` — a clone of the plan with new values at
   those sites (physical hints preserved), which is how a promoted
   generic plan is served for literals it has never seen.

Everything here **refuses** rather than guesses:
:func:`unparameterizable_reason` rejects plans with DIP-derived
predicates (their probe lists are literal-*derived*, not literal
slots) and approximate semantic-join access paths (method choice may
legitimately vary results, so a generic plan must never pin one), and
the plan cache additionally requires an exact one-to-one value match
between sites and canonical parameters before promoting.
"""

from __future__ import annotations

import hashlib
from typing import Callable, cast

from repro.errors import OptimizerError
from repro.relational.expressions import (
    AggExpr,
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.relational.pipeline import PipelineNode
from repro.reuse.analysis import REUSE_SAFE_METHODS

__all__ = [
    "ParameterizeError",
    "bind_parameters",
    "coerce_to_sites",
    "literal_sites",
    "parameter_order",
    "plan_fingerprint",
    "unparameterizable_reason",
]


class ParameterizeError(OptimizerError):
    """A plan cannot be parameterized (callers treat this as refusal)."""


def _norm(value: object) -> object:
    """Value identity for site<->parameter matching.

    The SQL canonicalizer stores every numeric literal as ``float``
    (``NumberLit.value``) while the binder re-types integrals to
    ``int`` in the plan, so matching must be numeric-value based; the
    site's original type is restored by :func:`coerce_to_sites` before
    binding.  ``bool`` is excluded (it is an ``int`` subtype but never
    a numeric parameter).
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return value


# ---------------------------------------------------------------------------
# literal-site walk (one walker for collect and rebind, so the two can
# never disagree on ordering)
# ---------------------------------------------------------------------------
class _Rebinder:
    """Visits literal sites in fixed pre-order; optionally replaces them.

    With ``values=None`` it only collects (``bind_parameters`` passes
    the replacement list).  ``self.sites`` afterwards holds the visited
    values in order.
    """

    def __init__(self, values: list[object] | None = None) -> None:
        self.sites: list[object] = []
        self._values = values

    def _visit(self, value: object) -> object:
        index = len(self.sites)
        self.sites.append(value)
        if self._values is None:
            return value
        if index >= len(self._values):
            raise ParameterizeError(
                f"plan has more literal sites than values ({index + 1} > "
                f"{len(self._values)})")
        return self._values[index]

    # -- expressions ----------------------------------------------------
    def expr(self, node: Expr) -> Expr:
        if isinstance(node, Literal):
            return Literal(self._visit(node.value))
        if isinstance(node, ColumnRef):
            return node
        if isinstance(node, Compare):
            return Compare(node.op, self.expr(node.left),
                           self.expr(node.right))
        if isinstance(node, And):
            return And(self.expr(node.left), self.expr(node.right))
        if isinstance(node, Or):
            return Or(self.expr(node.left), self.expr(node.right))
        if isinstance(node, Not):
            return Not(self.expr(node.operand))
        if isinstance(node, Arith):
            return Arith(node.op, self.expr(node.left),
                         self.expr(node.right))
        if isinstance(node, InList):
            return InList(self.expr(node.operand),
                          [self._visit(value) for value in node.values])
        if isinstance(node, Func):
            return Func(node.name,
                        tuple(self.expr(arg) for arg in node.args))
        raise ParameterizeError(
            f"cannot parameterize expression {type(node).__name__}")

    def agg(self, agg: AggExpr) -> AggExpr:
        if agg.operand is None:
            return agg
        return AggExpr(agg.func, self.expr(agg.operand), agg.alias)

    # -- plan nodes -----------------------------------------------------
    def plan(self, node: LogicalPlan) -> LogicalPlan:
        rebuilt = self._rebuild(node)
        rebuilt.hints = dict(node.hints)
        return rebuilt

    def _rebuild(self, node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, PipelineNode):
            # stages carry the fused predicates/projections; the stale
            # pre-fusion child pointers inside each stage are kept (the
            # pipeline contract routes consumers through .children)
            stages = tuple(self._stage(stage) for stage in node.stages)
            source = self.plan(node.children[0]) if node.children else None
            return PipelineNode(stages, source)
        if isinstance(node, ScanNode):
            # cloned (via _clone) so a served generic plan never shares
            # a mutable hints dict with the cached template
            return node._clone(())
        if isinstance(node, FilterNode):
            predicate = self.expr(node.predicate)
            return FilterNode(self.plan(node.child), predicate)
        if isinstance(node, ProjectNode):
            exprs = [(self.expr(expr), alias)
                     for expr, alias in node.exprs]
            return ProjectNode(self.plan(node.child), exprs)
        if isinstance(node, JoinNode):
            extra = (self.expr(node.extra_predicate)
                     if node.extra_predicate is not None else None)
            return JoinNode(self.plan(node.left), self.plan(node.right),
                            node.join_type, list(node.left_keys),
                            list(node.right_keys), extra)
        if isinstance(node, AggregateNode):
            aggregates = [self.agg(agg) for agg in node.aggregates]
            return AggregateNode(self.plan(node.child),
                                 list(node.group_keys), aggregates)
        if isinstance(node, SortNode):
            return SortNode(self.plan(node.child), list(node.keys))
        if isinstance(node, LimitNode):
            count = cast(int, self._visit(node.count))
            return LimitNode(self.plan(node.child), count)
        if isinstance(node, UnionNode):
            return UnionNode([self.plan(child) for child in node.children])
        if isinstance(node, SemanticFilterNode):
            probe = cast(str, self._visit(node.probe))
            threshold = cast(float, self._visit(node.threshold))
            return SemanticFilterNode(self.plan(node.child), node.column,
                                      probe, node.model_name, threshold,
                                      score_alias=node.score_alias,
                                      mode=node.mode)
        if isinstance(node, SemanticJoinNode):
            threshold = cast(float, self._visit(node.threshold))
            top_k = (cast(int, self._visit(node.top_k))
                     if node.top_k is not None else None)
            return SemanticJoinNode(self.plan(node.left),
                                    self.plan(node.right),
                                    node.left_column, node.right_column,
                                    node.model_name, threshold,
                                    score_alias=node.score_alias,
                                    top_k=top_k, aux_alias=node.aux_alias)
        if isinstance(node, SemanticGroupByNode):
            threshold = cast(float, self._visit(node.threshold))
            return SemanticGroupByNode(
                self.plan(node.child), node.column, node.model_name,
                threshold, cluster_alias=node.cluster_alias,
                representative_alias=node.representative_alias)
        if isinstance(node, SemanticSemiFilterNode):
            # DIP-derived: probes are literal-*derived*, not literal
            # slots — a generic plan must never carry them
            raise ParameterizeError(
                "data-induced predicates are literal-derived")
        raise ParameterizeError(
            f"cannot parameterize plan node {type(node).__name__}")

    def _stage(self, stage: LogicalPlan) -> LogicalPlan:
        """A pipeline stage, exprs rebound but children left alone."""
        if isinstance(stage, ScanNode):
            return stage
        if isinstance(stage, FilterNode):
            return FilterNode(stage.child, self.expr(stage.predicate))
        if isinstance(stage, LimitNode):
            return LimitNode(stage.child,
                             cast(int, self._visit(stage.count)))
        if isinstance(stage, ProjectNode):
            return ProjectNode(stage.child,
                               [(self.expr(expr), alias)
                                for expr, alias in stage.exprs])
        raise ParameterizeError(
            f"cannot parameterize pipeline stage {type(stage).__name__}")


def literal_sites(plan: LogicalPlan) -> list[object]:
    """The plan's literal values in fixed traversal order.

    Raises :class:`ParameterizeError` for plans that cannot carry
    parameters (DIP nodes, unknown node types).
    """
    walker = _Rebinder()
    walker.plan(plan)
    return walker.sites


def bind_parameters(plan: LogicalPlan, values: list[object]) -> LogicalPlan:
    """A clone of ``plan`` with ``values`` at its literal sites.

    ``values`` must cover every site exactly (same walk as
    :func:`literal_sites`); physical hints are preserved on every
    rebuilt node, so the clone lowers to the same operators.
    """
    walker = _Rebinder(values)
    rebound = walker.plan(plan)
    if len(walker.sites) != len(values):
        raise ParameterizeError(
            f"plan has {len(walker.sites)} literal sites, "
            f"got {len(values)} values")
    return rebound


def parameter_order(sites: list[object],
                    parameters: tuple[object, ...]) -> list[int] | None:
    """Map site index -> canonical parameter index, or ``None``.

    The mapping must be provably unique: every parameter value (typed)
    must be distinct and match exactly one site.  Duplicate values make
    the correspondence ambiguous from one exemplar, so the family is
    refused — a conservative no, never a guessed yes.
    """
    if len(sites) != len(parameters):
        return None
    slots: dict[object, int] = {}
    for index, value in enumerate(parameters):
        key = _norm(value)
        if key in slots:
            return None  # duplicate value: mapping not provable
        slots[key] = index
    order: list[int] = []
    for value in sites:
        index = slots.get(_norm(value))
        if index is None:
            return None  # site not a canonical parameter (folded literal)
        order.append(index)
    if len(set(order)) != len(order):
        return None
    return order


def coerce_to_sites(template_sites: list[object], order: list[int],
                    parameters: tuple[object, ...]) -> list[object] | None:
    """Values for :func:`bind_parameters`, re-typed to match the sites.

    ``order`` maps site index -> parameter index (from
    :func:`parameter_order` on the exemplar statement).  Each incoming
    parameter is coerced to the template site's type — the SQL layer
    hands every number over as ``float``, while the plan may hold
    ``int`` sites (limits, integer comparisons).  Returns ``None``
    when a value cannot represent the site's type exactly (e.g. a
    fractional float at an ``int`` site), which callers treat as a
    forced cache miss, never an error.
    """
    if len(order) != len(template_sites):
        return None
    values: list[object] = []
    for site, param_index in zip(template_sites, order):
        if param_index >= len(parameters):
            return None
        value = coerce_value(site, parameters[param_index])
        if value is _NO_COERCION:
            return None
        values.append(value)
    return values


_NO_COERCION = object()


def coerce_value(site: object, value: object) -> object:
    """``value`` re-typed like ``site``, or ``_NO_COERCION``."""
    if isinstance(site, bool) or isinstance(value, bool):
        return value if type(value) is type(site) else _NO_COERCION
    if isinstance(site, int) and isinstance(value, float):
        return int(value) if value.is_integer() else _NO_COERCION
    if isinstance(site, float) and isinstance(value, int):
        return float(value)
    if type(value) is not type(site):
        return _NO_COERCION
    return value


# ---------------------------------------------------------------------------
# masked structural fingerprint
# ---------------------------------------------------------------------------
def plan_fingerprint(plan: LogicalPlan) -> str:
    """Literal-masked structural digest of an optimized plan.

    Covers node types, schemas, join structure, aggregate/sort/project
    specs, semantic operator wiring, physical ``hints``, and pipeline
    stage layout; masks only literal *values*.  Statements of one
    canonical family optimize to equal fingerprints exactly when their
    literals did not steer any optimizer decision.
    """
    parts: list[str] = []
    _fingerprint_node(plan, parts, 0)
    return hashlib.blake2b("\n".join(parts).encode("utf-8"),
                           digest_size=16).hexdigest()


def _fingerprint_node(node: LogicalPlan, parts: list[str],
                      depth: int) -> None:
    label: Callable[[str], None] = lambda text: parts.append(
        f"{'  ' * depth}{text}")
    hints = ",".join(f"{k}={node.hints[k]!r}" for k in sorted(node.hints))
    schema = ",".join(f"{f.name}:{f.dtype.name}"
                      for f in node.schema.fields)
    if isinstance(node, PipelineNode):
        stages = "|".join(_stage_fingerprint(stage)
                          for stage in node.stages)
        label(f"Pipeline[{stages}] hints({hints}) schema({schema})")
    elif isinstance(node, FilterNode):
        label(f"Filter[{_mask(node.predicate)}] hints({hints})")
    elif isinstance(node, ProjectNode):
        items = "; ".join(f"{_mask(expr)} AS {alias}"
                          for expr, alias in node.exprs)
        label(f"Project[{items}] hints({hints})")
    elif isinstance(node, JoinNode):
        extra = (_mask(node.extra_predicate)
                 if node.extra_predicate is not None else "-")
        label(f"Join[{node.join_type.value} on={node.left_keys}="
              f"{node.right_keys} extra={extra}] hints({hints})")
    elif isinstance(node, SemanticFilterNode):
        label(f"SemanticFilter[{node.column} mode={node.mode} "
              f"model={node.model_name} probe=? threshold=?] "
              f"hints({hints})")
    elif isinstance(node, SemanticSemiFilterNode):
        label(f"SemanticSemiFilter[{node.column} model={node.model_name} "
              f"probes=<{len(node.probes)}> threshold=?] hints({hints})")
    elif isinstance(node, SemanticJoinNode):
        topk = "?" if node.top_k is not None else "-"
        label(f"SemanticJoin[{node.left_column}~{node.right_column} "
              f"model={node.model_name} threshold=? top_k={topk} "
              f"score={node.score_alias}] hints({hints})")
    elif isinstance(node, SemanticGroupByNode):
        label(f"SemanticGroupBy[{node.column} model={node.model_name} "
              f"threshold=?] hints({hints})")
    elif isinstance(node, AggregateNode):
        aggs = "; ".join(
            f"{agg.func.value}({_mask(agg.operand) if agg.operand else '*'})"
            f" AS {agg.alias}" for agg in node.aggregates)
        label(f"Aggregate[keys={node.group_keys} {aggs}] hints({hints})")
    elif isinstance(node, SortNode):
        label(f"Sort[{node.keys}] hints({hints})")
    elif isinstance(node, LimitNode):
        label(f"Limit[?] hints({hints})")
    elif isinstance(node, ScanNode):
        label(f"Scan[{node.table_name} as {node.qualifier}] "
              f"hints({hints}) schema({schema})")
    else:
        label(f"{type(node).__name__} hints({hints}) schema({schema})")
    for child in node.children:
        _fingerprint_node(child, parts, depth + 1)


def _stage_fingerprint(stage: LogicalPlan) -> str:
    if isinstance(stage, FilterNode):
        return f"filter {_mask(stage.predicate)}"
    if isinstance(stage, ProjectNode):
        return "project " + "; ".join(f"{_mask(expr)} AS {alias}"
                                      for expr, alias in stage.exprs)
    if isinstance(stage, LimitNode):
        return "limit ?"
    if isinstance(stage, ScanNode):
        return f"scan {stage.table_name} as {stage.qualifier}"
    return type(stage).__name__


def _mask(expr: Expr) -> str:
    """Expression rendering with literal values replaced by ``?type``."""
    if isinstance(expr, Literal):
        return f"?{type(expr.value).__name__}"
    if isinstance(expr, ColumnRef):
        return f"col({expr.name})"
    if isinstance(expr, Compare):
        return f"({_mask(expr.left)} {expr.op} {_mask(expr.right)})"
    if isinstance(expr, And):
        return f"({_mask(expr.left)} AND {_mask(expr.right)})"
    if isinstance(expr, Or):
        return f"({_mask(expr.left)} OR {_mask(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {_mask(expr.operand)})"
    if isinstance(expr, Arith):
        return f"({_mask(expr.left)} {expr.op} {_mask(expr.right)})"
    if isinstance(expr, InList):
        masked = ",".join(f"?{type(v).__name__}" for v in expr.values)
        return f"({_mask(expr.operand)} IN [{masked}])"
    if isinstance(expr, Func):
        inner = ", ".join(_mask(arg) for arg in expr.args)
        return f"{expr.name}({inner})"
    raise ParameterizeError(
        f"cannot fingerprint expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# promotion eligibility
# ---------------------------------------------------------------------------
def unparameterizable_reason(plan: LogicalPlan) -> str | None:
    """Why ``plan`` must not back a generic plan, or ``None`` if it may.

    - DIP-derived semi-filters embed values computed *from* this
      statement's literals; new literals would silently reuse them.
    - Approximate semantic-join access paths (outside
      ``REUSE_SAFE_METHODS``) may legitimately change results, so the
      method choice must stay per-literal.
    """
    for node in plan.walk():
        if isinstance(node, SemanticSemiFilterNode):
            return "plan carries data-induced predicates"
        if isinstance(node, (SemanticJoinNode, SemanticFilterNode)):
            method = node.hints.get("method")
            if method is not None and method not in REUSE_SAFE_METHODS:
                return f"approximate access path {method!r}"
        if isinstance(node, PipelineNode):
            for stage in node.stages:
                if isinstance(stage, SemanticSemiFilterNode):
                    return "plan carries data-induced predicates"
    return None
