"""Rule-based logical rewrites.

Each rule is a local transformation tried at every node; the engine runs
the rule set bottom-up to fixpoint.  The rules encode the "decades of
database community research" the paper wants applied to context-rich
plans: filter pushdown through (semantic) joins, predicate reordering
around expensive model operators, projection pruning.

The optimizer runs the suite in three **phases** (see
:data:`DEFAULT_PHASES` and ``docs/optimizer.md``), each to its own
fixpoint:

1. *normalize* — Not/Or normalization exposes conjuncts hidden under
   negations so the pushdown phase can sink them independently;
2. *pushdown* — filter merging plus every pushdown rule (each splits
   conjunctions internally, so parts sink independently and the
   unpushable residue stays put);
3. *breakup* — remaining conjunctive filters are broken into chains
   (``And`` -> stacked single-predicate filters) so costing, EXPLAIN,
   and predicate ordering see one predicate per operator.

:data:`DEFAULT_RULES` remains the flat one-phase suite (what ablation
configs and direct ``rewrite_fixpoint`` callers use); it excludes
:class:`BreakupSelections`, which would ping-pong with
:class:`MergeFilters` inside a single fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
    combine_conjuncts,
    split_conjuncts,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.storage.schema import Schema


@dataclass
class RuleContext:
    """Shared services available to rules."""

    estimator: object | None = None   # CardinalityEstimator
    cost_model: object | None = None  # CostModel
    applied: dict[str, int] = field(default_factory=dict)
    #: Total bottom-up passes executed across every fixpoint this
    #: context was threaded through.
    passes: int = 0
    #: False when any fixpoint ran out of ``max_passes`` while rules
    #: were still firing — the optimizer surfaces this on its report
    #: and the ``optimizer_rewrite_nonconvergence_total`` counter.
    converged: bool = True

    def record(self, rule_name: str) -> None:
        self.applied[rule_name] = self.applied.get(rule_name, 0) + 1


class RewriteRule:
    """Base rewrite rule: return a replacement node, or None."""

    name = "rewrite"

    def apply(self, node: LogicalPlan,
              ctx: RuleContext) -> LogicalPlan | None:
        raise NotImplementedError


def _resolves_in(columns: set[str], schema: Schema) -> bool:
    """True when every referenced column can be resolved in ``schema``."""
    return all(_resolves_one(name, schema) for name in columns)


def _resolves_one(name: str, schema: Schema) -> bool:
    try:
        schema.index_of(name)
    except Exception:
        return False
    return True


#: How a comparison operator flips under NOT.  Only equality flips:
#: ``NOT (a < b)`` is *not* ``a >= b`` for float columns containing
#: NaN (both orderings evaluate False on NaN rows, so the negation and
#: the flipped comparison disagree), while ``=``/``!=`` negate cleanly
#: (``NaN = x`` is False and ``NaN != x`` is True under either spelling).
_NEGATED_COMPARE = {"=": "!=", "!=": "="}


def normalize_predicate(expr: Expr) -> Expr:
    """Not/Or-aware normalization: push negations inward (De Morgan),
    eliminate double negation, and flip negated equalities, so the
    conjuncts hidden under ``NOT (a OR b)`` become visible to
    ``split_conjuncts`` and can sink independently.

    Idempotent by construction: the result contains no ``Not`` above an
    ``And``/``Or``/``Not``/equality, so a second application is the
    identity — which is what makes :class:`NormalizePredicate`
    convergent inside a fixpoint.
    """
    if isinstance(expr, And):
        return And(normalize_predicate(expr.left),
                   normalize_predicate(expr.right))
    if isinstance(expr, Or):
        return Or(normalize_predicate(expr.left),
                  normalize_predicate(expr.right))
    if isinstance(expr, Not):
        inner = expr.operand
        if isinstance(inner, Not):
            return normalize_predicate(inner.operand)
        if isinstance(inner, And):
            return Or(normalize_predicate(Not(inner.left)),
                      normalize_predicate(Not(inner.right)))
        if isinstance(inner, Or):
            return And(normalize_predicate(Not(inner.left)),
                       normalize_predicate(Not(inner.right)))
        if isinstance(inner, Compare) and inner.op in _NEGATED_COMPARE:
            return Compare(_NEGATED_COMPARE[inner.op], inner.left,
                           inner.right)
        return Not(inner)
    # leaves (ColumnRef/Literal/Compare/Arith/InList/Func) are already
    # normal: negations cannot hide conjuncts below them
    return expr


class MergeFilters(RewriteRule):
    """``Filter(Filter(x, p2), p1) -> Filter(x, p1 AND p2)``."""

    name = "merge_filters"

    def apply(self, node, ctx):
        if isinstance(node, FilterNode) and isinstance(node.child, FilterNode):
            merged = And(node.predicate, node.child.predicate)
            return FilterNode(node.child.child, merged)
        return None


class NormalizePredicate(RewriteRule):
    """Rewrite filter predicates to negation normal form.

    ``NOT (a OR b)`` hides two conjuncts the pushdown rules could sink
    to different inputs; after normalization they are ordinary
    ``split_conjuncts`` parts.  See :func:`normalize_predicate` for the
    NaN caveat that keeps inequality flips out of the normalization.
    """

    name = "normalize_predicate"

    def apply(self, node, ctx):
        if not isinstance(node, FilterNode):
            return None
        normalized = normalize_predicate(node.predicate)
        if normalized.same_as(node.predicate):
            return None
        return FilterNode(node.child, normalized)


class BreakupSelections(RewriteRule):
    """``Filter(x, a AND b) -> Filter(Filter(x, b), a)`` (selection
    breakup: one predicate per filter operator).

    Runs in its own phase (:data:`DEFAULT_PHASES`), never in the same
    fixpoint as :class:`MergeFilters` — the pair would ping-pong and
    trip the non-convergence guard.
    """

    name = "breakup_selections"

    def apply(self, node, ctx):
        if not isinstance(node, FilterNode):
            return None
        parts = split_conjuncts(node.predicate)
        if len(parts) < 2:
            return None
        plan = node.child
        for part in reversed(parts):
            plan = FilterNode(plan, part)
        return plan


class PushFilterThroughProject(RewriteRule):
    """Move a filter below a projection, substituting aliases.

    Rename-aware and *partial*: each conjunct is substituted through the
    projection's alias mapping independently, so the parts a renaming
    projection can absorb sink below it while the rest (aliases without
    a child-resolvable substitution, references to computed columns the
    child cannot provide) stay above as the residual filter.
    """

    name = "push_filter_through_project"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, ProjectNode)):
            return None
        project = node.child
        mapping = {alias: expr for expr, alias in project.exprs}
        pushable, residual = [], []
        for part in split_conjuncts(node.predicate):
            try:
                rewritten = substitute(part, mapping)
            except KeyError:
                residual.append(part)
                continue
            if _resolves_in(rewritten.columns(), project.child.schema):
                pushable.append(rewritten)
            else:
                residual.append(part)
        if not pushable:
            return None
        rewritten_plan = ProjectNode(
            FilterNode(project.child, combine_conjuncts(pushable)),
            project.exprs)
        if residual:
            return FilterNode(rewritten_plan, combine_conjuncts(residual))
        return rewritten_plan


class PushFilterIntoJoin(RewriteRule):
    """Split a conjunctive filter above a join and push single-side parts."""

    name = "push_filter_into_join"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, JoinNode)):
            return None
        join = node.child
        if join.join_type not in (JoinType.INNER, JoinType.CROSS):
            return None
        left_parts, right_parts, residual = _split_by_side(
            node.predicate, join.left.schema, join.right.schema)
        if not left_parts and not right_parts:
            return None
        left = join.left
        right = join.right
        if left_parts:
            left = FilterNode(left, combine_conjuncts(left_parts))
        if right_parts:
            right = FilterNode(right, combine_conjuncts(right_parts))
        new_join = join.with_children((left, right))
        if residual:
            return FilterNode(new_join, combine_conjuncts(residual))
        return new_join


class PushFilterThroughSemanticJoin(RewriteRule):
    """The Figure-4 headline rule: single-side predicates sink below a
    semantic join (matching is per-pair, so this is semantics-preserving)."""

    name = "push_filter_through_semantic_join"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, SemanticJoinNode)):
            return None
        join = node.child
        referenced_score = any(
            join.score_alias in part.columns()
            for part in split_conjuncts(node.predicate)
        )
        left_parts, right_parts, residual = _split_by_side(
            node.predicate, join.left.schema, join.right.schema)
        if referenced_score or (not left_parts and not right_parts):
            return None
        left = join.left
        right = join.right
        if left_parts:
            left = FilterNode(left, combine_conjuncts(left_parts))
        if right_parts:
            right = FilterNode(right, combine_conjuncts(right_parts))
        new_join = join.with_children((left, right))
        if residual:
            return FilterNode(new_join, combine_conjuncts(residual))
        return new_join


class PushFilterBelowSemanticFilter(RewriteRule):
    """Run cheap relational filters before expensive model filters."""

    name = "push_filter_below_semantic_filter"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode) and isinstance(
                node.child, (SemanticFilterNode, SemanticSemiFilterNode))):
            return None
        semantic = node.child
        score_alias = getattr(semantic, "score_alias", None)
        if score_alias and score_alias in node.predicate.columns():
            return None
        pushed = FilterNode(semantic.child, node.predicate)
        return semantic.with_children((pushed,))


class PushFilterThroughAggregate(RewriteRule):
    """Push group-key-only predicates below an aggregate.

    A conjunct is pushable only when every column it references resolves
    in the aggregate's *output* schema to a group-key position; it is
    then substituted through the key mapping back to the child's
    canonical column names before it sinks.  The old string-set check
    (predicate columns vs. output key names) pushed output spellings
    into the child unsubstituted — sound only while output key names
    happen to equal child column names, and wrong the moment a key is
    renamed (qualified child fields referenced by an unqualified
    spelling, or a group key flowing through a renaming projection).
    The mapping refuses anything that is not a plain ``ColumnRef``
    target, so future expression-valued keys stay above the aggregate.
    """

    name = "push_filter_through_aggregate"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, AggregateNode)):
            return None
        aggregate = node.child
        if not aggregate.group_keys:
            return None
        pushable, residual = [], []
        for part in split_conjuncts(node.predicate):
            mapping = self._key_mapping(part, aggregate)
            if mapping is None:
                residual.append(part)
                continue
            try:
                pushable.append(substitute(part, mapping))
            except KeyError:
                residual.append(part)
        if not pushable:
            return None
        pushed = FilterNode(aggregate.child, combine_conjuncts(pushable))
        new_aggregate = aggregate.with_children((pushed,))
        if residual:
            return FilterNode(new_aggregate, combine_conjuncts(residual))
        return new_aggregate

    @staticmethod
    def _key_mapping(part, aggregate) -> dict[str, Expr] | None:
        """Referenced column -> child key column, or ``None`` when any
        reference lands outside the group keys (aggregate results,
        unresolvable names, ambiguous spellings)."""
        child_schema = aggregate.child.schema
        mapping: dict[str, Expr] = {}
        for name in part.columns():
            try:
                index = aggregate.schema.index_of(name)
            except Exception:
                return None
            if index >= len(aggregate.group_keys):
                return None  # references an aggregate result
            target = _group_key_expr(aggregate.group_keys[index],
                                     child_schema)
            if not isinstance(target, ColumnRef):
                return None  # expression-valued keys never sink
            mapping[name] = target
        return mapping


class OrderFilterChain(RewriteRule):
    """Cost-based ordering of adjacent semantic filters.

    For ``SF_a(SF_b(x))``, runs the filter with the better
    rank = cost / (1 - selectivity) first (classic predicate ordering).
    """

    name = "order_filter_chain"

    def apply(self, node, ctx):
        if not (isinstance(node, (SemanticFilterNode, SemanticSemiFilterNode))
                and isinstance(node.children[0],
                               (SemanticFilterNode, SemanticSemiFilterNode))):
            return None
        if ctx.estimator is None:
            return None
        inner = node.children[0]
        outer_rank = self._rank(node, ctx)
        inner_rank = self._rank(inner, ctx)
        # Want the lower rank *below* (executed first). Swap when the outer
        # operator should run first.
        if outer_rank >= inner_rank:
            return None
        swapped_outer = node.with_children((inner.children[0],))
        return inner.with_children((swapped_outer,))

    @staticmethod
    def _rank(node, ctx) -> float:
        estimator = ctx.estimator
        if isinstance(node, SemanticFilterNode):
            selectivity = estimator.semantic_filter_selectivity(node)
            cost = 1.0
        else:
            selectivity = min(1.0, 0.1 * len(node.probes))
            cost = float(len(node.probes))
        benefit = max(1.0 - selectivity, 1e-6)
        return cost / benefit


class RemoveTrivialProject(RewriteRule):
    """Drop projections that re-emit the child schema unchanged."""

    name = "remove_trivial_project"

    def apply(self, node, ctx):
        if not isinstance(node, ProjectNode):
            return None
        child_names = node.child.schema.names
        if len(node.exprs) != len(child_names):
            return None
        for (expr, alias), name in zip(node.exprs, child_names):
            if not (isinstance(expr, ColumnRef) and expr.name == name
                    and alias == name):
                return None
        return node.child


DEFAULT_RULES: list[RewriteRule] = [
    MergeFilters(),
    NormalizePredicate(),
    PushFilterThroughProject(),
    PushFilterIntoJoin(),
    PushFilterThroughSemanticJoin(),
    PushFilterBelowSemanticFilter(),
    PushFilterThroughAggregate(),
    OrderFilterChain(),
    RemoveTrivialProject(),
]

#: The optimizer's phased suite: normalize, then merge + push down,
#: then break remaining conjunctions into filter chains.  Each phase is
#: individually convergent; ``BreakupSelections`` and ``MergeFilters``
#: never share a fixpoint.
DEFAULT_PHASES: list[list[RewriteRule]] = [
    [NormalizePredicate()],
    DEFAULT_RULES,
    [BreakupSelections(), OrderFilterChain(), RemoveTrivialProject()],
]


def rewrite_fixpoint(plan: LogicalPlan, rules: list[RewriteRule],
                     ctx: RuleContext | None = None,
                     max_passes: int = 10) -> LogicalPlan:
    """Apply ``rules`` bottom-up repeatedly until no rule fires.

    When ``max_passes`` bottom-up passes are exhausted while rules are
    still firing (a runaway rule pair), ``ctx.converged`` flips to
    False instead of the old silent exit — the optimizer reports it and
    bumps ``optimizer_rewrite_nonconvergence_total``.
    """
    ctx = ctx or RuleContext()
    changed = True
    for _ in range(max_passes):
        plan, changed = _rewrite_once(plan, rules, ctx)
        ctx.passes += 1
        if not changed:
            break
    if changed:
        ctx.converged = False
    return plan


def rewrite_phases(plan: LogicalPlan,
                   phases: list[list[RewriteRule]] | None = None,
                   ctx: RuleContext | None = None,
                   max_passes: int = 10) -> LogicalPlan:
    """Run each phase of ``phases`` (default :data:`DEFAULT_PHASES`) to
    its own fixpoint, in order, sharing one :class:`RuleContext`."""
    ctx = ctx or RuleContext()
    for rules in (phases if phases is not None else DEFAULT_PHASES):
        plan = rewrite_fixpoint(plan, rules, ctx, max_passes=max_passes)
    return plan


def _rewrite_once(plan: LogicalPlan, rules: list[RewriteRule],
                  ctx: RuleContext) -> tuple[LogicalPlan, bool]:
    changed = False
    new_children = []
    for child in plan.children:
        new_child, child_changed = _rewrite_once(child, rules, ctx)
        new_children.append(new_child)
        changed = changed or child_changed
    if changed:
        plan = plan.with_children(tuple(new_children))
    for rule in rules:
        replacement = rule.apply(plan, ctx)
        if replacement is not None:
            ctx.record(rule.name)
            return replacement, True
    return plan, changed


def _split_by_side(predicate: Expr, left_schema: Schema,
                   right_schema: Schema):
    """Partition conjuncts by which join input they reference.

    A conjunct sinks to a side only when *every* column it references
    resolves on that side and *none* resolves on the other: a name
    present in both inputs (``brand`` against ``p.brand``/``k.brand``)
    is ambiguous, and pushing it to whichever side happened to be
    checked first silently picks one meaning and changes results.
    Ambiguous conjuncts stay in the residual, exactly like conjuncts
    spanning both sides.
    """
    left_parts: list[Expr] = []
    right_parts: list[Expr] = []
    residual: list[Expr] = []
    for part in split_conjuncts(predicate):
        columns = part.columns()
        sides = set()
        for name in columns:
            on_left = _resolves_one(name, left_schema)
            on_right = _resolves_one(name, right_schema)
            if on_left and on_right:
                sides.add("ambiguous")
            elif on_left:
                sides.add("left")
            elif on_right:
                sides.add("right")
            else:
                sides.add("unresolved")
        if sides == {"left"}:
            left_parts.append(part)
        elif sides == {"right"}:
            right_parts.append(part)
        else:
            residual.append(part)
    return left_parts, right_parts, residual


def _group_key_expr(key: str, child_schema: Schema) -> Expr:
    """The child-side expression a group key stands for.

    Today group keys are plain column names, so this resolves ``key``
    to its canonical child spelling; when aggregate keys grow
    expression support this is the single place that changes, and
    ``PushFilterThroughAggregate`` already refuses non-``ColumnRef``
    results.
    """
    return ColumnRef(child_schema.names[child_schema.index_of(key)])


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace column references per ``mapping`` (alias -> expression).

    Raises ``KeyError`` when a referenced alias is missing from the
    mapping, signalling the caller that the rewrite is not applicable.
    """
    if isinstance(expr, ColumnRef):
        if expr.name in mapping:
            return mapping[expr.name]
        raise KeyError(expr.name)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Compare):
        return Compare(expr.op, substitute(expr.left, mapping),
                       substitute(expr.right, mapping))
    if isinstance(expr, And):
        return And(substitute(expr.left, mapping),
                   substitute(expr.right, mapping))
    if isinstance(expr, Or):
        return Or(substitute(expr.left, mapping),
                  substitute(expr.right, mapping))
    if isinstance(expr, Not):
        return Not(substitute(expr.operand, mapping))
    if isinstance(expr, Arith):
        return Arith(expr.op, substitute(expr.left, mapping),
                     substitute(expr.right, mapping))
    if isinstance(expr, InList):
        return InList(substitute(expr.operand, mapping), expr.values)
    if isinstance(expr, Func):
        return Func(expr.name,
                    tuple(substitute(a, mapping) for a in expr.args))
    raise KeyError(f"cannot substitute in {type(expr).__name__}")


# ----------------------------------------------------------------------
# Projection pruning (one-shot top-down pass, not a local rule)
# ----------------------------------------------------------------------
class PruneColumns:
    """Insert projections above scans so only required columns flow up."""

    name = "prune_columns"

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        required = set(plan.schema.names)
        return self._rewrite(plan, required)

    def _rewrite(self, node: LogicalPlan, required: set[str]) -> LogicalPlan:
        required = self._canonical(required, node.schema)
        if isinstance(node, ScanNode):
            names = [n for n in node.schema.names if n in required]
            if len(names) == len(node.schema.names) or not names:
                return node
            return ProjectNode(node, [(ColumnRef(n), n) for n in names])
        if isinstance(node, FilterNode):
            child_required = required | self._canonical(
                node.predicate.columns(), node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, ProjectNode):
            child_required: set[str] = set()
            for expr, alias in node.exprs:
                if alias in required:
                    child_required |= expr.columns()
            kept = [(e, a) for e, a in node.exprs if a in required]
            if not kept:
                kept = node.exprs
                child_required = set()
                for expr, _ in node.exprs:
                    child_required |= expr.columns()
            child = self._rewrite(node.child, self._canonical(
                child_required, node.child.schema))
            return ProjectNode(child, kept)
        if isinstance(node, JoinNode):
            return self._rewrite_join(node, required)
        if isinstance(node, SemanticJoinNode):
            left_schema = node.left.schema
            right_schema = node.right.schema
            left_required = {n for n in required if n in left_schema}
            right_required = {n for n in required if n in right_schema}
            left_required |= self._canonical({node.left_column}, left_schema)
            right_required |= self._canonical({node.right_column},
                                              right_schema)
            return node.with_children((
                self._rewrite(node.left, left_required),
                self._rewrite(node.right, right_required),
            ))
        if isinstance(node, (SemanticFilterNode, SemanticSemiFilterNode)):
            child_required = {n for n in required
                              if n in node.child.schema}
            child_required |= self._canonical({node.column},
                                              node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, SemanticGroupByNode):
            child_required = {n for n in required if n in node.child.schema}
            child_required |= self._canonical({node.column},
                                              node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, AggregateNode):
            child_required = self._canonical(set(node.group_keys),
                                             node.child.schema)
            for agg in node.aggregates:
                if agg.operand is not None:
                    child_required |= self._canonical(
                        agg.operand.columns(), node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, SortNode):
            child_required = required | self._canonical(
                {k for k, _ in node.keys}, node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, (LimitNode, UnionNode)):
            children = tuple(self._rewrite(c, set(required))
                             for c in node.children)
            return node.with_children(children)
        return node

    def _rewrite_join(self, node: JoinNode, required: set[str]) -> JoinNode:
        left_schema = node.left.schema
        right_schema = node.right.schema
        left_required = {n for n in required if n in left_schema}
        right_required = {n for n in required if n in right_schema}
        left_required |= self._canonical(set(node.left_keys), left_schema)
        right_required |= self._canonical(set(node.right_keys), right_schema)
        if node.extra_predicate is not None:
            for name in node.extra_predicate.columns():
                if name in left_schema:
                    left_required.add(name)
                elif name in right_schema:
                    right_required.add(name)
        left = self._rewrite(node.left, left_required)
        right = self._rewrite(node.right, right_required)
        return node.with_children((left, right))  # type: ignore[return-value]

    @staticmethod
    def _canonical(names: set[str], schema: Schema) -> set[str]:
        out = set()
        for name in names:
            try:
                out.add(schema.names[schema.index_of(name)])
            except Exception:
                out.add(name)
        return out
