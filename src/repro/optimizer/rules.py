"""Rule-based logical rewrites.

Each rule is a local transformation tried at every node; the engine runs
the rule set bottom-up to fixpoint.  The rules encode the "decades of
database community research" the paper wants applied to context-rich
plans: filter pushdown through (semantic) joins, predicate reordering
around expensive model operators, projection pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
    combine_conjuncts,
    split_conjuncts,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
    UnionNode,
)
from repro.storage.schema import Schema


@dataclass
class RuleContext:
    """Shared services available to rules."""

    estimator: object | None = None   # CardinalityEstimator
    cost_model: object | None = None  # CostModel
    applied: dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str) -> None:
        self.applied[rule_name] = self.applied.get(rule_name, 0) + 1


class RewriteRule:
    """Base rewrite rule: return a replacement node, or None."""

    name = "rewrite"

    def apply(self, node: LogicalPlan,
              ctx: RuleContext) -> LogicalPlan | None:
        raise NotImplementedError


def _resolves_in(columns: set[str], schema: Schema) -> bool:
    """True when every referenced column can be resolved in ``schema``."""
    for name in columns:
        try:
            schema.index_of(name)
        except Exception:
            return False
    return True


class MergeFilters(RewriteRule):
    """``Filter(Filter(x, p2), p1) -> Filter(x, p1 AND p2)``."""

    name = "merge_filters"

    def apply(self, node, ctx):
        if isinstance(node, FilterNode) and isinstance(node.child, FilterNode):
            merged = And(node.predicate, node.child.predicate)
            return FilterNode(node.child.child, merged)
        return None


class PushFilterThroughProject(RewriteRule):
    """Move a filter below a projection, substituting aliases."""

    name = "push_filter_through_project"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, ProjectNode)):
            return None
        project = node.child
        mapping = {alias: expr for expr, alias in project.exprs}
        try:
            rewritten = substitute(node.predicate, mapping)
        except KeyError:
            return None
        if not _resolves_in(rewritten.columns(), project.child.schema):
            return None
        return ProjectNode(FilterNode(project.child, rewritten),
                           project.exprs)


class PushFilterIntoJoin(RewriteRule):
    """Split a conjunctive filter above a join and push single-side parts."""

    name = "push_filter_into_join"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, JoinNode)):
            return None
        join = node.child
        if join.join_type not in (JoinType.INNER, JoinType.CROSS):
            return None
        left_parts, right_parts, residual = _split_by_side(
            node.predicate, join.left.schema, join.right.schema)
        if not left_parts and not right_parts:
            return None
        left = join.left
        right = join.right
        if left_parts:
            left = FilterNode(left, combine_conjuncts(left_parts))
        if right_parts:
            right = FilterNode(right, combine_conjuncts(right_parts))
        new_join = join.with_children((left, right))
        if residual:
            return FilterNode(new_join, combine_conjuncts(residual))
        return new_join


class PushFilterThroughSemanticJoin(RewriteRule):
    """The Figure-4 headline rule: single-side predicates sink below a
    semantic join (matching is per-pair, so this is semantics-preserving)."""

    name = "push_filter_through_semantic_join"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, SemanticJoinNode)):
            return None
        join = node.child
        referenced_score = any(
            join.score_alias in part.columns()
            for part in split_conjuncts(node.predicate)
        )
        left_parts, right_parts, residual = _split_by_side(
            node.predicate, join.left.schema, join.right.schema)
        if referenced_score or (not left_parts and not right_parts):
            return None
        left = join.left
        right = join.right
        if left_parts:
            left = FilterNode(left, combine_conjuncts(left_parts))
        if right_parts:
            right = FilterNode(right, combine_conjuncts(right_parts))
        new_join = join.with_children((left, right))
        if residual:
            return FilterNode(new_join, combine_conjuncts(residual))
        return new_join


class PushFilterBelowSemanticFilter(RewriteRule):
    """Run cheap relational filters before expensive model filters."""

    name = "push_filter_below_semantic_filter"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode) and isinstance(
                node.child, (SemanticFilterNode, SemanticSemiFilterNode))):
            return None
        semantic = node.child
        score_alias = getattr(semantic, "score_alias", None)
        if score_alias and score_alias in node.predicate.columns():
            return None
        pushed = FilterNode(semantic.child, node.predicate)
        return semantic.with_children((pushed,))


class PushFilterThroughAggregate(RewriteRule):
    """Push group-key-only predicates below an aggregate."""

    name = "push_filter_through_aggregate"

    def apply(self, node, ctx):
        if not (isinstance(node, FilterNode)
                and isinstance(node.child, AggregateNode)):
            return None
        aggregate = node.child
        if not aggregate.group_keys:
            return None
        key_fields = set(aggregate.schema.names[:len(aggregate.group_keys)])
        pushable, residual = [], []
        for part in split_conjuncts(node.predicate):
            if part.columns() <= key_fields:
                pushable.append(part)
            else:
                residual.append(part)
        if not pushable:
            return None
        pushed = FilterNode(aggregate.child, combine_conjuncts(pushable))
        new_aggregate = aggregate.with_children((pushed,))
        if residual:
            return FilterNode(new_aggregate, combine_conjuncts(residual))
        return new_aggregate


class OrderFilterChain(RewriteRule):
    """Cost-based ordering of adjacent semantic filters.

    For ``SF_a(SF_b(x))``, runs the filter with the better
    rank = cost / (1 - selectivity) first (classic predicate ordering).
    """

    name = "order_filter_chain"

    def apply(self, node, ctx):
        if not (isinstance(node, (SemanticFilterNode, SemanticSemiFilterNode))
                and isinstance(node.children[0],
                               (SemanticFilterNode, SemanticSemiFilterNode))):
            return None
        if ctx.estimator is None:
            return None
        inner = node.children[0]
        outer_rank = self._rank(node, ctx)
        inner_rank = self._rank(inner, ctx)
        # Want the lower rank *below* (executed first). Swap when the outer
        # operator should run first.
        if outer_rank >= inner_rank:
            return None
        swapped_outer = node.with_children((inner.children[0],))
        return inner.with_children((swapped_outer,))

    @staticmethod
    def _rank(node, ctx) -> float:
        estimator = ctx.estimator
        if isinstance(node, SemanticFilterNode):
            selectivity = estimator.semantic_filter_selectivity(node)
            cost = 1.0
        else:
            selectivity = min(1.0, 0.1 * len(node.probes))
            cost = float(len(node.probes))
        benefit = max(1.0 - selectivity, 1e-6)
        return cost / benefit


class RemoveTrivialProject(RewriteRule):
    """Drop projections that re-emit the child schema unchanged."""

    name = "remove_trivial_project"

    def apply(self, node, ctx):
        if not isinstance(node, ProjectNode):
            return None
        child_names = node.child.schema.names
        if len(node.exprs) != len(child_names):
            return None
        for (expr, alias), name in zip(node.exprs, child_names):
            if not (isinstance(expr, ColumnRef) and expr.name == name
                    and alias == name):
                return None
        return node.child


DEFAULT_RULES: list[RewriteRule] = [
    MergeFilters(),
    PushFilterThroughProject(),
    PushFilterIntoJoin(),
    PushFilterThroughSemanticJoin(),
    PushFilterBelowSemanticFilter(),
    PushFilterThroughAggregate(),
    OrderFilterChain(),
    RemoveTrivialProject(),
]


def rewrite_fixpoint(plan: LogicalPlan, rules: list[RewriteRule],
                     ctx: RuleContext | None = None,
                     max_passes: int = 10) -> LogicalPlan:
    """Apply ``rules`` bottom-up repeatedly until no rule fires."""
    ctx = ctx or RuleContext()
    for _ in range(max_passes):
        plan, changed = _rewrite_once(plan, rules, ctx)
        if not changed:
            break
    return plan


def _rewrite_once(plan: LogicalPlan, rules: list[RewriteRule],
                  ctx: RuleContext) -> tuple[LogicalPlan, bool]:
    changed = False
    new_children = []
    for child in plan.children:
        new_child, child_changed = _rewrite_once(child, rules, ctx)
        new_children.append(new_child)
        changed = changed or child_changed
    if changed:
        plan = plan.with_children(tuple(new_children))
    for rule in rules:
        replacement = rule.apply(plan, ctx)
        if replacement is not None:
            ctx.record(rule.name)
            return replacement, True
    return plan, changed


def _split_by_side(predicate: Expr, left_schema: Schema,
                   right_schema: Schema):
    """Partition conjuncts by which join input they reference."""
    left_parts: list[Expr] = []
    right_parts: list[Expr] = []
    residual: list[Expr] = []
    for part in split_conjuncts(predicate):
        columns = part.columns()
        if columns and _resolves_in(columns, left_schema):
            left_parts.append(part)
        elif columns and _resolves_in(columns, right_schema):
            right_parts.append(part)
        else:
            residual.append(part)
    return left_parts, right_parts, residual


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace column references per ``mapping`` (alias -> expression).

    Raises ``KeyError`` when a referenced alias is missing from the
    mapping, signalling the caller that the rewrite is not applicable.
    """
    if isinstance(expr, ColumnRef):
        if expr.name in mapping:
            return mapping[expr.name]
        raise KeyError(expr.name)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Compare):
        return Compare(expr.op, substitute(expr.left, mapping),
                       substitute(expr.right, mapping))
    if isinstance(expr, And):
        return And(substitute(expr.left, mapping),
                   substitute(expr.right, mapping))
    if isinstance(expr, Or):
        return Or(substitute(expr.left, mapping),
                  substitute(expr.right, mapping))
    if isinstance(expr, Not):
        return Not(substitute(expr.operand, mapping))
    if isinstance(expr, Arith):
        return Arith(expr.op, substitute(expr.left, mapping),
                     substitute(expr.right, mapping))
    if isinstance(expr, InList):
        return InList(substitute(expr.operand, mapping), expr.values)
    if isinstance(expr, Func):
        return Func(expr.name,
                    tuple(substitute(a, mapping) for a in expr.args))
    raise KeyError(f"cannot substitute in {type(expr).__name__}")


# ----------------------------------------------------------------------
# Projection pruning (one-shot top-down pass, not a local rule)
# ----------------------------------------------------------------------
class PruneColumns:
    """Insert projections above scans so only required columns flow up."""

    name = "prune_columns"

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        required = set(plan.schema.names)
        return self._rewrite(plan, required)

    def _rewrite(self, node: LogicalPlan, required: set[str]) -> LogicalPlan:
        required = self._canonical(required, node.schema)
        if isinstance(node, ScanNode):
            names = [n for n in node.schema.names if n in required]
            if len(names) == len(node.schema.names) or not names:
                return node
            return ProjectNode(node, [(ColumnRef(n), n) for n in names])
        if isinstance(node, FilterNode):
            child_required = required | self._canonical(
                node.predicate.columns(), node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, ProjectNode):
            child_required: set[str] = set()
            for expr, alias in node.exprs:
                if alias in required:
                    child_required |= expr.columns()
            kept = [(e, a) for e, a in node.exprs if a in required]
            if not kept:
                kept = node.exprs
                child_required = set()
                for expr, _ in node.exprs:
                    child_required |= expr.columns()
            child = self._rewrite(node.child, self._canonical(
                child_required, node.child.schema))
            return ProjectNode(child, kept)
        if isinstance(node, JoinNode):
            return self._rewrite_join(node, required)
        if isinstance(node, SemanticJoinNode):
            left_schema = node.left.schema
            right_schema = node.right.schema
            left_required = {n for n in required if n in left_schema}
            right_required = {n for n in required if n in right_schema}
            left_required |= self._canonical({node.left_column}, left_schema)
            right_required |= self._canonical({node.right_column},
                                              right_schema)
            return node.with_children((
                self._rewrite(node.left, left_required),
                self._rewrite(node.right, right_required),
            ))
        if isinstance(node, (SemanticFilterNode, SemanticSemiFilterNode)):
            child_required = {n for n in required
                              if n in node.child.schema}
            child_required |= self._canonical({node.column},
                                              node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, SemanticGroupByNode):
            child_required = {n for n in required if n in node.child.schema}
            child_required |= self._canonical({node.column},
                                              node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, AggregateNode):
            child_required = self._canonical(set(node.group_keys),
                                             node.child.schema)
            for agg in node.aggregates:
                if agg.operand is not None:
                    child_required |= self._canonical(
                        agg.operand.columns(), node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, SortNode):
            child_required = required | self._canonical(
                {k for k, _ in node.keys}, node.child.schema)
            return node.with_children(
                (self._rewrite(node.child, child_required),))
        if isinstance(node, (LimitNode, UnionNode)):
            children = tuple(self._rewrite(c, set(required))
                             for c in node.children)
            return node.with_children(children)
        return node

    def _rewrite_join(self, node: JoinNode, required: set[str]) -> JoinNode:
        left_schema = node.left.schema
        right_schema = node.right.schema
        left_required = {n for n in required if n in left_schema}
        right_required = {n for n in required if n in right_schema}
        left_required |= self._canonical(set(node.left_keys), left_schema)
        right_required |= self._canonical(set(node.right_keys), right_schema)
        if node.extra_predicate is not None:
            for name in node.extra_predicate.columns():
                if name in left_schema:
                    left_required.add(name)
                elif name in right_schema:
                    right_required.add(name)
        left = self._rewrite(node.left, left_required)
        right = self._rewrite(node.right, right_required)
        return node.with_children((left, right))  # type: ignore[return-value]

    @staticmethod
    def _canonical(names: set[str], schema: Schema) -> set[str]:
        out = set()
        for name in names:
            try:
                out.add(schema.names[schema.index_of(name)])
            except Exception:
                out.add(name)
        return out
