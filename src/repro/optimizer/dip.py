"""Data-induced predicates (paper §IV, ref [23] Orr et al.).

At optimization time, when a join's build side is estimated to be small,
execute it, collect the distinct join-key values, and push a derived
predicate into the probe side:

- equi joins get an ``IN``-list filter,
- **semantic joins** get a :class:`SemanticSemiFilterNode` — keep probe
  rows whose key is context-similar to *any* build-side key.  This is the
  paper's "with semantic operators, more complex optimization techniques
  that work for relational data, such as data-induced predicates, can be
  evaluated and applied in the query plans."

The derived predicate is a pure reduction; the original join still runs,
so results are unchanged.
"""

from __future__ import annotations

from repro.relational.expressions import ColumnRef, InList
from repro.relational.logical import (
    FilterNode,
    JoinNode,
    JoinType,
    LogicalPlan,
    SemanticJoinNode,
    SemanticSemiFilterNode,
)
from repro.relational.physical import ExecutionContext, execute_plan
from repro.optimizer.cardinality import CardinalityEstimator


class DataInducedPredicates:
    """Optimization pass deriving probe-side predicates from build sides."""

    name = "data_induced_predicates"

    def __init__(self, estimator: CardinalityEstimator,
                 context: ExecutionContext, row_limit: int = 64,
                 min_probe_build_ratio: float = 4.0):
        self.estimator = estimator
        self.context = context
        self.row_limit = row_limit
        self.min_probe_build_ratio = min_probe_build_ratio
        self.applied = 0

    def run(self, plan: LogicalPlan) -> LogicalPlan:
        children = tuple(self.run(child) for child in plan.children)
        if children != plan.children:
            plan = plan.with_children(children)
        if isinstance(plan, JoinNode):
            return self._try_equi_join(plan)
        if isinstance(plan, SemanticJoinNode):
            return self._try_semantic_join(plan)
        return plan

    # ------------------------------------------------------------------
    def _worthwhile(self, plan: LogicalPlan, build: LogicalPlan,
                    probe: LogicalPlan) -> bool:
        if plan.hints.get("dip"):
            return False
        build_rows = self.estimator.estimate(build)
        probe_rows = self.estimator.estimate(probe)
        return (build_rows <= self.row_limit
                and probe_rows >= self.min_probe_build_ratio * build_rows)

    def _try_equi_join(self, plan: JoinNode) -> LogicalPlan:
        if (plan.join_type != JoinType.INNER or len(plan.left_keys) != 1
                or not self._worthwhile(plan, plan.right, plan.left)):
            return plan
        build = execute_plan(plan.right, self.context)
        if build.num_rows == 0 or build.num_rows > self.row_limit:
            return plan
        values = sorted({v for v in build.column(plan.right_keys[0])
                         if v is not None})
        reduced_left = FilterNode(
            plan.left, InList(ColumnRef(plan.left_keys[0]), list(values)))
        rewritten = plan.with_children((reduced_left, plan.right))
        rewritten.hints["dip"] = True
        self.applied += 1
        return rewritten

    def _try_semantic_join(self, plan: SemanticJoinNode) -> LogicalPlan:
        if not self._worthwhile(plan, plan.right, plan.left):
            return plan
        build = execute_plan(plan.right, self.context)
        if build.num_rows == 0 or build.num_rows > self.row_limit:
            return plan
        probes = sorted({v for v in build.column(plan.right_column)
                         if v is not None})
        if not probes:
            return plan
        reduced_left = SemanticSemiFilterNode(
            plan.left, plan.left_column, list(probes), plan.model_name,
            plan.threshold)
        rewritten = plan.with_children((reduced_left, plan.right))
        rewritten.hints["dip"] = True
        self.applied += 1
        return rewritten
