"""The optimizer facade: rules -> pruning -> join order -> DIP -> physical.

Every stage is individually toggleable through :class:`OptimizerConfig`,
which is what the rule-ablation benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParams
from repro.optimizer.dip import DataInducedPredicates
from repro.optimizer.fusion import PipelineFusion
from repro.optimizer.join_order import JoinOrderOptimizer
from repro.optimizer.physical_selection import PhysicalSelector
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.rules import (
    DEFAULT_PHASES,
    DEFAULT_RULES,
    PruneColumns,
    RewriteRule,
    RuleContext,
    rewrite_fixpoint,
    rewrite_phases,
)
from repro.relational.logical import LogicalPlan
from repro.relational.physical import ExecutionContext
from repro.storage.catalog import Catalog


@dataclass
class OptimizerConfig:
    """Stage toggles and knobs."""

    enable_rules: bool = True
    enable_prune: bool = True
    enable_join_order: bool = True
    enable_dip: bool = True
    enable_physical: bool = True
    dip_row_limit: int = 64
    sample_size: int = 64
    rules: list[RewriteRule] | None = None
    cost_params: CostParams = field(default_factory=CostParams)
    #: Restrict the physical selector's semantic-join access paths
    #: (``None`` = the full candidate ladder).  A single-element tuple
    #: forces one method — what the reuse benchmarks use to prove that
    #: approximate-index plans fall back to normal execution.
    semantic_join_methods: tuple[str, ...] | None = None
    #: Pipeline fusion + compilation: ``"auto"`` fuses when the cost
    #: model votes the compile pays for itself, ``"on"`` fuses every
    #: eligible chain, ``"off"`` disables the stage.
    compiled_pipelines: str = "auto"


@dataclass
class OptimizationReport:
    """What the optimizer did (consumed by EXPLAIN and the benchmarks)."""

    rules_applied: dict[str, int] = field(default_factory=dict)
    joins_reordered: int = 0
    dip_applied: int = 0
    physical_decisions: list[tuple[str, str]] = field(default_factory=list)
    pipelines_fused: int = 0
    estimated_cost: float = 0.0
    #: Bottom-up rewrite passes executed across every fixpoint.
    rewrite_passes: int = 0
    #: False when any rewrite fixpoint hit ``max_passes`` while rules
    #: were still firing (also counted on
    #: ``optimizer_rewrite_nonconvergence_total``).
    rewrite_converged: bool = True


class Optimizer:
    """Holistic optimizer over relational + semantic plans."""

    def __init__(self, catalog: Catalog, models=None,
                 config: OptimizerConfig | None = None,
                 execution_context: ExecutionContext | None = None):
        self.config = config or OptimizerConfig()
        self.estimator = CardinalityEstimator(
            catalog, models, sample_size=self.config.sample_size,
            execution_context=execution_context)
        self.cost_model = CostModel(self.estimator, self.config.cost_params)
        self.execution_context = execution_context
        registry = getattr(execution_context, "metrics_registry", None)
        if not isinstance(registry, MetricsRegistry):
            # standalone optimizers (no engine state) count into a
            # private sink; registration is idempotent on shared ones
            registry = MetricsRegistry()
        self._nonconvergence = registry.counter(
            "optimizer_rewrite_nonconvergence_total",
            help="rewrite fixpoints that hit max_passes still firing")
        self.last_report = OptimizationReport()

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        """Return an optimized, physically-annotated plan."""
        report = OptimizationReport()
        config = self.config
        rule_ctx = RuleContext(estimator=self.estimator,
                               cost_model=self.cost_model)

        if config.enable_rules:
            # an explicit rule list (ablation configs) runs as one flat
            # fixpoint; the default suite runs the phased pipeline
            if config.rules is not None:
                plan = rewrite_fixpoint(plan, config.rules, rule_ctx)
            else:
                plan = rewrite_phases(plan, DEFAULT_PHASES, rule_ctx)
        if config.enable_prune:
            plan = PruneColumns().run(plan)
        if config.enable_join_order:
            reorder = JoinOrderOptimizer(self.estimator, self.cost_model)
            plan = reorder.run(plan)
            report.joins_reordered = reorder.reordered
        if config.enable_dip and self.execution_context is not None:
            dip = DataInducedPredicates(self.estimator,
                                        self.execution_context,
                                        row_limit=config.dip_row_limit)
            plan = dip.run(plan)
            report.dip_applied = dip.applied
            if dip.applied and config.enable_rules:
                # derived predicates may enable further pushdowns ...
                fired_before = dict(rule_ctx.applied)
                if config.rules is not None:
                    plan = rewrite_fixpoint(plan, config.rules, rule_ctx)
                else:
                    plan = rewrite_phases(plan, DEFAULT_PHASES, rule_ctx)
                # ... and filters that sank into join inputs change the
                # estimates the join order was chosen on: re-trigger it
                if config.enable_join_order and _pushdowns_fired(
                        fired_before, rule_ctx.applied):
                    reorder = JoinOrderOptimizer(self.estimator,
                                                 self.cost_model)
                    plan = reorder.run(plan)
                    report.joins_reordered += reorder.reordered
        if config.enable_physical:
            if config.semantic_join_methods is not None:
                selector = PhysicalSelector(
                    self.cost_model, methods=config.semantic_join_methods)
            else:
                selector = PhysicalSelector(self.cost_model)
            plan = selector.run(plan)
            report.physical_decisions = selector.decisions
        if config.compiled_pipelines != "off":
            # last stage by design: every earlier pass sees only the
            # classic node types, and fused stages carry final hints
            fusion = PipelineFusion(self.cost_model,
                                    mode=config.compiled_pipelines)
            plan = fusion.run(plan)
            report.pipelines_fused = fusion.fused

        report.rules_applied = dict(rule_ctx.applied)
        report.rewrite_passes = rule_ctx.passes
        report.rewrite_converged = rule_ctx.converged
        if not rule_ctx.converged:
            self._nonconvergence.inc()
        report.estimated_cost = self.cost_model.estimate_total(plan)
        self.last_report = report
        return plan


def _pushdowns_fired(before: dict[str, int], after: dict[str, int]) -> bool:
    """Did any pushdown rule fire between the two applied-count
    snapshots?  (Join-order re-trigger condition after DIP.)"""
    return any(after.get(name, 0) > before.get(name, 0)
               for name in after
               if name.startswith("push_filter"))
