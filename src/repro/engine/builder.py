"""Dataframe-style query builder over the logical plan IR.

The paper (§IV, ref [24]) argues Pandas-like interfaces should compile to
the same optimizable representation as SQL — this builder does exactly
that: every method returns a new builder wrapping a larger logical plan,
and ``execute`` hands it to the session's optimizer.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.expressions import AggExpr, AggFunc, ColumnRef, Expr
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SortNode,
)
from repro.storage.table import Table

_AGG_NAMES = {
    "count": AggFunc.COUNT,
    "sum": AggFunc.SUM,
    "min": AggFunc.MIN,
    "max": AggFunc.MAX,
    "avg": AggFunc.AVG,
    "count_distinct": AggFunc.COUNT_DISTINCT,
}


class QueryBuilder:
    """Immutable fluent wrapper around a logical plan."""

    def __init__(self, session, plan: LogicalPlan):
        self._session = session
        self._plan = plan

    # ------------------------------------------------------------------
    @property
    def plan(self) -> LogicalPlan:
        """The current (unoptimized) logical plan."""
        return self._plan

    @property
    def schema(self):
        return self._plan.schema

    def _wrap(self, plan: LogicalPlan) -> "QueryBuilder":
        return QueryBuilder(self._session, plan)

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def filter(self, predicate: Expr) -> "QueryBuilder":
        """Keep rows satisfying ``predicate`` (use ``col``/``lit``)."""
        return self._wrap(FilterNode(self._plan, predicate))

    def select(self, *items) -> "QueryBuilder":
        """Project columns; items are names or ``(expr, alias)`` pairs."""
        exprs: list[tuple[Expr, str]] = []
        for item in items:
            if isinstance(item, str):
                exprs.append((ColumnRef(item), item))
            elif isinstance(item, tuple) and len(item) == 2:
                expr, alias = item
                exprs.append((expr, alias))
            else:
                raise PlanError(f"cannot select {item!r}")
        return self._wrap(ProjectNode(self._plan, exprs))

    def join(self, other: "QueryBuilder", on: tuple[str, str] | list[tuple[str, str]],
             how: str = "inner") -> "QueryBuilder":
        """Equi-join with another builder; ``on`` is (left, right) key(s)."""
        pairs = [on] if isinstance(on, tuple) else list(on)
        left_keys = [p[0] for p in pairs]
        right_keys = [p[1] for p in pairs]
        join_type = JoinType(how)
        return self._wrap(JoinNode(self._plan, other._plan, join_type,
                                   left_keys, right_keys))

    def cross_join(self, other: "QueryBuilder",
                   predicate: Expr | None = None) -> "QueryBuilder":
        return self._wrap(JoinNode(self._plan, other._plan, JoinType.CROSS,
                                   extra_predicate=predicate))

    def aggregate(self, group_by: list[str],
                  **aggregates) -> "QueryBuilder":
        """Group and aggregate: ``aggregate(['k'], n=('count', '*'))``."""
        agg_exprs = []
        for alias, (func_name, column) in aggregates.items():
            func = _AGG_NAMES[func_name]
            operand = None if column == "*" else ColumnRef(column)
            agg_exprs.append(AggExpr(func, operand, alias))
        return self._wrap(AggregateNode(self._plan, group_by, agg_exprs))

    def sort(self, *keys) -> "QueryBuilder":
        """Sort by column names; prefix with ``-`` for descending."""
        pairs = []
        for key in keys:
            if key.startswith("-"):
                pairs.append((key[1:], False))
            else:
                pairs.append((key, True))
        return self._wrap(SortNode(self._plan, pairs))

    def limit(self, count: int) -> "QueryBuilder":
        return self._wrap(LimitNode(self._plan, count))

    # ------------------------------------------------------------------
    # Semantic operators (paper §IV)
    # ------------------------------------------------------------------
    def semantic_filter(self, column: str, probe: str,
                        threshold: float = 0.9, model: str | None = None,
                        score_alias: str | None = None,
                        mode: str = "value") -> "QueryBuilder":
        """Semantic Select: keep rows context-similar to ``probe``.

        ``mode="contains"`` matches any *token* of free text against the
        probe instead of embedding the whole cell.
        """
        return self._wrap(SemanticFilterNode(
            self._plan, column, probe,
            model or self._session.default_model_name, threshold,
            score_alias, mode=mode))

    def semantic_join(self, other: "QueryBuilder", left_on: str,
                      right_on: str, threshold: float = 0.9,
                      model: str | None = None,
                      score_alias: str = "similarity",
                      top_k: int | None = None) -> "QueryBuilder":
        """Semantic Join on key context similarity.

        ``top_k`` switches to best-k-matches-per-key semantics (scores
        still floored at ``threshold``).
        """
        return self._wrap(SemanticJoinNode(
            self._plan, other._plan, left_on, right_on,
            model or self._session.default_model_name, threshold,
            score_alias, top_k=top_k))

    def semantic_group_by(self, column: str, threshold: float = 0.8,
                          model: str | None = None,
                          cluster_alias: str = "cluster_id",
                          representative_alias: str = "cluster_rep",
                          ) -> "QueryBuilder":
        """Semantic GroupBy: on-the-fly clustering of ``column``."""
        return self._wrap(SemanticGroupByNode(
            self._plan, column,
            model or self._session.default_model_name, threshold,
            cluster_alias, representative_alias))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, optimize: bool = True) -> Table:
        return self._session.execute(self._plan, optimize=optimize)

    def to_rows(self, optimize: bool = True) -> list[dict]:
        return self.execute(optimize=optimize).to_rows()

    def count(self) -> int:
        return self.execute().num_rows

    def explain(self, optimize: bool = True) -> str:
        return self._session.explain(self._plan, optimize=optimize)
