"""Normalized-SQL plan cache: repeated statements skip the whole frontend.

A statement's journey without this cache is lexer -> parser -> binder ->
optimizer on *every* execution, even when the text is byte-identical to
the previous query.  The plan cache short-circuits that at two levels:

1. **Text memo** — exact text (per default model) maps straight to its
   :class:`~repro.engine.sql.canonical.CanonicalQuery`, skipping even
   the lexer on repeats.  Safe to key on raw text because parsing is
   deterministic and context-free: the same text always produces the
   same AST regardless of catalog state.
2. **Plan store** — the canonical family digest plus the concrete
   literal tuple, the catalog/statistics **version**, and the default
   model name key a fully optimized logical plan (physical hints
   annotated).  A hit goes straight to ``build_physical``; a cached
   plan is never mutated by execution, so one entry serves any number
   of concurrent clients.
3. **Generic plans** — when enough *distinct* literal tuples of one
   family optimize to the same literal-masked plan fingerprint, the
   family is **promoted**: new literals are bound into a parameterized
   template and the per-literal optimization is skipped entirely
   (PostgreSQL's generic-vs-custom plan decision, applied to this
   engine).  Periodic rechecks divert a serve through the full
   optimizer; a fingerprint mismatch **demotes** the family for good.
   See ``optimizer/parameterize.py`` for the fingerprint/site
   machinery and ``docs/optimizer.md`` for the promotion contract.

Invalidation is **versioned**, not evented: every ``register_table``,
``drop``, or statistics refresh bumps ``Catalog.version``, and since
the version is part of the key, stale plans simply stop matching.  A
lazy sweep drops old-version entries whenever a newer version is first
seen, so they do not squat in the LRU budget.

The cached artifact is the *optimized logical plan*, not the physical
operator tree: physical operators are stateful one-shot iterators
(row counters, batch cursors), so each execution instantiates fresh
ones from the cached plan — instantiation is microseconds, while the
skipped parse/bind/optimize is the expensive part.

A note on what a version-keyed cache does **not** promise: a query that
runs concurrently with a ``register_table`` may execute a plan bound
against either catalog state — the same non-snapshot semantics the
engine always had.  The cache only guarantees a *later* lookup never
returns a plan built before the change.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.engine.sql.canonical import CanonicalQuery
from repro.errors import PlanError
from repro.obs.metrics import MetricsRegistry, hit_ratio
from repro.optimizer.parameterize import (
    ParameterizeError,
    bind_parameters,
    coerce_to_sites,
    literal_sites,
    parameter_order,
    plan_fingerprint,
    unparameterizable_reason,
)
from repro.reuse.registry import FamilyDigestTracker, FamilyKey

#: Default number of cached plans (and memoized texts) kept.
DEFAULT_PLAN_CACHE_CAPACITY = 256

#: Distinct literal tuples that must optimize to one fingerprint
#: before the family is promoted to a generic plan.
DEFAULT_GENERIC_PROMOTION_THRESHOLD = 3

#: Every Nth generic serve is instead a forced miss: the statement
#: takes the full optimizer path and :meth:`PlanCache.observe`
#: compares the outcome against the generic plan's fingerprint.
DEFAULT_GENERIC_RECHECK_INTERVAL = 16

#: ``(*CanonicalQuery.key, catalog_version, model_name)`` — the literal
#: tuple inside ``CanonicalQuery.key`` is heterogeneous, hence ``Any``.
_PlanKey = tuple[Any, ...]


@dataclass
class CachedPlan:
    """One optimized plan plus the metadata admission control needs."""

    plan: object                 # relational.logical.LogicalPlan
    #: Optimizer's total cost estimate — the scheduler's admission
    #: classifier reads this on a hit without re-costing anything.
    estimated_cost: float
    canonical: CanonicalQuery
    catalog_version: int
    model_name: str
    #: Subsumption spec (repro.reuse.analysis.ReuseSpec) when the plan
    #: was augmented for semantic reuse; None otherwise.
    reuse: object | None = None
    hits: int = 0


@dataclass
class GenericPlan:
    """A promoted family's parameterized plan template.

    ``template`` is one exemplar's fully optimized plan; serving binds
    the incoming statement's canonical parameters into its literal
    sites (``order`` maps site index -> parameter index, proven unique
    at promotion time).  The result is structurally identical to what
    the optimizer would have produced — that is exactly what the
    matching fingerprints of ``promotion_threshold`` distinct literal
    tuples established — so the per-literal optimization is skipped.
    """

    template: object             # relational.logical.LogicalPlan
    #: Template literal values in site order (types are authoritative:
    #: incoming parameters are coerced back to these types).
    sites: list = field(default_factory=list)
    #: Site index -> canonical parameter index.
    order: list = field(default_factory=list)
    #: Literal-masked structural fingerprint rechecks compare against.
    fingerprint: str = ""
    estimated_cost: float = 0.0
    catalog_version: int = 0
    model_name: str = ""
    serves: int = 0


@dataclass
class PlanCacheStats:
    """Counters the benchmarks and server metrics read."""

    hits: int = 0
    misses: int = 0
    text_memo_hits: int = 0
    evictions: int = 0
    stale_evictions: int = 0
    entries: int = 0
    families: int = 0
    generic_hits: int = 0
    promotions: int = 0
    demotions: int = 0
    generic_rechecks: int = 0
    generic_entries: int = 0

    @property
    def hit_rate(self) -> float:
        return hit_ratio(self.hits, self.misses)

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "text_memo_hits": self.text_memo_hits,
            "evictions": self.evictions,
            "stale_evictions": self.stale_evictions,
            "entries": self.entries,
            "families": self.families,
            "generic_hits": self.generic_hits,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "generic_rechecks": self.generic_rechecks,
            "generic_entries": self.generic_entries,
        }


class PlanCache:
    """LRU cache of optimized plans keyed on canonical digest + version."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY,
                 registry: MetricsRegistry | None = None,
                 enable_generic: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Generic-plan promotion knobs (mutable; benchmarks tune them).
        self.enable_generic = enable_generic
        self.generic_promotion_threshold = \
            DEFAULT_GENERIC_PROMOTION_THRESHOLD
        self.generic_recheck_interval = DEFAULT_GENERIC_RECHECK_INTERVAL
        self._lock = threading.Lock()
        self._plans: OrderedDict[_PlanKey, CachedPlan] = OrderedDict()
        self._texts: OrderedDict[tuple[str, str], CanonicalQuery] = \
            OrderedDict()
        #: Promoted families; FamilyDigestTracker is lock-free and
        #: mutated only under self._lock (engine lock hierarchy).
        self._generics: dict[FamilyKey, GenericPlan] = {}
        self._tracker = FamilyDigestTracker()
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "plan_cache_hits_total", help="optimized-plan cache hits")
        self._misses = registry.counter(
            "plan_cache_misses_total", help="optimized-plan cache misses")
        self._text_memo_hits = registry.counter(
            "plan_cache_text_memo_hits_total",
            help="exact-text memo hits (lexer skipped)")
        self._evictions = registry.counter(
            "plan_cache_evictions_total", help="LRU evictions")
        self._stale_evictions = registry.counter(
            "plan_cache_stale_evictions_total",
            help="old-catalog-version entries swept")
        self._generic_hits = registry.counter(
            "plan_cache_generic_hits_total",
            help="statements served from a promoted generic plan "
                 "(per-literal optimization skipped)")
        self._promotions = registry.counter(
            "plan_cache_promotions_total",
            help="families promoted to a generic plan")
        self._demotions = registry.counter(
            "plan_cache_demotions_total",
            help="generic plans dropped after a fingerprint mismatch")
        self._generic_rechecks = registry.counter(
            "plan_cache_generic_rechecks_total",
            help="generic serves diverted to full optimization to "
                 "re-verify the family fingerprint")
        registry.gauge("plan_cache_entries", fn=lambda: len(self._plans),
                       help="cached plans resident")
        registry.gauge("plan_cache_generic_entries",
                       fn=lambda: len(self._generics),
                       help="promoted generic plans resident")
        registry.gauge(
            "plan_cache_hit_ratio",
            fn=lambda: hit_ratio(self._hits.value, self._misses.value),
            help="hits / (hits + misses); 0.0 before any probe")
        self._newest_version = -1

    # -- lookups --------------------------------------------------------
    def canonical_for(self, text: str, model_name: str
                      ) -> CanonicalQuery | None:
        """The memoized canonical form of ``text``, if seen before.

        ``None`` means the caller must lex/parse/canonicalize (and then
        :meth:`put` or :meth:`memo_text` the result).
        """
        with self._lock:
            memo = self._texts.get((text, model_name))
            if memo is not None:
                self._text_memo_hits.inc()
                self._texts.move_to_end((text, model_name))
            return memo

    def get(self, canonical: CanonicalQuery, catalog_version: int,
            model_name: str) -> CachedPlan | None:
        """The cached plan for an exact canonical statement, or ``None``."""
        key = (*canonical.key, catalog_version, model_name)
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._hits.inc()
            entry.hits += 1
            self._plans.move_to_end(key)
            return entry

    def peek(self, digest: str, parameters: tuple[Any, ...],
             catalog_version: int, model_name: str) -> CachedPlan | None:
        """The cached plan for an exact key, without counting a probe.

        The ingest subsystem's read: a result-cache key carries exactly
        these four identity fields, so the delta maintainer can recover
        the optimized plan behind a cached snapshot.  Maintenance is not
        a statement serve — it must not move hit/miss telemetry or the
        LRU order.
        """
        key: _PlanKey = (digest, parameters, catalog_version, model_name)
        with self._lock:
            return self._plans.get(key)

    def drop_if(self, predicate) -> int:
        """Drop cached plans that ``predicate(CachedPlan)`` selects.

        The targeted invalidation hook for row mutations: plans that
        embed *data-derived* artifacts (data-induced predicates built
        from a table's old contents) are unsound after an append even
        though the schema — and therefore the catalog version they key
        on — is unchanged.  The predicate runs outside the cache lock
        (it walks plan trees); entries that match are then dropped under
        the lock.  Returns the number dropped.
        """
        with self._lock:
            entries = list(self._plans.items())
        doomed = [key for key, entry in entries if predicate(entry)]
        if not doomed:
            return 0
        dropped = 0
        with self._lock:
            for key in doomed:
                if self._plans.pop(key, None) is not None:
                    self._stale_evictions.inc()
                    dropped += 1
        return dropped

    def get_generic(self, canonical: CanonicalQuery, catalog_version: int,
                    model_name: str) -> tuple[object, float] | None:
        """Serve the family's generic plan for these literals, if any.

        Returns ``(plan, estimated_cost)`` with the statement's
        parameters bound into the template, or ``None`` when the family
        is not promoted, the parameters cannot be typed to the
        template's sites, or this serve is a scheduled **recheck** —
        every ``generic_recheck_interval``-th serve deliberately misses
        so the caller runs the full optimizer and :meth:`observe`
        compares the outcome against the promoted fingerprint.
        """
        if not self.enable_generic:
            return None
        key: FamilyKey = (canonical.digest, catalog_version, model_name)
        with self._lock:
            generic = self._generics.get(key)
            if generic is None:
                return None
            generic.serves += 1
            if generic.serves % self.generic_recheck_interval == 0:
                self._generic_rechecks.inc()
                return None
            values = coerce_to_sites(generic.sites, generic.order,
                                     canonical.parameters)
            if values is None:
                return None
            try:
                plan = bind_parameters(generic.template, values)
            except (ParameterizeError, PlanError):
                # e.g. a bound literal fails a node invariant the full
                # binder would also reject — fall through to that path
                return None
            self._generic_hits.inc()
            return plan, generic.estimated_cost

    def observe(self, canonical: CanonicalQuery, catalog_version: int,
                model_name: str, plan: object,
                estimated_cost: float) -> None:
        """Feed one *fully optimized* statement into promotion tracking.

        Call this whenever the optimizer actually ran (exact-cache
        miss and generic miss).  Three outcomes:

        - the family already has a generic plan: compare fingerprints —
          a mismatch means a literal **did** change the chosen plan, so
          the generic entry is dropped and the family permanently
          demoted at this catalog version (recheck serves land here);
        - no generic yet: accumulate ``(fingerprint, parameters)``
          evidence, and promote once ``generic_promotion_threshold``
          distinct literal tuples agree on one fingerprint with a
          provably unique site<->parameter mapping;
        - the plan is structurally unparameterizable (data-induced
          predicates, approximate access paths): demote permanently.
        """
        if not self.enable_generic:
            return
        key: FamilyKey = (canonical.digest, catalog_version, model_name)
        with self._lock:
            if self._tracker.is_demoted(key):
                return
            try:
                fingerprint = plan_fingerprint(plan)  # type: ignore[arg-type]
            except ParameterizeError:
                self._tracker.demote(key)
                return
            generic = self._generics.get(key)
            if generic is not None:
                if generic.fingerprint != fingerprint:
                    del self._generics[key]
                    self._tracker.demote(key)
                    self._demotions.inc()
                return
            reason = unparameterizable_reason(plan)  # type: ignore[arg-type]
            if reason is not None:
                self._tracker.demote(key)
                return
            try:
                sites = literal_sites(plan)  # type: ignore[arg-type]
            except ParameterizeError:
                self._tracker.demote(key)
                return
            order = parameter_order(sites, canonical.parameters)
            exemplars = self._tracker.observe(key, fingerprint,
                                              canonical.parameters)
            if order is None:
                # mapping not provable from THIS exemplar (duplicate or
                # folded values) — evidence still counts, promotion
                # waits for an exemplar with distinct literals
                return
            if exemplars >= self.generic_promotion_threshold:
                self._generics[key] = GenericPlan(
                    template=plan, sites=sites, order=order,
                    fingerprint=fingerprint,
                    estimated_cost=estimated_cost,
                    catalog_version=catalog_version,
                    model_name=model_name)
                self._promotions.inc()

    # -- population -----------------------------------------------------
    def memo_text(self, text: str, model_name: str,
                  canonical: CanonicalQuery) -> None:
        """Record text -> canonical so later repeats skip the lexer."""
        with self._lock:
            self._memo_text_locked(text, model_name, canonical)

    def put(self, text: str, canonical: CanonicalQuery,
            catalog_version: int, model_name: str, plan: object,
            estimated_cost: float, reuse: object | None = None
            ) -> CachedPlan:
        """Insert an optimized plan (and memoize its text)."""
        entry = CachedPlan(plan=plan, estimated_cost=estimated_cost,
                           canonical=canonical,
                           catalog_version=catalog_version,
                           model_name=model_name, reuse=reuse)
        key = (*canonical.key, catalog_version, model_name)
        with self._lock:
            self._sweep_stale_locked(catalog_version)
            self._memo_text_locked(text, model_name, canonical)
            self._plans[key] = entry
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._evictions.inc()
            return entry

    # -- maintenance ----------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached plan, generic plan, and digest record
        (text memos survive: parse output is catalog-independent)."""
        with self._lock:
            self._plans.clear()
            self._generics.clear()
            self._tracker.clear()

    def stats(self) -> PlanCacheStats:
        with self._lock:
            families = {key[0] for key in self._plans}
            return PlanCacheStats(
                hits=self._hits.value, misses=self._misses.value,
                text_memo_hits=self._text_memo_hits.value,
                evictions=self._evictions.value,
                stale_evictions=self._stale_evictions.value,
                entries=len(self._plans), families=len(families),
                generic_hits=self._generic_hits.value,
                promotions=self._promotions.value,
                demotions=self._demotions.value,
                generic_rechecks=self._generic_rechecks.value,
                generic_entries=len(self._generics))

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # -- internals ------------------------------------------------------
    def _memo_text_locked(self, text: str, model_name: str,
                          canonical: CanonicalQuery) -> None:
        self._texts[(text, model_name)] = canonical
        self._texts.move_to_end((text, model_name))
        while len(self._texts) > self.capacity:
            self._texts.popitem(last=False)

    def _sweep_stale_locked(self, version: int) -> None:
        """Drop entries keyed under versions older than ``version``.

        They can never hit again (the catalog version is monotonic), so
        letting them age out through the LRU would waste its budget.
        """
        if version <= self._newest_version:
            return
        self._newest_version = version
        stale = [key for key in self._plans if key[2] < version]
        for key in stale:
            del self._plans[key]
            self._stale_evictions.inc()
        stale_generics = [key for key in self._generics
                          if key[1] < version]
        for generic_key in stale_generics:
            del self._generics[generic_key]
        self._tracker.sweep_versions_before(version)
